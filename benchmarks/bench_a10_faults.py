"""A10: availability and graceful degradation under injected crashes.

The paper evaluates a perfect cluster; this ablation injects seeded
fail-stop crash/restart schedules (DESIGN.md S14) into all four systems
over the same trace and measures how throughput degrades with crash
rate.  The availability contract is checked alongside the numbers:
every request terminates — served or explicitly "failed" — and failures
stay a small fraction of the measured stream even at three expected
crashes per node.
"""

from repro.experiments.ablations import a10_faults, render_a10


def test_bench_a10(benchmark, artifact):
    data = benchmark.pedantic(a10_faults, rounds=1, iterations=1)
    for sys_data in data["systems"]:
        baseline = sys_data["points"][0]
        assert baseline["crashes_per_node"] == 0.0
        assert baseline["failed_requests"] == 0
        assert baseline["vs_fault_free"] == 1.0
        prev_ratio = None
        for p in sys_data["points"][1:]:
            # Crashes were actually injected and the run completed.
            assert p["node_crashes"] > 0
            # Degraded, not dead: real throughput survives at every rate.
            assert 0.0 < p["vs_fault_free"] <= 1.0
            assert p["throughput_rps"] > 0.2 * baseline["throughput_rps"]
            # Graceful: more crashes never *improves* on fewer (small
            # scheduling noise allowed).
            if prev_ratio is not None:
                assert p["vs_fault_free"] <= prev_ratio * 1.05
            prev_ratio = p["vs_fault_free"]
    artifact("a10_faults", render_a10(data), data)
