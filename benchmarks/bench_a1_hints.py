"""A1: hint-based directory vs the paper's perfect-directory assumption.

Paper, Section 6: implementing the Sarkar & Hartman hint-based directory
"should remove any advantage [the middleware] derives from our current
optimistic assumptions" — at their measured ~98% hint accuracy the cost
should be negligible.
"""

from repro.experiments.ablations import a1_hints, render_a1


def test_bench_a1(benchmark, artifact):
    data = benchmark.pedantic(a1_hints, rounds=1, iterations=1)
    by_acc = {p["accuracy"]: p for p in data["points"]}
    # 98%-accurate hints stay close to the perfect directory.  (Our
    # model draws wrong hints i.i.d. per lookup — including for hot
    # blocks — where real hint errors concentrate on recently-moved,
    # mostly cold blocks, so this bound is conservative.)
    assert by_acc[0.98]["vs_perfect"] > 0.85
    # Perfect hints == perfect directory (same protocol path).
    assert by_acc[1.0]["vs_perfect"] > 0.95
    # Degradation is monotone-ish in accuracy.
    assert by_acc[0.7]["throughput_rps"] <= by_acc[1.0]["throughput_rps"] * 1.05
    artifact("a1_hints", render_a1(data), data)
