"""A2: forced concentration of hot files on one home node.

Paper, Section 5: "It would be interesting to observe [the middleware's]
performance under a forced concentration of hot files on a single node."
We re-home the hottest 5% of files onto node 0's disk.  Expectation: the
damage is limited because after warm-up the hot *blocks* live in cluster
memory (diffused by RR DNS), so node 0's disk only matters for misses.
"""

from repro.experiments.ablations import a2_hotspot, render_a2


def test_bench_a2(benchmark, artifact):
    data = benchmark.pedantic(a2_hotspot, rounds=1, iterations=1)
    # Concentration never helps, and the cache layer absorbs most of it.
    assert data["ratio"] <= 1.1
    assert data["ratio"] >= 0.4
    artifact("a2_hotspot", render_a2(data), data)
