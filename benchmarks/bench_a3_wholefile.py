"""A3: whole-file adaptation of the middleware vs block granularity.

Paper, Section 6: "we will investigate whether [the layer] can easily be
adapted for servers that always use whole files (e.g., a web server) and
whether such an adaptation would improve performance."
"""

from repro.experiments.ablations import a3_wholefile, render_a3


def test_bench_a3(benchmark, artifact):
    data = benchmark.pedantic(a3_wholefile, rounds=1, iterations=1)
    for p in data["points"]:
        # Both implementations are functional and comparable (within 4x
        # of each other at every memory point).
        assert p["wholefile_rps"] > 0.25 * p["block_rps"]
        assert p["wholefile_rps"] < 4.0 * p["block_rps"]
        assert 0.0 <= p["wholefile_hit"] <= 1.0
    artifact("a3_wholefile", render_a3(data), data)
