"""A4: disk queue discipline ablation (isolates CC-Basic -> CC-Sched).

Paper, Section 5: under FIFO, interleaved per-block streams make one
disk the bottleneck ("12 seeks instead of 4"); their fix was "a simple
scheduling algorithm in our queue of disk requests".
"""

from repro.experiments.ablations import a4_disksched, render_a4


def test_bench_a4(benchmark, artifact):
    data = benchmark.pedantic(a4_disksched, rounds=1, iterations=1)
    by = {(p["policy"], p["disk"]): p for p in data["points"]}
    # Scheduling rescues the basic policy substantially...
    assert (
        by[("basic", "scan")]["throughput_rps"]
        > 1.5 * by[("basic", "fifo")]["throughput_rps"]
    )
    # ...and never hurts KMC.
    assert (
        by[("kmc", "scan")]["throughput_rps"]
        >= 0.9 * by[("kmc", "fifo")]["throughput_rps"]
    )
    artifact("a4_disksched", render_a4(data), data)
