"""A5: LAN speed sensitivity.

Paper, Sections 5-6: the KMC trade ("increases network communication to
reduce disk accesses") is "reasonable considering the current trend of
relative performance between LANs and disks", and future work is to
study "the effects of different hardware configurations".  Sweep the LAN
from 100 Mb/s to 10 Gb/s and watch the CC/PRESS ratio.
"""

from repro.experiments.ablations import a5_lan, render_a5


def test_bench_a5(benchmark, artifact):
    data = benchmark.pedantic(a5_lan, rounds=1, iterations=1)
    by = {p["config"]: p for p in data["points"]}
    # The middleware is viable at every LAN speed here (remote hits are
    # latency- not bandwidth-bound at these request sizes)...
    assert by["lan-1gb"]["ratio"] > 0.5
    # ...and a faster LAN never makes the CC-vs-PRESS ratio much worse.
    assert by["lan-10gb"]["ratio"] >= by["lan-100mb"]["ratio"] - 0.15
    artifact("a5_lan", render_a5(data), data)
