"""A6: replacement-policy component ablation.

Separates the two ingredients of the paper's replacement story: the KMC
victim rule (never evict a master while a replica is resident) and the
traditional second-chance forwarding of evicted masters.
"""

from repro.experiments.ablations import a6_replacement, render_a6


def test_bench_a6(benchmark, artifact):
    data = benchmark.pedantic(a6_replacement, rounds=1, iterations=1)
    by = {(p["policy"], p["forward"]): p for p in data["points"]}
    # The KMC rule is the big lever (paper's "dramatic increase").
    assert (
        by[("kmc", True)]["throughput_rps"]
        > 1.15 * by[("basic", True)]["throughput_rps"]
    )
    # Forwarding happens only when enabled.
    assert by[("kmc", False)]["forwards"] == 0
    assert by[("kmc", True)]["forwards"] > 0
    artifact("a6_replacement", render_a6(data), data)
