"""A7: read/write workloads through the write-protocol extension.

Paper, Section 6: "we plan to investigate how to support writes as well
as reads in [the middleware]."  We make a fraction of requests
whole-file writes (write-invalidate, single-writer) and compare
write-back against write-through.
"""

from repro.experiments.ablations import a7_writes, render_a7


def test_bench_a7(benchmark, artifact):
    data = benchmark.pedantic(a7_writes, rounds=1, iterations=1)
    by_ratio = {p["write_ratio"]: p for p in data["points"]}
    # Read-only workloads never flush or invalidate.
    assert by_ratio[0.0]["back_flushes"] == 0
    assert by_ratio[0.0]["back_invalidations"] == 0
    # Writes cost throughput, more so at higher ratios...
    assert by_ratio[0.3]["back_rps"] <= by_ratio[0.0]["back_rps"] * 1.05
    # ...and write-through pays at least as many flushes as write-back.
    for ratio in (0.1, 0.3):
        p = by_ratio[ratio]
        assert p["through_flushes"] >= p["back_flushes"]
        assert p["back_invalidations"] > 0
    artifact("a7_writes", render_a7(data), data)
