"""A8: temporal-locality sensitivity of the headline comparison.

DESIGN.md §4.5 documents the i.i.d.-Zipf trace simplification.  This
study overlays increasing short-term re-reference probability and checks
the paper's conclusion (CC-KMC competitive with PRESS) is robust to it.
"""

from repro.experiments.ablations import a8_temporal, render_a8


def test_bench_a8(benchmark, artifact):
    data = benchmark.pedantic(a8_temporal, rounds=1, iterations=1)
    pts = {p["alpha"]: p for p in data["points"]}
    # More locality -> measurably more recency in the stream...
    assert pts[0.4]["recency"] > pts[0.0]["recency"]
    # ...and higher hit rates for both systems.
    assert pts[0.4]["kmc_hit"] >= pts[0.0]["kmc_hit"] - 0.02
    assert pts[0.4]["press_hit"] >= pts[0.0]["press_hit"] - 0.02
    # The headline comparison is stable: KMC stays within 25 points of
    # its i.i.d. ratio at every locality level.
    for p in data["points"]:
        assert abs(p["ratio"] - pts[0.0]["ratio"]) < 0.25
    artifact("a8_temporal", render_a8(data), data)
