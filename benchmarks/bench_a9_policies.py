"""A9: can the KMC replacement policy be improved?

Paper, Section 3: "the replacement policy of our current best-performing
algorithm can likely be improved"; Section 5: KMC "is rather extreme; it
leads to all memories holding only master copies, which does not
necessarily lead to best performance."  The ``hybrid`` policy keeps the
KMC rule but releases masters that are vastly colder than the oldest
replica.
"""

from repro.experiments.ablations import a9_policies, render_a9


def test_bench_a9(benchmark, artifact):
    data = benchmark.pedantic(a9_policies, rounds=1, iterations=1)
    for p in data["points"]:
        # Both master-protecting policies dominate basic...
        assert p["kmc_rps"] > p["basic_rps"]
        assert p["hybrid_rps"] > p["basic_rps"]
        # ...and hybrid stays within 15% of KMC (it is a refinement, not
        # a regression, whichever direction the workload rewards).
        assert p["hybrid_rps"] > 0.85 * p["kmc_rps"]
    artifact("a9_policies", render_a9(data), data)
