"""Figure 1: Rutgers trace popularity / size CDF.

The paper's anchor at full scale: 99% of requests are covered by 494 MB
of a 789 MB file set.  At the benchmark's scale the same *fraction*
(~63% of the bytes) must hold.
"""

from repro.experiments.figures import fig1, render_fig1


def test_bench_fig1(benchmark, artifact):
    data = benchmark.pedantic(fig1, rounds=1, iterations=1)
    assert data["cum_request_fraction"][-1] == 1.0
    frac = data["mb_for_99pct"] / data["file_set_mb"]
    # Paper: 494/789 = 0.626.  Scaled traces drift a little because the
    # Zipf tail is shorter; accept a generous band around the anchor.
    assert 0.45 <= frac <= 0.95
    artifact("fig1", render_fig1(data), data)
