"""Figure 2 (a-d): throughput of PRESS vs the three middleware variants.

8 nodes, per-node memory swept over the paper's axis, one panel per
trace.  Shape assertions (who wins, roughly by how much) encode the
paper's qualitative claims; absolute req/s are not expected to match the
authors' testbed.
"""

from conftest import bench_memories

from repro.experiments.figures import fig2, render_fig2
from repro.traces.datasets import TRACE_NAMES


def run_fig2():
    return fig2(memories_mb=bench_memories())


def test_bench_fig2(benchmark, artifact):
    data = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    assert set(data) == set(TRACE_NAMES)
    for name, panel in data.items():
        thr = panel["throughput_rps"]
        n = len(panel["memories_mb"])
        assert all(len(v) == n for v in thr.values())
        # Paper shape 1: CC-Basic lags PRESS badly at every point.
        for i in range(n):
            assert thr["cc-basic"][i] < 0.75 * thr["press"][i], name
        # Paper shape 2: the KMC replacement fix dominates CC-Basic.
        def mean(xs):
            return sum(xs) / len(xs)

        assert mean(thr["cc-kmc"]) > 1.3 * mean(thr["cc-basic"]), name
        # Paper shape 3: CC-Sched sits between Basic and KMC on average.
        assert (
            mean(thr["cc-basic"])
            <= mean(thr["cc-sched"]) * 1.05
        ), name
        assert mean(thr["cc-sched"]) <= mean(thr["cc-kmc"]) * 1.25, name
    artifact("fig2", render_fig2(data), data)
