"""Figure 3: middleware throughput normalized to PRESS.

The paper's headline: the KMC variant achieves over 80% of PRESS's
throughput in almost all cases and over 90% (or parity) in most.  Our
simulator reproduces the shape; the assertion encodes "almost all" as
"at least half the points >= 0.7 and the mean >= 0.65" to leave room for
the scaled workload's harsher small-memory regime (see EXPERIMENTS.md
for the measured curve).
"""

from conftest import bench_memories

from repro.experiments.figures import fig3, render_fig3


def run_fig3():
    return fig3(memories_mb=bench_memories())


def test_bench_fig3(benchmark, artifact):
    data = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    for panel_name, panel in data.items():
        kmc = panel["normalized"]["cc-kmc"]
        basic = panel["normalized"]["cc-basic"]
        def mean(xs):
            return sum(xs) / len(xs)

        assert mean(kmc) >= 0.65, panel_name
        assert sum(1 for x in kmc if x >= 0.7) >= len(kmc) / 2, panel_name
        # KMC dominates Basic at every point.
        assert all(k >= b for k, b in zip(kmc, basic)), panel_name
    artifact("fig3", render_fig3(data), data)
