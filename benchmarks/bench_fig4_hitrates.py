"""Figure 4: hit rates (Rutgers, 8 nodes).

Paper claims encoded:
* CC-KMC's total hit rate approaches PRESS's and the theoretical max;
* CC-KMC's hits are mostly REMOTE (paper: local 12-21%, remote 60-75%
  at <= 64 MB/node);
* CC-Basic's hit rate is clearly lower.
"""

from conftest import bench_memories

from repro.experiments.figures import fig4, render_fig4


def run_fig4():
    return fig4(memories_mb=bench_memories())


def test_bench_fig4(benchmark, artifact):
    data = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    hr = data["hit_rates"]
    for i, mem in enumerate(data["memories_mb"]):
        assert hr["cc-kmc"]["total"][i] >= hr["press"]["total"][i] - 0.12
        assert hr["cc-kmc"]["total"][i] <= data["theoretical_max"][i] + 0.05
        # KMC >= Basic holds except in degenerate caches of a few dozen
        # blocks per node, where block-count granularity (which does not
        # scale down with REPRO_SCALE) distorts the comparison.
        if mem * 1024 / 8 >= 40:
            assert (
                hr["cc-kmc"]["total"][i]
                >= hr["cc-basic"]["total"][i] - 0.02
            ), mem
    # Mostly-remote hits at the small-memory end.
    assert hr["cc-kmc"]["remote"][0] > hr["cc-kmc"]["local"][0]
    artifact("fig4", render_fig4(data), data)
