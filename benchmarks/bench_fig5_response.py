"""Figure 5: mean response time normalized to PRESS.

The paper: the middleware's mean response time is worse than PRESS's
(5-10% on their testbed; larger at the scaled workload's harsher
small-memory points), even where throughput nearly matches — the cost of
extra intra-cluster hops and finer-grained queuing.
"""

from conftest import bench_memories

from repro.experiments.figures import fig5, render_fig5


def run_fig5():
    return fig5(memories_mb=bench_memories())


def test_bench_fig5(benchmark, artifact):
    data = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    for panel_name, panel in data.items():
        kmc = panel["normalized"]["cc-kmc"]
        def mean(xs):
            return sum(xs) / len(xs)

        # CC pays a response-time premium on average...
        assert mean(kmc) >= 0.95, panel_name
        # ...but not a collapse (CC-KMC stays within ~4x everywhere,
        # and the large-memory end approaches parity).
        assert all(x < 4.0 for x in kmc), panel_name
        assert min(kmc) < 2.0, panel_name
        # Absolute PRESS responses are sane milliseconds.
        assert all(0.1 < ms < 10_000 for ms in panel["press_ms"]), panel_name
    artifact("fig5", render_fig5(data), data)
