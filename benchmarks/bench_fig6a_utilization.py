"""Figure 6a: CC-KMC resource utilization vs per-node memory.

Paper claims encoded: the disk is the bottleneck at small memories and
falls as memory grows; the network (NIC) is mostly idle — which is why
trading network traffic for disk accesses (the KMC rule) wins.
"""

from conftest import bench_memories

from repro.experiments.figures import fig6a, render_fig6a


def run_fig6a():
    return fig6a(memories_mb=bench_memories())


def test_bench_fig6a(benchmark, artifact):
    data = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    util = data["utilization"]
    # Disk dominates at the smallest memory...
    assert util["disk"][0] > 0.5
    assert util["disk"][0] > util["cpu"][0] > util["nic"][0]
    # ...and pressure falls as memory grows.
    assert util["disk"][-1] <= util["disk"][0] + 0.05
    # The network is mostly idle everywhere (paper: "the network is
    # mostly idle").
    assert all(u < 0.5 for u in util["nic"])
    artifact("fig6a", render_fig6a(data), data)
