"""Figure 6b: CC-KMC throughput vs cluster size (up to 32 nodes).

Paper claim: the cooperative caching server "scales quite well up to 32
nodes" at 32 MB per node.  Scaling can exceed linear while the working
set is larger than aggregate memory (more nodes = more cache), so the
assertion is monotone growth with at least ~75% efficiency per doubling.
"""

from repro.experiments.figures import fig6b, render_fig6b


def test_bench_fig6b(benchmark, artifact):
    data = benchmark.pedantic(fig6b, rounds=1, iterations=1)
    thr = data["throughput_rps"]
    nodes = data["node_counts"]
    assert nodes == [4, 8, 16, 32]
    for i in range(1, len(thr)):
        growth = thr[i] / thr[i - 1]
        scale = nodes[i] / nodes[i - 1]
        assert growth >= 0.75 * scale, (nodes[i], growth)
    artifact("fig6b", render_fig6b(data), data)
