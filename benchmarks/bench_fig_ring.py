"""Ring-convergence benchmark: partitioned vs aggregate LRU miss ratio.

Regenerates the ``fig_ring`` companion figure — the hash-partitioned
LRU (one arc per node, as the PartitionedDirectory homes blocks)
against a single LRU of the aggregate capacity over the same seeded
Zipf stream — and records the per-panel gap metrics as a trajectory
record.  Like ``bench_sched`` this one is independent of the
``REPRO_*`` workload knobs: its params are the analytic-model constants
below, and the metrics are fully deterministic (seeded stream, stable
ring hash), so any drift is a code change, not noise.
"""

from conftest import REPO_ROOT, RESULTS_DIR

from repro.bench.schema import dump_record, wrap_result
from repro.experiments.figures import fig_ring, render_fig_ring

SEED = 0
NODE_COUNTS = (16, 64, 256)
CAPACITIES = (4, 16, 64)
NUM_FILES = 60_000
NUM_REQUESTS = 150_000
THETA = 0.8
VNODES = 64


def test_bench_fig_ring(benchmark, artifact):
    data = benchmark.pedantic(
        fig_ring,
        kwargs=dict(
            node_counts=NODE_COUNTS,
            capacities_per_node=CAPACITIES,
            num_files=NUM_FILES,
            num_requests=NUM_REQUESTS,
            theta=THETA,
            vnodes=VNODES,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )

    # Convergence side-check: the gap shrinks from the smallest to the
    # largest per-node capacity in every panel (the claim under test).
    for nodes, panel in data["panels"].items():
        assert panel["gap"][0] > panel["gap"][-1] >= 0.0, nodes

    metrics = {}
    for nodes, panel in data["panels"].items():
        metrics[f"n{nodes}.gap_smallest"] = panel["gap"][0]
        metrics[f"n{nodes}.gap_largest"] = panel["gap"][-1]
        metrics[f"n{nodes}.partitioned_miss_largest"] = (
            panel["partitioned_miss"][-1]
        )
    record = wrap_result(
        "ring",
        data,
        seed=SEED,
        params={
            "node_counts": list(NODE_COUNTS),
            "capacities_per_node": list(CAPACITIES),
            "num_files": NUM_FILES,
            "num_requests": NUM_REQUESTS,
            "theta": THETA,
            "vnodes": VNODES,
        },
        metrics=metrics,
    )
    artifact("ring", render_fig_ring(data))
    dump_record(record, RESULTS_DIR / "ring.json")
    dump_record(record, REPO_ROOT / "BENCH_ring.json")
