"""Scheduler microbenchmark: kernel event throughput, heap vs calendar.

A synthetic but experiment-shaped workload — a fixed population of
actors rescheduling themselves with a seeded mix of sub-ms service gaps
and long think times — is driven through the bare kernel under each
registered scheduler.  The record reports events/sec per scheduler plus
their ratio; a free differential check asserts both runs processed the
same events to the same final simulation time.

Unlike the figure benches this one measures the *kernel*, so its params
(and digest) are the workload constants below, not the ``REPRO_*``
experiment knobs.  Timing numbers are wall-clock and machine-dependent;
the committed baseline pins the shape, not an absolute.
"""

import random
import time

from conftest import REPO_ROOT, RESULTS_DIR

from repro.bench.schema import dump_record, wrap_result
from repro.sim.engine import SCHEDULERS, Simulator

NEVENTS = 200_000
ACTORS = 64
SEED = 0
#: Delay mix: mostly short service-completion-like gaps with occasional
#: long think times — the spread an experiment's pending set actually has.
DELAY_GRID = [0.0, 0.05, 0.1, 0.4, 1.0, 2.5, 10.0, 120.0]


def drive(scheduler: str, nevents: int = NEVENTS, actors: int = ACTORS):
    """Run the actor workload on one scheduler; returns timing stats."""
    sim = Simulator(scheduler=scheduler)
    # simlint: disable=SL02 -- seeded local Random(SEED): same delay plan
    # every run; sim.rng streams are for experiment code, not the bench rig
    rng = random.Random(SEED)
    # Per-actor cyclic delay plans, drawn once so every scheduler sees
    # the exact same event pattern.
    plans = [[rng.choice(DELAY_GRID) for _ in range(97)] for _ in range(actors)]
    state = {"left": nevents}

    def fire(actor: int, idx: int) -> None:
        if state["left"] > 0:
            state["left"] -= 1
            sim.call_after(plans[actor][idx % 97], fire, actor, idx + 1)

    for a in range(actors):
        sim.call_after(plans[a][0], fire, a, 1)
    t0 = time.perf_counter()  # simlint: disable=SL02 -- wall timing is the measurement
    sim.run()
    elapsed = time.perf_counter() - t0  # simlint: disable=SL02 -- wall timing is the measurement
    return {
        "events": sim.event_count,
        "final_now_ms": sim.now,
        "elapsed_s": elapsed,
        "events_per_sec": sim.event_count / elapsed,
    }


def render_sched(data: dict) -> str:
    lines = [
        f"Kernel event throughput "
        f"({data['nevents']} events, {data['actors']} actors):"
    ]
    for name, stats in sorted(data["schedulers"].items()):
        lines.append(
            f"  {name:<9} {stats['events_per_sec']:>10.0f} events/s "
            f"({stats['elapsed_s']:.3f} s)"
        )
    lines.append(f"  calendar/heap ratio: x{data['calendar_vs_heap']:.2f}")
    return "\n".join(lines)


def test_bench_sched(benchmark, artifact):
    results = {}

    def run_all():
        for name in sorted(SCHEDULERS):
            results[name] = drive(name)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Differential side-check: identical logical runs, only timing differs.
    counts = {s["events"] for s in results.values()}
    finals = {s["final_now_ms"] for s in results.values()}
    assert len(counts) == 1 and counts.pop() == NEVENTS + ACTORS
    assert len(finals) == 1

    data = {
        "nevents": NEVENTS,
        "actors": ACTORS,
        "schedulers": results,
        "calendar_vs_heap": (
            results["calendar"]["events_per_sec"]
            / results["heap"]["events_per_sec"]
        ),
    }
    record = wrap_result(
        "sched",
        data,
        seed=SEED,
        params={"nevents": NEVENTS, "actors": ACTORS,
                "delay_grid": DELAY_GRID},
        metrics={
            f"{name}.events_per_sec": stats["events_per_sec"]
            for name, stats in results.items()
        },
    )
    artifact("sched", render_sched(data))
    dump_record(record, RESULTS_DIR / "sched.json")
    dump_record(record, REPO_ROOT / "BENCH_sched.json")
