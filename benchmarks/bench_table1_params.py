"""Table 1: the simulation modeling constants.

Static configuration — the benchmark times parameter-set construction
and table rendering (trivially fast; included for completeness so every
paper artifact has a bench target).
"""

from repro.experiments.tables import render_table1, table1
from repro.params import DEFAULT_PARAMS, SimParams


def test_bench_table1(benchmark, artifact):
    rows = benchmark(table1, DEFAULT_PARAMS)
    assert any("Parsing" in r[0] for r in rows)
    artifact("table1", render_table1())


def test_bench_params_construction(benchmark):
    params = benchmark(SimParams)
    assert params.blocks_of(21.0) == 3
