"""Table 2: characteristics of the four WWW traces.

Regenerates all four synthetic workloads at the active scale and prints
their Table 2 rows (file count, average file size, request count,
average request size, file-set size).
"""

from repro.experiments.tables import render_table2, table2
from repro.traces.datasets import TRACE_NAMES


def test_bench_table2(benchmark, artifact):
    data = benchmark.pedantic(table2, rounds=1, iterations=1)
    assert set(data) == set(TRACE_NAMES)
    for row in data.values():
        assert row["num_files"] > 0
        # Arlitt & Williamson invariant: requests skew to smaller files.
        assert row["avg_request_kb"] <= row["avg_file_kb"] * 1.5
    artifact("table2", render_table2())
