"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure (or one ablation),
prints the same rows/series the paper reports, and archives the rendered
output under ``benchmarks/results/`` so EXPERIMENTS.md can cite it.

Workload scale is controlled by the environment (see
``repro.experiments.defaults``): default is SCALE=0.02 with 10k-request
traces; ``REPRO_FULL=1`` runs paper-size workloads (slow).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Benchmarks use a trimmed memory axis (full 8-point sweeps belong to
#: interactive use); these are the paper's 4-512 MB endpoints + midpoints.
BENCH_MEMORY_MB = [4, 16, 64, 256]


@pytest.fixture
def artifact(request, capsys):
    """Save + display a rendered experiment table.

    Usage::

        def test_bench_fig4(benchmark, artifact):
            data = benchmark.pedantic(fig4, rounds=1, iterations=1)
            artifact("fig4", render_fig4(data))
    """

    def save(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        if data is not None:
            import json

            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, indent=2, default=float) + "\n"
            )
        # Emit through pytest's terminal (shown with -s or on failure).
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return save


def bench_memories():
    """The benchmark memory axis at the active scale."""
    from repro.experiments.defaults import memory_points_mb

    return memory_points_mb(BENCH_MEMORY_MB)
