"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure (or one ablation),
prints the same rows/series the paper reports, and archives the rendered
output under ``benchmarks/results/`` — plus a top-level
``BENCH_<name>.json`` trajectory record (sorted keys, schema version,
git sha, seed, params digest; see :mod:`repro.bench.schema`) that
``python -m repro.bench compare`` gates against committed baselines.

Workload scale is controlled by the environment (see
``repro.experiments.defaults``): default is SCALE=0.02 with 10k-request
traces; ``REPRO_FULL=1`` runs paper-size workloads (slow).
"""

import pathlib

import pytest

from repro.experiments.defaults import BENCH_MEMORY_MB  # shared with `sweep` CLI

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Every experiment runner defaults to this seed (ExperimentConfig.seed).
BENCH_SEED = 0


def bench_params():
    """The workload knobs that shaped this run — recorded in every
    trajectory record so comparisons refuse mismatched workloads."""
    from repro.experiments.defaults import bench_params as _bench_params

    return _bench_params()


@pytest.fixture
def artifact(request, capsys):
    """Save + display a rendered experiment table.

    Usage::

        def test_bench_fig4(benchmark, artifact):
            data = benchmark.pedantic(fig4, rounds=1, iterations=1)
            artifact("fig4", render_fig4(data))

    With ``data``, the JSON lands twice: wrapped in the shared artifact
    schema under ``benchmarks/results/<name>.json`` and as the top-level
    trajectory record ``BENCH_<name>.json``.
    """

    def save(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        if data is not None:
            from repro.bench.schema import dump_record, wrap_result

            record = wrap_result(
                name, data, seed=BENCH_SEED, params=bench_params()
            )
            dump_record(record, RESULTS_DIR / f"{name}.json")
            dump_record(record, REPO_ROOT / f"BENCH_{name}.json")
        # Emit through pytest's terminal (shown with -s or on failure).
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return save


def bench_memories():
    """The benchmark memory axis at the active scale."""
    from repro.experiments.defaults import memory_points_mb

    return memory_points_mb(BENCH_MEMORY_MB)
