#!/usr/bin/env python3
"""Using the middleware as a *library* for a non-web service.

The paper's pitch is generality: "it should be usable as a building
block for diverse distributed services".  This example builds a tiny
**document search service** on the same cluster: each query touches a
posting-list segment (a byte range, i.e. a subset of blocks) of several
index files — not whole files — exercising the block-granular
``read_blocks`` API that a web server never needs.

Run:  python examples/custom_service.py
"""

import numpy as np

from repro.cache import BlockId
from repro.core import CoopCacheService, variant

rng = np.random.default_rng(7)

# The "index": 40 posting-list files of 256 KB each (32 blocks).
NUM_INDEX_FILES = 40
INDEX_FILE_KB = 256.0
NUM_NODES = 4

svc = CoopCacheService(
    file_sizes_kb=[INDEX_FILE_KB] * NUM_INDEX_FILES,
    num_nodes=NUM_NODES,
    mem_mb_per_node=1.0,
    config=variant("cc-kmc"),
)

QUERY_CPU_MS = 0.4          # score/merge work per posting segment
SEGMENT_BLOCKS = 4          # a query reads 4 consecutive blocks per term


def run_query(node, terms):
    """Simulation coroutine for one multi-term query."""
    for file_id, first_block in terms:
        blocks = [BlockId(file_id, first_block + i)
                  for i in range(SEGMENT_BLOCKS)]
        # The middleware fetches the byte range wherever it lives:
        # local memory, a peer's memory, or the home node's disk.
        yield from svc.layer.read_blocks(node, blocks)
        yield node.cpu.submit(QUERY_CPU_MS)


def query_stream(num_queries=800):
    blocks_per_file = int(INDEX_FILE_KB // 8)
    for q in range(num_queries):
        node = svc.node(q % NUM_NODES)
        nterms = int(rng.integers(1, 4))
        terms = []
        for _ in range(nterms):
            # Zipf-ish term popularity -> skewed file choice.
            f = min(int(rng.random() ** 2 * NUM_INDEX_FILES),
                    NUM_INDEX_FILES - 1)
            start = int(rng.integers(0, blocks_per_file - SEGMENT_BLOCKS))
            terms.append((f, start))
        yield node, terms


def driver():
    for node, terms in query_stream():
        yield svc.submit(run_query(node, terms))


svc.submit(driver())
svc.run()

hr = svc.layer.hit_rates()
print(f"simulated time     : {svc.sim.now / 1000.0:7.2f} s")
print(f"segment hit rate   : {hr['total']:7.1%} "
      f"(local {hr['local']:.1%}, peers {hr['remote']:.1%})")
print(f"disk block reads   : {svc.layer.counters.get('disk_read'):7d}")
svc.layer.check_invariants()
print()
print("Same middleware, different service: the search engine reads")
print("block ranges, the web server reads whole files — no changes to")
print("the caching layer either way.")
