#!/usr/bin/env python3
"""Quickstart: cooperative caching on a 4-node cluster in ~30 lines.

Builds the middleware via the library facade, replays a small synthetic
web workload through it, and prints the cache behaviour — the 60-second
tour of the public API.

Run:  python examples/quickstart.py
"""

from repro.core import CoopCacheService, variant
from repro.traces import TraceSpec, generate

# A small skewed workload: 200 files, ~15 KB each, Zipf popularity.
trace = generate(TraceSpec(
    name="quickstart",
    num_files=200,
    num_requests=3_000,
    mean_file_kb=15.0,
    zipf_theta=1.0,
    seed=42,
))

# The paper's winning configuration: keep-master-copies replacement on a
# scheduled disk queue ("cc-kmc"), 0.5 MB of cache per node.
svc = CoopCacheService(
    file_sizes_kb=trace.sizes_kb,
    num_nodes=4,
    mem_mb_per_node=0.5,
    config=variant("cc-kmc"),
)


def client():
    """One closed-loop client replaying the trace round-robin."""
    for i, file_id in enumerate(trace.requests):
        node = svc.node(i % 4)
        yield svc.submit(svc.layer.read(node, int(file_id)))


svc.submit(client())
svc.run()

hr = svc.layer.hit_rates()
print(f"simulated time        : {svc.sim.now / 1000.0:8.2f} s")
print(f"block accesses        : {sum(svc.layer.counters.as_dict().get(k, 0) for k in ('local_hit', 'remote_hit', 'disk_read')):8d}")
print(f"local hit rate        : {hr['local']:8.1%}")
print(f"remote (peer) hits    : {hr['remote']:8.1%}")
print(f"disk reads            : {hr['disk']:8.1%}")
print(f"aggregate hit rate    : {hr['total']:8.1%}")
print(f"masters forwarded     : {svc.layer.counters.get('forwards'):8d}")
print()
print("Cluster memory is one aggregate cache: most hits are *remote*")
print("(served from a peer's memory over the LAN instead of disk).")
svc.layer.check_invariants()
print("protocol invariants OK")
