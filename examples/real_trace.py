#!/usr/bin/env python3
"""Driving the simulator with a real web server log.

The paper used the Calgary / ClarkNet / NASA / Rutgers access logs.
Those exact files are no longer redistributable, but any NCSA
Common Log Format file drops straight in via the CLF parser.  This
example ships a small embedded log so it runs out of the box; point
``LOG_PATH`` at your own access log to reproduce the study on it.

Run:  python examples/real_trace.py [path/to/access_log]
"""

import io
import logging
import sys

from repro.experiments import ExperimentConfig, format_table, run_experiment
from repro.traces import parse_clf_lines, table2_row

logging.basicConfig(
    level=logging.INFO, format="%(message)s", stream=sys.stdout
)
log = logging.getLogger("examples.real_trace")

# A miniature access log in NCSA Common Log Format (the embedded
# fallback when no log path is given on the command line).
SAMPLE_LOG = """\
host1 - - [01/Jul/2001:00:00:01 -0400] "GET /index.html HTTP/1.0" 200 10240
host2 - - [01/Jul/2001:00:00:02 -0400] "GET /logo.gif HTTP/1.0" 200 4096
host3 - - [01/Jul/2001:00:00:03 -0400] "GET /index.html HTTP/1.0" 200 10240
host1 - - [01/Jul/2001:00:00:04 -0400] "GET /papers/hpdc01.pdf HTTP/1.0" 200 262144
host4 - - [01/Jul/2001:00:00:05 -0400] "GET /index.html HTTP/1.0" 304 0
host2 - - [01/Jul/2001:00:00:06 -0400] "GET /people.html HTTP/1.0" 200 8192
host5 - - [01/Jul/2001:00:00:07 -0400] "GET /logo.gif HTTP/1.0" 200 4096
host1 - - [01/Jul/2001:00:00:08 -0400] "GET /cgi-bin/search?q=cache HTTP/1.0" 200 2048
host6 - - [01/Jul/2001:00:00:09 -0400] "GET /index.html HTTP/1.0" 200 10240
host3 - - [01/Jul/2001:00:00:10 -0400] "GET /papers/hpdc01.pdf HTTP/1.0" 200 262144
host7 - - [01/Jul/2001:00:00:11 -0400] "POST /cgi-bin/form HTTP/1.0" 200 512
host8 - - [01/Jul/2001:00:00:12 -0400] "GET /missing.html HTTP/1.0" 404 345
host2 - - [01/Jul/2001:00:00:13 -0400] "GET /logo.gif HTTP/1.0" 200 4096
host9 - - [01/Jul/2001:00:00:14 -0400] "GET /people.html HTTP/1.0" 200 8192
host4 - - [01/Jul/2001:00:00:15 -0400] "GET /index.html HTTP/1.0" 200 10240
""" * 40  # repeat to give the caches something to chew on


def load_trace():
    if len(sys.argv) > 1:
        path = sys.argv[1]
        log.info("parsing %s ...", path)
        with open(path, "r", errors="replace") as fh:
            return parse_clf_lines(fh, name=path)
    log.info("no log given; using the embedded sample "
             "(pass a path to use yours)")
    return parse_clf_lines(io.StringIO(SAMPLE_LOG), name="sample")


trace = load_trace()
row = table2_row(trace)
print()
print(format_table(
    ["Files", "Avg file KB", "Requests", "Avg req KB", "File set MB"],
    [[int(row["num_files"]), row["avg_file_kb"], int(row["num_requests"]),
      row["avg_request_kb"], row["file_set_mb"]]],
    title="Trace characteristics (Table 2 columns)",
))

rows = []
for system in ("press", "cc-kmc"):
    res = run_experiment(ExperimentConfig(
        system=system,
        trace=trace,
        num_nodes=4,
        mem_mb_per_node=max(0.05, trace.file_set_mb / 8),  # tight memory
        num_clients=16,
    ))
    rows.append([system, res.throughput_rps, res.hit_rates["total"],
                 res.mean_response_ms])

print()
print(format_table(
    ["System", "req/s", "hit rate", "mean resp ms"],
    rows,
    title="4-node cluster on this trace",
))
