#!/usr/bin/env python3
"""Cluster-size scaling of the cooperative caching server (Figure 6b).

Sweeps the cluster from 4 to 32 nodes at fixed per-node memory and
reports throughput and speedup — the paper reports near-linear scaling
because round-robin DNS diffuses hot blocks across all memories.

Run:  python examples/scalability.py
"""

from repro.experiments import SCALE, format_table, workload
from repro.experiments.sweep import node_sweep

MEM_MB_PER_NODE = 32 * SCALE
NODE_COUNTS = [4, 8, 16, 32]

print(f"workload: rutgers @ scale {SCALE:g}, {MEM_MB_PER_NODE:g} MB/node\n")

trace = workload("rutgers")
results = node_sweep(trace, "cc-kmc", NODE_COUNTS, MEM_MB_PER_NODE)

base = results[0].throughput_rps
rows = []
for res in results:
    n = res.config.num_nodes
    rows.append([
        n,
        res.throughput_rps,
        res.throughput_rps / base * NODE_COUNTS[0],
        res.hit_rates["total"],
        res.workload.utilization["disk"],
    ])

print(format_table(
    ["Nodes", "req/s", "speedup (x4-node/4)", "hit rate", "disk util"],
    rows,
))
print()
print("More nodes bring both more CPUs/disks *and* more aggregate cache,")
print("so scaling can even be super-linear while the working set is")
print("larger than total memory.")
