#!/usr/bin/env python3
"""A read-write service on the middleware: a shared document workspace.

The paper's future work ("we plan to investigate how to support writes
as well as reads") is implemented as a write-invalidate protocol with
ownership transfer and write-back.  This example builds a collaborative
document store on it: editors on different cluster nodes read documents,
occasionally save changes (whole-file writes), and the workspace syncs
dirty data to disk at the end — all through the public middleware API.

Run:  python examples/shared_workspace.py
"""

import numpy as np

from repro.core import CoopCacheConfig, CoopCacheService

NUM_NODES = 4
NUM_DOCS = 120
DOC_KB = 24.0          # 3 blocks per document
EDIT_SESSIONS = 600
WRITE_PROB = 0.25      # saves per access

rng = np.random.default_rng(2026)

svc = CoopCacheService(
    file_sizes_kb=[DOC_KB] * NUM_DOCS,
    num_nodes=NUM_NODES,
    mem_mb_per_node=0.5,
    config=CoopCacheConfig(write_policy="write-back"),
)
layer = svc.layer


def editor_session(node, doc_id, save):
    """One editor interaction: open (read) and maybe save (write)."""
    yield from layer.read(node, doc_id)
    yield node.cpu.submit(0.3)  # think/render time on the CPU
    if save:
        yield from layer.write(node, doc_id)


def workload():
    for _ in range(EDIT_SESSIONS):
        node = svc.node(int(rng.integers(NUM_NODES)))
        # Editors cluster on popular documents.
        doc = min(int(rng.random() ** 2 * NUM_DOCS), NUM_DOCS - 1)
        save = rng.random() < WRITE_PROB
        yield svc.submit(editor_session(node, doc, save))
    # Shut down cleanly: flush every node's dirty documents.
    for node_id in range(NUM_NODES):
        yield svc.submit(layer.sync(svc.node(node_id)))


svc.submit(workload())
svc.run()

c = layer.counters
hr = layer.hit_rates()
dirty_left = sum(cache.num_dirty for cache in layer.caches)
print(f"simulated time        : {svc.sim.now / 1000.0:7.2f} s")
print(f"document reads        : {EDIT_SESSIONS:7d}")
print(f"saves (block writes)  : {c.get('block_writes'):7d}")
print(f"read hit rate         : {hr['total']:7.1%} "
      f"(local {hr['local']:.1%} / peers {hr['remote']:.1%})")
print(f"ownership transfers   : {c.get('ownership_transfers'):7d}")
print(f"replica invalidations : {c.get('invalidations'):7d}")
print(f"blocks flushed        : {c.get('flushed_blocks'):7d}")
print(f"dirty blocks remaining: {dirty_left:7d}  (after sync: must be 0)")
layer.check_invariants()
print("protocol invariants OK")
assert dirty_left == 0, "sync() must leave no dirty data behind"
