#!/usr/bin/env python3
"""The paper's headline experiment, in miniature.

Runs the cluster web server under all four systems — PRESS (the
locality-conscious baseline) and the three cooperative-caching variants —
on a scaled-down Rutgers trace, and prints throughput normalized to
PRESS.  This is Figure 2/3 at a single glance; the full sweep lives in
``benchmarks/``.

Run:  python examples/webserver_comparison.py
      REPRO_SCALE=0.05 python examples/webserver_comparison.py   # bigger
"""

from repro.experiments import (
    ALL_SYSTEMS,
    ExperimentConfig,
    SCALE,
    format_table,
    run_experiment,
    workload,
)

NUM_NODES = 8
MEM_MB_PER_NODE = 32 * SCALE  # the paper's 32 MB/node point, scaled

print(f"workload: rutgers @ scale {SCALE:g}, {NUM_NODES} nodes, "
      f"{MEM_MB_PER_NODE:g} MB/node\n")

trace = workload("rutgers")
rows = []
press_rps = None
for system in ALL_SYSTEMS:
    res = run_experiment(
        ExperimentConfig(
            system=system,
            trace=trace,
            num_nodes=NUM_NODES,
            mem_mb_per_node=MEM_MB_PER_NODE,
        )
    )
    if system == "press":
        press_rps = res.throughput_rps
    hr = res.hit_rates
    rows.append([
        system,
        res.throughput_rps,
        res.throughput_rps / press_rps if press_rps else None,
        hr["total"],
        hr["local"],
        hr["remote"],
        res.mean_response_ms,
    ])

print(format_table(
    ["System", "req/s", "vs PRESS", "hit", "(local)", "(remote)",
     "mean resp ms"],
    rows,
))
print()
print("Expected shape (paper): cc-basic ~20-35% of PRESS, cc-sched in")
print("between, cc-kmc >80% — most of its hits served from peer memory.")
