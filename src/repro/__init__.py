"""CoCa: cooperative caching middleware for cluster-based servers.

A complete reproduction of Cuenca-Acuna & Nguyen, *Cooperative Caching
Middleware for Cluster-Based Servers* (HPDC 2001): the event-driven
cluster simulator, the block-based cooperative caching middleware and
its evaluated variants, the PRESS-like locality-conscious baseline, the
workload infrastructure, and a harness reproducing every table and
figure in the paper.

Entry points:

* :class:`repro.core.CoopCacheService` — the middleware as a library.
* :func:`repro.experiments.run_experiment` — one (system, trace,
  cluster, memory) simulation point.
* :mod:`repro.experiments.figures` / ``tables`` / ``ablations`` — the
  paper's artifacts.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

import logging

from .params import DEFAULT_PARAMS, HARDWARE_CONFIGS, SimParams

# Library convention: emit through the package logger, let the
# application decide handlers (CLI installs one via -v/--verbose).
logging.getLogger(__name__).addHandler(logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "SimParams",
    "DEFAULT_PARAMS",
    "HARDWARE_CONFIGS",
    "__version__",
]
