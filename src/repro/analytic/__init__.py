"""Timing-free cache simulators (system S11 in DESIGN.md)."""

from .cachesim import AnalyticCoopCache, AnalyticPress

__all__ = ["AnalyticCoopCache", "AnalyticPress"]
