"""Timing-free cache simulators.

These replay a trace through the *policy* layer only — no event engine,
no concurrency, no hardware costs — and report hit rates.  They serve
three purposes:

1. **Speed**: hit-rate curves over full-size traces (500k+ requests) in
   seconds, where the full simulator would need minutes per point.
2. **Validation**: the full simulator's hit rates must track these
   sequential-semantics numbers (the residual gap is concurrency:
   coalescing, in-flight races) — a strong cross-check used in tests.
3. **Exploration**: policy questions (KMC vs basic, forwarding on/off)
   answered without re-running hardware simulations.

Requests walk the cluster round-robin, mirroring RR DNS.
"""

from __future__ import annotations


from ..cache.block import BlockId, FileLayout
from ..cache.blockcache import BlockCache
from ..cache.directory import GlobalDirectory
from ..core.policies import select_victim
from ..press.filecache import FileCache, ReplicaDirectory
from ..traces.model import Trace

__all__ = ["AnalyticCoopCache", "AnalyticPress"]


class AnalyticCoopCache:
    """Sequential-semantics cooperative caching (CC-Basic / CC-KMC)."""

    def __init__(
        self,
        num_nodes: int,
        layout: FileLayout,
        capacity_blocks: int,
        policy: str = "kmc",
        forward_on_evict: bool = True,
        touch_on_peer_hit: bool = True,
    ):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.layout = layout
        self.policy = policy
        self.forward_on_evict = forward_on_evict
        self.touch_on_peer_hit = touch_on_peer_hit
        self.caches: list[BlockCache] = [
            BlockCache(i, capacity_blocks) for i in range(num_nodes)
        ]
        self.directory = GlobalDirectory()
        self._clock = 0.0
        self.counts = {"local": 0, "remote": 0, "disk": 0}

    # -- protocol (sequential) ---------------------------------------------
    def access(self, node_id: int, file_id: int) -> None:
        """One whole-file request at ``node_id``."""
        for blk in self.layout.blocks(file_id):
            self._clock += 1.0
            self._access_block(node_id, blk)

    def _access_block(self, node_id: int, blk: BlockId) -> None:
        cache = self.caches[node_id]
        if blk in cache:
            self.counts["local"] += 1
            cache.touch(blk, self._clock)
            return
        holder = self.directory.lookup(blk)
        if holder is not None and holder != node_id:
            self.counts["remote"] += 1
            if self.touch_on_peer_hit:
                self.caches[holder].touch(blk, self._clock)
            self._insert(node_id, blk, master=False)
            return
        self.counts["disk"] += 1
        self._insert(node_id, blk, master=True)

    def _insert(self, node_id: int, blk: BlockId, *, master: bool) -> None:
        cache = self.caches[node_id]
        if cache.is_full:
            self._evict_one(node_id)
        cache.insert(blk, master=master, age=self._clock)
        if master:
            self.directory.set_master(blk, node_id)

    def _evict_one(self, node_id: int) -> None:
        cache = self.caches[node_id]
        blk, age, is_master = select_victim(self.policy, cache)  # type: ignore[misc]
        cache.remove(blk)
        if not is_master:
            return
        if not self.forward_on_evict:
            self.directory.clear_master(blk)
            return
        target = self._oldest_peer(node_id, age)
        if target is None:
            self.directory.clear_master(blk)
            return
        dst = self.caches[target]
        if dst.oldest_age() >= age:
            self.directory.clear_master(blk)
            return
        if blk in dst:
            if not dst.is_master(blk):
                dst.promote_to_master(blk)
            self.directory.set_master(blk, target)
            return
        if dst.is_full:
            old_blk, _a, was_master = dst.oldest()  # type: ignore[misc]
            dst.remove(old_blk)
            if was_master:
                self.directory.clear_master(old_blk)
        dst.insert(blk, master=True, age=age)
        self.directory.set_master(blk, target)

    def _oldest_peer(self, node_id: int, victim_age: float) -> int | None:
        best, best_age = None, victim_age
        for cache in self.caches:
            if cache.node_id == node_id:
                continue
            age = cache.oldest_age()
            if age < best_age:
                best, best_age = cache.node_id, age
        return best

    # -- harness ------------------------------------------------------------
    def run(self, trace: Trace, warmup_frac: float = 0.25) -> dict[str, float]:
        """Replay ``trace`` (round-robin nodes); post-warm-up hit rates."""
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError("warmup_frac must be in [0, 1)")
        warm = int(trace.num_requests * warmup_frac)
        for i, file_id in enumerate(trace.requests):
            if i == warm:
                self.counts = {"local": 0, "remote": 0, "disk": 0}
            self.access(i % self.num_nodes, int(file_id))
        return self.hit_rates()

    def hit_rates(self) -> dict[str, float]:
        """Block-level local/remote/disk fractions since the last reset."""
        total = sum(self.counts.values())
        if total == 0:
            return {"local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0}
        return {
            "local": self.counts["local"] / total,
            "remote": self.counts["remote"] / total,
            "disk": self.counts["disk"] / total,
            "total": (self.counts["local"] + self.counts["remote"]) / total,
        }


class AnalyticPress:
    """Sequential-semantics PRESS (content-aware, no load modeling)."""

    def __init__(
        self,
        num_nodes: int,
        layout: FileLayout,
        capacity_kb: float,
    ):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.layout = layout
        self.directory = ReplicaDirectory()
        self.caches = [
            FileCache(i, capacity_kb, self.directory) for i in range(num_nodes)
        ]
        self._rr = 0
        self.counts = {"local": 0, "remote": 0, "disk": 0}

    def access(self, node_id: int, file_id: int) -> None:
        """One whole-file request entering at ``node_id``."""
        nblocks = self.layout.num_blocks(file_id)
        holders = self.directory.holders(file_id)
        if node_id in holders:
            self.counts["local"] += nblocks
            self.caches[node_id].touch(file_id)
            return
        if holders:
            self.counts["remote"] += nblocks
            target = min(holders)  # no load info: deterministic pick
            self.caches[target].touch(file_id)
            return
        self.counts["disk"] += nblocks
        # Without load data, adoption rotates round-robin (RR-DNS spread).
        target = self._rr % self.num_nodes
        self._rr += 1
        cache = self.caches[target]
        size_kb = self.layout.size_kb(file_id)
        if cache.fits(size_kb):
            cache.insert(file_id, size_kb)

    def run(self, trace: Trace, warmup_frac: float = 0.25) -> dict[str, float]:
        """Replay ``trace``; post-warm-up hit rates."""
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError("warmup_frac must be in [0, 1)")
        warm = int(trace.num_requests * warmup_frac)
        for i, file_id in enumerate(trace.requests):
            if i == warm:
                self.counts = {"local": 0, "remote": 0, "disk": 0}
            self.access(i % self.num_nodes, int(file_id))
        return self.hit_rates()

    def hit_rates(self) -> dict[str, float]:
        """Block-weighted hit fractions since the last reset."""
        total = sum(self.counts.values())
        if total == 0:
            return {"local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0}
        return {
            "local": self.counts["local"] / total,
            "remote": self.counts["remote"] / total,
            "disk": self.counts["disk"] / total,
            "total": (self.counts["local"] + self.counts["remote"]) / total,
        }
