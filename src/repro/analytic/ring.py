"""Timing-free partitioned-LRU model for the ring-convergence study.

*Asymptotic Miss Ratio of LRU Caching with Consistent Hashing*
(PAPERS.md) predicts that hash-partitioning an LRU cache across nodes —
each key served by exactly one node's LRU, as the
:class:`~repro.cache.hashring.PartitionedDirectory` homes blocks — has
the **same asymptotic miss ratio as one big LRU of the aggregate
capacity**: the gap vanishes as per-node capacity grows, at *every*
node count.  That is the falsifiable claim behind the ``fig_ring``
experiment and the nightly statistical test.

This model deliberately strips everything but the claim: a seeded Zipf
request stream, one :class:`~repro.cache.hashring.HashRing` routing
keys to per-node LRUs, and a single LRU of the summed capacity replaying
the identical stream.  No timing, no protocol — differences between the
two miss ratios are purely the partitioning (hash imbalance), which is
exactly what the theorem bounds.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..cache.hashring import HashRing
from ..sim.rng import stream

__all__ = [
    "zipf_requests",
    "lru_miss_ratio",
    "partitioned_miss_ratio",
    "convergence_point",
]


def zipf_requests(
    num_files: int, num_requests: int, theta: float = 0.8, seed: int = 0
) -> np.ndarray:
    """A seeded Zipf(``theta``) file-id stream (i.i.d., like the traces)."""
    if num_files < 1 or num_requests < 1:
        raise ValueError("need at least one file and one request")
    weights = np.arange(1, num_files + 1, dtype=np.float64) ** (-theta)
    weights /= weights.sum()
    rng = stream(seed, "ring", "zipf")
    return rng.choice(num_files, size=num_requests, p=weights)


class _LRU:
    """Minimal counting LRU over integer keys (move-to-end semantics)."""

    __slots__ = ("capacity", "_items", "misses", "accesses")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: OrderedDict[int, None] = OrderedDict()
        self.misses = 0
        self.accesses = 0

    def access(self, key: int) -> None:
        self.accesses += 1
        if key in self._items:
            self._items.move_to_end(key)
            return
        self.misses += 1
        if len(self._items) >= self.capacity:
            self._items.popitem(last=False)
        self._items[key] = None


def lru_miss_ratio(requests: np.ndarray, capacity: int) -> float:
    """Miss ratio of one LRU of ``capacity`` items over ``requests``."""
    lru = _LRU(capacity)
    for key in requests:
        lru.access(int(key))
    return lru.misses / lru.accesses


def partitioned_miss_ratio(
    requests: np.ndarray,
    num_nodes: int,
    capacity_per_node: int,
    vnodes: int = 32,
    seed: int = 0,
) -> float:
    """Aggregate miss ratio of ``num_nodes`` LRUs behind a hash ring.

    Every key is served by its ring home's LRU only (single-copy
    placement — the directory's partitioning, not the middleware's
    replication), so aggregate capacity is ``num_nodes *
    capacity_per_node`` and any excess misses over the single LRU come
    from hash imbalance across partitions.
    """
    ring = HashRing(range(num_nodes), vnodes=vnodes, seed=seed)
    num_files = int(requests.max()) + 1
    owner_of = np.array(
        [ring.owner(f"f:{f}") for f in range(num_files)], dtype=np.int64
    )
    lrus = [_LRU(capacity_per_node) for _ in range(num_nodes)]
    for key in requests:
        k = int(key)
        lrus[owner_of[k]].access(k)
    misses = sum(lru.misses for lru in lrus)
    accesses = sum(lru.accesses for lru in lrus)
    return misses / accesses


def convergence_point(
    requests: np.ndarray,
    num_nodes: int,
    capacity_per_node: int,
    vnodes: int = 32,
    seed: int = 0,
) -> dict[str, float]:
    """Partitioned vs single-LRU miss ratios at one (nodes, capacity)."""
    part = partitioned_miss_ratio(
        requests, num_nodes, capacity_per_node, vnodes=vnodes, seed=seed
    )
    single = lru_miss_ratio(requests, num_nodes * capacity_per_node)
    return {
        "nodes": float(num_nodes),
        "capacity_per_node": float(capacity_per_node),
        "partitioned_miss": part,
        "single_miss": single,
        "gap": part - single,
    }
