"""Benchmark trajectory records and regression gating.

Every ``bench_*`` result is wrapped in a shared artifact schema
(:mod:`repro.bench.schema`): git sha, seed, a digest of the run
parameters and a schema version, emitted as top-level ``BENCH_<name>.json``
trajectory records.  :mod:`repro.bench.compare` diffs a run against
committed baselines (``benchmarks/baselines/``) and exits nonzero on a
>10% throughput regression — the CI gate.

CLI::

    python -m repro.bench compare BENCH_fig2.json --baselines benchmarks/baselines
"""

from .compare import CompareResult, compare_records, render_compare
from .schema import (
    SCHEMA_VERSION,
    dump_record,
    extract_throughput_metrics,
    git_sha,
    load_record,
    params_digest,
    wrap_result,
)

__all__ = [
    "SCHEMA_VERSION",
    "wrap_result",
    "dump_record",
    "load_record",
    "git_sha",
    "params_digest",
    "extract_throughput_metrics",
    "CompareResult",
    "compare_records",
    "render_compare",
]
