"""CLI for the benchmark trajectory tools.

``compare`` is the CI regression gate::

    python -m repro.bench compare BENCH_fig2.json BENCH_a10_faults.json \\
        --baselines benchmarks/baselines --threshold 0.10

Each record is diffed against ``<baselines>/<filename>``; the process
exits 1 if any metric regressed past the threshold, a baseline metric is
missing from the run, or the params digests disagree.  Records with no
committed baseline are reported and skipped (the first run seeds them)
unless ``--strict`` is given.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .compare import compare_records, render_compare
from .schema import load_record


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark trajectory records and regression gating.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_p = sub.add_parser(
        "compare", help="diff trajectory records against baselines"
    )
    cmp_p.add_argument(
        "records", nargs="+", metavar="RECORD",
        help="BENCH_<name>.json trajectory record(s) to check",
    )
    cmp_p.add_argument(
        "--baselines", default="benchmarks/baselines", metavar="DIR",
        help="directory of committed baseline records "
             "(default: benchmarks/baselines)",
    )
    cmp_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="explicit baseline file (single-record comparisons only)",
    )
    cmp_p.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRAC",
        help="regression gate as a fraction (default: 0.10 = 10%%)",
    )
    cmp_p.add_argument(
        "--strict", action="store_true",
        help="also fail when a record has no committed baseline",
    )
    return parser


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.baseline is not None and len(args.records) != 1:
        print("--baseline requires exactly one RECORD", file=sys.stderr)
        return 2
    failed = False
    for rec_path in args.records:
        current = load_record(rec_path)
        if args.baseline is not None:
            base_path = Path(args.baseline)
        else:
            base_path = Path(args.baselines) / Path(rec_path).name
        if not base_path.exists():
            print(f"== {Path(rec_path).name}: no baseline at {base_path} "
                  f"— skipped (commit one to arm the gate)")
            if args.strict:
                failed = True
            continue
        result = compare_records(
            current, load_record(base_path), threshold=args.threshold
        )
        print(render_compare(result))
        if not result.ok:
            failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
