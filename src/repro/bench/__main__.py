"""CLI for the benchmark trajectory tools.

``compare`` is the CI regression gate::

    python -m repro.bench compare BENCH_fig2.json BENCH_a10_faults.json \\
        --baselines benchmarks/baselines --threshold 0.10

Each record is diffed against ``<baselines>/<filename>``; records with
no committed baseline are reported and skipped (the first run seeds
them) unless ``--strict`` is given.  When the gate trips and
``--explain-baseline`` / ``--explain-current`` point at attribution
artifacts (``analyze --json`` summaries or profiled trace JSONL), an
"explain" report naming the regressed phase is emitted as well.

Exit codes (distinct so CI can tell the failure modes apart):

* 0 — every record compared clean (or was skipped without ``--strict``);
* 1 — regression gate tripped: a metric regressed past the threshold,
  a baseline metric is missing from the run, or params digests disagree;
* 2 — usage error (bad flags, unreadable record);
* 3 — ``--strict`` and at least one record had no committed baseline
  (no metric regressed — seeding the baseline fixes it).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .compare import compare_records, render_compare
from .schema import load_record

#: Exit codes, also documented in ``--help``.
EXIT_CLEAN = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_MISSING_BASELINE = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark trajectory records and regression gating.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_p = sub.add_parser(
        "compare", help="diff trajectory records against baselines",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  clean (all records within threshold; records without a\n"
            "     baseline are skipped unless --strict)\n"
            "  1  regression (metric past threshold, metric missing from\n"
            "     the run, or params digest mismatch)\n"
            "  2  usage error\n"
            "  3  --strict and a record had no committed baseline\n"
            "regression (1) takes precedence over missing baseline (3)."
        ),
    )
    cmp_p.add_argument(
        "records", nargs="*", metavar="RECORD",
        help="BENCH_<name>.json trajectory record(s) to check "
             "(or use --all)",
    )
    cmp_p.add_argument(
        "--all", action="store_true", dest="all_records",
        help="gate every BENCH_*.json under --dir in one invocation "
             "(records without a committed baseline skip, as usual)",
    )
    cmp_p.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory searched by --all (default: current directory)",
    )
    cmp_p.add_argument(
        "--baselines", default="benchmarks/baselines", metavar="DIR",
        help="directory of committed baseline records "
             "(default: benchmarks/baselines)",
    )
    cmp_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="explicit baseline file (single-record comparisons only)",
    )
    cmp_p.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRAC",
        help="regression gate as a fraction (default: 0.10 = 10%%)",
    )
    cmp_p.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 3) when a record has no committed baseline",
    )
    cmp_p.add_argument(
        "--explain-baseline", default=None, metavar="FILE",
        help="baseline attribution JSON (analyze --json) or profiled "
             "trace JSONL; with --explain-current, a tripped gate also "
             "emits a differential report naming the regressed phase",
    )
    cmp_p.add_argument(
        "--explain-current", default=None, metavar="FILE",
        help="current-run attribution JSON or profiled trace JSONL "
             "(see --explain-baseline)",
    )
    cmp_p.add_argument(
        "--explain-out", default=None, metavar="FILE",
        help="also write the explain report as JSON to FILE",
    )
    return parser


def _explain(args: argparse.Namespace) -> None:
    """Gate tripped: emit the differential attribution report."""
    from ..obs.diff import diff_attributions, load_attribution
    from ..obs.reports import render_diff_report

    try:
        base = load_attribution(args.explain_baseline)
        current = load_attribution(args.explain_current)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"explain: cannot read attribution input: {exc}",
              file=sys.stderr)
        return
    report = diff_attributions(base, current)
    print()
    print("== explain: differential attribution "
          f"({args.explain_baseline} -> {args.explain_current})")
    print(render_diff_report(report))
    if args.explain_out:
        with open(args.explain_out, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=2, sort_keys=True, default=float)
            fp.write("\n")
        print(f"explain report -> {args.explain_out}")


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.all_records and args.records:
        print("give RECORD arguments or --all, not both", file=sys.stderr)
        return EXIT_USAGE
    if args.all_records:
        args.records = sorted(
            str(p) for p in Path(args.dir).glob("BENCH_*.json")
        )
        if not args.records:
            print(f"compare --all: no BENCH_*.json records under "
                  f"{args.dir}", file=sys.stderr)
            return EXIT_USAGE
    elif not args.records:
        print("no records given (pass RECORD files or --all)",
              file=sys.stderr)
        return EXIT_USAGE
    if args.baseline is not None and len(args.records) != 1:
        print("--baseline requires exactly one RECORD", file=sys.stderr)
        return EXIT_USAGE
    if (args.explain_baseline is None) != (args.explain_current is None):
        print("--explain-baseline and --explain-current go together",
              file=sys.stderr)
        return EXIT_USAGE
    if args.explain_out and args.explain_baseline is None:
        print("--explain-out requires --explain-baseline/--explain-current",
              file=sys.stderr)
        return EXIT_USAGE
    regressed = False
    missing = False
    for rec_path in args.records:
        try:
            current = load_record(rec_path)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"compare: cannot read record {rec_path}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        if args.baseline is not None:
            base_path = Path(args.baseline)
        else:
            base_path = Path(args.baselines) / Path(rec_path).name
        if not base_path.exists():
            print(f"== {Path(rec_path).name}: no baseline at {base_path} "
                  f"— skipped (commit one to arm the gate)")
            if args.strict:
                missing = True
            continue
        try:
            baseline = load_record(base_path)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"compare: cannot read baseline {base_path}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        result = compare_records(
            current, baseline, threshold=args.threshold
        )
        print(render_compare(result))
        if not result.ok:
            regressed = True
    if regressed and args.explain_baseline is not None:
        _explain(args)
    if regressed:
        return EXIT_REGRESSION
    if missing:
        return EXIT_MISSING_BASELINE
    return EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
