"""Diff a benchmark trajectory record against a committed baseline.

The gate is throughput-shaped: a metric *regresses* when
``current < baseline * (1 - threshold)``.  Improvements are reported but
never fail; metrics the current run is missing fail loudly (a silently
dropped curve is the worst kind of regression).  A ``params_digest``
mismatch also fails — comparing runs with different workload knobs says
nothing about the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["CompareResult", "compare_records", "render_compare"]


@dataclass
class CompareResult:
    """Outcome of one record-vs-baseline comparison."""

    name: str
    threshold: float
    regressions: list[dict[str, Any]] = field(default_factory=list)
    improvements: list[dict[str, Any]] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    compared: int = 0
    params_mismatch: bool = False

    @property
    def ok(self) -> bool:
        """True when the gate passes."""
        return not self.regressions and not self.missing \
            and not self.params_mismatch


def compare_records(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.10,
) -> CompareResult:
    """Compare ``current`` against ``baseline`` at ``threshold``."""
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    result = CompareResult(
        name=str(current.get("name", "?")), threshold=threshold
    )
    if current.get("params_digest") != baseline.get("params_digest"):
        result.params_mismatch = True
        return result
    cur = current.get("metrics", {})
    base = baseline.get("metrics", {})
    for metric in sorted(base):
        b = base[metric]
        if metric not in cur:
            result.missing.append(metric)
            continue
        c = cur[metric]
        if b <= 0.0:
            continue
        result.compared += 1
        ratio = c / b
        entry = {
            "metric": metric, "baseline": b, "current": c, "ratio": ratio,
        }
        # Inclusive boundary: a drop of exactly the threshold fails (the
        # gate reads "regressed by 10% or more", not "strictly more").
        if ratio <= 1.0 - threshold:
            result.regressions.append(entry)
        elif ratio >= 1.0 + threshold:
            result.improvements.append(entry)
    return result


def render_compare(result: CompareResult) -> str:
    """Human-readable comparison report."""
    pct = result.threshold * 100.0
    lines = [
        f"== {result.name}: {result.compared} metrics vs baseline "
        f"(gate: -{pct:.0f}%) =="
    ]
    if result.params_mismatch:
        lines.append(
            "  FAIL params digest mismatch — current and baseline were "
            "produced with different workload knobs; regenerate the "
            "baseline with matching REPRO_* settings"
        )
        return "\n".join(lines)
    for entry in result.regressions:
        lines.append(
            f"  REGRESSION {entry['metric']}: "
            f"{entry['baseline']:.2f} -> {entry['current']:.2f} "
            f"({(entry['ratio'] - 1.0) * 100.0:+.1f}%)"
        )
    for metric in result.missing:
        lines.append(f"  MISSING {metric}: in baseline, absent from run")
    for entry in result.improvements:
        lines.append(
            f"  improved {entry['metric']}: "
            f"{entry['baseline']:.2f} -> {entry['current']:.2f} "
            f"({(entry['ratio'] - 1.0) * 100.0:+.1f}%)"
        )
    if result.ok:
        lines.append(
            f"  ok — no metric regressed more than {pct:.0f}% "
            f"({len(result.improvements)} improved)"
        )
    return "\n".join(lines)
