"""The shared benchmark-artifact schema.

A *trajectory record* wraps one benchmark's result ``data`` with enough
provenance to compare runs across commits:

* ``schema_version`` — bump on incompatible shape changes;
* ``git_sha`` — the commit the run was built from (``REPRO_GIT_SHA``
  override for CI, ``git rev-parse`` fallback, ``"unknown"`` outside a
  checkout);
* ``seed`` — the experiment seed (runs are deterministic given it);
* ``params`` + ``params_digest`` — the knobs that shaped the workload
  (scale, request count, clients, memory points) and a short digest of
  them, so a comparison can refuse to diff apples against oranges;
* ``metrics`` — flat ``dotted.path -> scalar`` throughput numbers
  extracted from ``data``, the quantities the regression gate checks.

Records are always serialized with sorted keys so diffs are stable.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "git_sha",
    "params_digest",
    "extract_throughput_metrics",
    "wrap_result",
    "dump_record",
    "load_record",
]

SCHEMA_VERSION = 1


def git_sha() -> str:
    """Commit sha of the working tree, or ``"unknown"``.

    ``REPRO_GIT_SHA`` wins when set (CI exports it so records stay
    correct even when the checkout is shallow or detached).
    """
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=float)


def params_digest(params: dict[str, Any]) -> str:
    """Short stable digest of a parameter dict (16 hex chars)."""
    return hashlib.sha256(_canonical(params).encode()).hexdigest()[:16]


def _label(item: Any, index: int) -> str:
    """Path label for a list element: its self-describing name if any."""
    if isinstance(item, dict):
        for key in ("system", "name", "trace"):
            val = item.get(key)
            if isinstance(val, str):
                return val
    return str(index)


def _collect(obj: Any, path: str, in_throughput: bool,
             out: dict[str, float]) -> None:
    if isinstance(obj, dict):
        for key in sorted(obj):
            sub = f"{path}.{key}" if path else str(key)
            _collect(obj[key], sub,
                     in_throughput or key == "throughput_rps", out)
        return
    if isinstance(obj, (list, tuple)):
        if in_throughput and obj and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in obj
        ):
            out[path] = sum(float(v) for v in obj) / len(obj)
            return
        for i, item in enumerate(obj):
            _collect(item, f"{path}.{_label(item, i)}" if path
                     else _label(item, i), in_throughput, out)
        return
    if in_throughput and isinstance(obj, (int, float)) \
            and not isinstance(obj, bool):
        out[path] = float(obj)


def extract_throughput_metrics(data: Any) -> dict[str, float]:
    """Flatten every ``throughput_rps`` value in ``data`` to
    ``dotted.path -> scalar`` (lists of numbers collapse to their mean).

    Works unchanged over the fig2 shape
    (``trace -> throughput_rps -> system -> [per-memory]``) and the a10
    shape (``systems[] -> points[] -> throughput_rps``): list elements
    that carry a ``system`` / ``name`` / ``trace`` field contribute it
    to the path instead of a bare index, so paths survive reordering.
    """
    out: dict[str, float] = {}
    _collect(data, "", False, out)
    return out


def wrap_result(
    name: str,
    data: Any,
    *,
    seed: int = 0,
    params: dict[str, Any] | None = None,
    metrics: dict[str, float] | None = None,
) -> dict[str, Any]:
    """Build one trajectory record around a benchmark result."""
    params = dict(params or {})
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "git_sha": git_sha(),
        "seed": seed,
        "params": params,
        "params_digest": params_digest(params),
        "metrics": (
            metrics if metrics is not None
            else extract_throughput_metrics(data)
        ),
        "data": data,
    }


def dump_record(record: dict[str, Any], path) -> None:
    """Serialize a record with sorted keys (stable diffs)."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(record, fp, indent=2, sort_keys=True, default=float)
        fp.write("\n")


def load_record(path) -> dict[str, Any]:
    """Read a record back."""
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)
