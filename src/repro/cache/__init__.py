"""Block caching substrate (system S4 in DESIGN.md).

* :class:`~repro.cache.block.BlockId` / :class:`~repro.cache.block.FileLayout`
  — block identity and file geometry.
* :class:`~repro.cache.lru.AgedLRU` — age-ordered block set.
* :class:`~repro.cache.blockcache.BlockCache` — one node's memory.
* :class:`~repro.cache.directory.GlobalDirectory` — master-block location.
* :class:`~repro.cache.directory.HomeMap` — file-to-disk placement.
"""

from .block import BlockId, FileLayout
from .blockcache import BlockCache, CacheFullError
from .directory import GlobalDirectory, HomeMap
from .lru import AgedLRU

__all__ = [
    "BlockId",
    "FileLayout",
    "AgedLRU",
    "BlockCache",
    "CacheFullError",
    "GlobalDirectory",
    "HomeMap",
]
