"""Block identity and file layout arithmetic.

The middleware caches fixed-size blocks (8 KB) of files laid out in 64 KB
extents.  A :class:`BlockId` names one block; :class:`FileLayout` answers
the geometry questions every component asks (how many blocks, which
extent a block lives in, how many KB a given block actually holds — the
last block of a file is usually partial).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import NamedTuple

from ..params import SimParams

__all__ = ["BlockId", "FileLayout"]


class BlockId(NamedTuple):
    """One cache block: block ``index`` of file ``file_id`` (both 0-based)."""

    file_id: int
    index: int


class FileLayout:
    """Geometry of a file set under a given parameterization.

    Built once per simulation from the trace's per-file sizes (KB); every
    query is O(1).
    """

    __slots__ = ("params", "_sizes_kb", "_blocks_per_extent")

    def __init__(self, sizes_kb: Sequence[float], params: SimParams) -> None:
        for i, s in enumerate(sizes_kb):
            if s <= 0:
                raise ValueError(f"file {i} has non-positive size {s!r}")
        self.params = params
        self._sizes_kb: list[float] = list(sizes_kb)
        self._blocks_per_extent = params.extent_kb // params.block_kb

    # -- file-level queries ---------------------------------------------------
    @property
    def num_files(self) -> int:
        """Number of files in the set."""
        return len(self._sizes_kb)

    def size_kb(self, file_id: int) -> float:
        """Size of ``file_id`` in KB."""
        return self._sizes_kb[file_id]

    def num_blocks(self, file_id: int) -> int:
        """Blocks needed to cache ``file_id``."""
        return self.params.blocks_of(self._sizes_kb[file_id])

    def num_extents(self, file_id: int) -> int:
        """Extents ``file_id`` spans on disk."""
        return self.params.extents_of(self._sizes_kb[file_id])

    def total_blocks(self) -> int:
        """Blocks needed to cache the entire file set (the theoretical
        aggregate-memory requirement Figure 1 discusses)."""
        return sum(self.num_blocks(f) for f in range(self.num_files))

    def total_size_kb(self) -> float:
        """File-set size in KB (paper Table 2 last column)."""
        return sum(self._sizes_kb)

    # -- block-level queries ----------------------------------------------------
    def blocks(self, file_id: int) -> Iterator[BlockId]:
        """All blocks of ``file_id`` in order."""
        for i in range(self.num_blocks(file_id)):
            yield BlockId(file_id, i)

    def block_size_kb(self, block: BlockId) -> float:
        """KB of data in ``block`` (the final block may be partial)."""
        full = self.params.block_kb
        nblocks = self.num_blocks(block.file_id)
        if not 0 <= block.index < nblocks:
            raise IndexError(f"{block} out of range for file of {nblocks} blocks")
        if block.index < nblocks - 1:
            return float(full)
        rem = self._sizes_kb[block.file_id] - (nblocks - 1) * full
        return float(rem if rem > 0 else full)

    def extent_of(self, block: BlockId) -> int:
        """Extent index containing ``block``."""
        return block.index // self._blocks_per_extent
