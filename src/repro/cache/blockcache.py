"""Per-node block cache with master / non-master segregation.

A node's memory holds up to ``capacity_blocks`` blocks.  Master copies
(the cluster's canonical in-memory copy of a block) and non-master copies
(local replicas made on remote hits) live in separate age-ordered sets so
replacement policies can ask for "the oldest block overall" (CC-Basic's
global-LRU victim) or "the oldest non-master" (CC-KMC's preferred victim)
in O(log n).

The cache is a passive data structure: *deciding* what to do with a
victim (drop vs forward to a peer) is the middleware's job in
:mod:`repro.core.middleware`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .block import BlockId
from .lru import AgedLRU

if TYPE_CHECKING:
    from ..obs.cachestats import CacheScope

__all__ = ["BlockCache", "CacheFullError"]


class CacheFullError(RuntimeError):
    """Raised on insert into a full cache (the caller must evict first)."""


class BlockCache:
    """Fixed-capacity block store for one node.

    ``scope`` is an optional :class:`~repro.obs.cachestats.CacheScope`
    notified on every insert / remove / promote — residency accounting
    flows through these three methods and nowhere else (``clear`` is a
    remove loop), so telemetry cannot drift from the cache contents.
    """

    __slots__ = ("node_id", "capacity_blocks", "_masters", "_nonmasters",
                 "_dirty", "_scope")

    def __init__(self, node_id: int, capacity_blocks: int,
                 scope: CacheScope | None = None) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity must be at least one block")
        self.node_id = node_id
        self.capacity_blocks = capacity_blocks
        self._masters = AgedLRU()
        self._nonmasters = AgedLRU()
        # Masters holding unwritten-back modifications (write extension).
        # A dict used as an insertion-ordered set: iteration order is the
        # order blocks were dirtied, which is deterministic by
        # construction (a hash-ordered set would couple flush order to
        # hash-table internals).
        self._dirty: dict[BlockId, None] = {}
        self._scope = scope

    # -- size -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._masters) + len(self._nonmasters)

    def __contains__(self, block: BlockId) -> bool:
        return block in self._masters or block in self._nonmasters

    @property
    def is_full(self) -> bool:
        """True when an insert would require an eviction first."""
        return len(self) >= self.capacity_blocks

    @property
    def free_slots(self) -> int:
        """Blocks that can be inserted without eviction."""
        return self.capacity_blocks - len(self)

    @property
    def num_masters(self) -> int:
        """Resident master copies."""
        return len(self._masters)

    @property
    def num_nonmasters(self) -> int:
        """Resident non-master (replica) copies."""
        return len(self._nonmasters)

    # -- queries -----------------------------------------------------------------
    def is_master(self, block: BlockId) -> bool:
        """True if this node holds the master copy of ``block``."""
        return block in self._masters

    def age_of(self, block: BlockId) -> float:
        """Last-access timestamp of a resident block."""
        if block in self._masters:
            return self._masters.age_of(block)
        return self._nonmasters.age_of(block)

    def oldest(self) -> tuple[BlockId, float, bool] | None:
        """Overall oldest resident block as (block, age, is_master).

        Ties between the two sets break toward the non-master — evicting
        the replica is always at least as safe.
        """
        m = self._masters.oldest()
        n = self._nonmasters.oldest()
        if m is None and n is None:
            return None
        if m is None:
            return (*n, False)  # type: ignore[misc]
        if n is None:
            return (*m, True)
        return (*n, False) if n[1] <= m[1] else (*m, True)

    def oldest_age(self) -> float:
        """Age of the overall oldest block; +inf for an empty cache.

        This is the quantity peers compare when deciding where to forward
        an evicted master ("each node always knows the age of the oldest
        blocks of its peers").
        """
        return min(self._masters.oldest_age(), self._nonmasters.oldest_age())

    def oldest_nonmaster(self) -> tuple[BlockId, float] | None:
        """Oldest non-master copy, or None if the cache holds only masters."""
        return self._nonmasters.oldest()

    def masters(self) -> tuple[BlockId, ...]:
        """Read-only view of the resident master copies.

        A snapshot tuple, so callers (invariant checks, debugging tools)
        can iterate while the cache mutates and can never corrupt the
        master set by accident.
        """
        return tuple(self._masters)

    # -- mutation -----------------------------------------------------------------
    def touch(self, block: BlockId, now: float) -> None:
        """Record an access to a resident block (refreshes its age)."""
        if block in self._masters:
            self._masters.touch(block, now)
        else:
            self._nonmasters.touch(block, now)

    def insert(self, block: BlockId, *, master: bool, age: float) -> None:
        """Insert ``block`` (error if present or if the cache is full).

        ``age`` is the block's access timestamp — ``now`` for a fresh
        fetch, or the *original* age for a forwarded master.
        """
        if block in self:
            raise KeyError(f"{block} already cached at node {self.node_id}")
        if self.is_full:
            raise CacheFullError(
                f"node {self.node_id} cache full ({self.capacity_blocks} blocks)"
            )
        (self._masters if master else self._nonmasters).add(block, age)
        if self._scope is not None:
            self._scope.on_insert(self.node_id, block, master)

    def remove(self, block: BlockId) -> bool:
        """Remove a resident block; returns True if it was the master.

        Any dirty flag is discarded with the block — callers that must
        preserve modified data (eviction of a dirty master) check
        :meth:`is_dirty` *before* removing.
        """
        self._dirty.pop(block, None)
        if block in self._masters:
            self._masters.remove(block)
            was_master = True
        else:
            self._nonmasters.remove(block)
            was_master = False
        if self._scope is not None:
            self._scope.on_remove(self.node_id, block, was_master)
        return was_master

    # -- dirty tracking (write-protocol extension) ---------------------------
    def mark_dirty(self, block: BlockId) -> None:
        """Flag a resident *master* as modified and not yet written back."""
        if block not in self._masters:
            raise KeyError(f"{block} is not a resident master")
        self._dirty[block] = None

    def clear_dirty(self, block: BlockId) -> None:
        """The block's modifications reached disk (idempotent)."""
        self._dirty.pop(block, None)

    def is_dirty(self, block: BlockId) -> bool:
        """True if the block holds unwritten-back modifications."""
        return block in self._dirty

    @property
    def num_dirty(self) -> int:
        """Resident dirty masters."""
        return len(self._dirty)

    def dirty_blocks(self) -> tuple[BlockId, ...]:
        """Snapshot of the dirty masters, in the order they were dirtied.

        The sanctioned way for the middleware to enumerate what a flush
        must write back — reaching into ``_dirty`` would bypass the
        census code path (simlint SL04).
        """
        return tuple(self._dirty)

    def clear(self) -> tuple[BlockId, ...]:
        """Drop every resident block (fail-stop crash: memory is lost).

        Returns the blocks that were resident (masters first) so the
        middleware's crash repair can account for them; dirty flags are
        discarded with the data — that *is* the data loss being modeled.
        Routed through :meth:`remove` so all bookkeeping (dirty flags,
        scope census) decrements through the one removal code path.
        """
        lost = tuple(self._masters) + tuple(self._nonmasters)
        for block in lost:
            self.remove(block)
        return lost

    def promote_to_master(self, block: BlockId) -> None:
        """Turn a resident non-master copy into the master (age kept).

        Used when a forwarded master lands on a node already holding a
        replica of the same block: the replica absorbs master status
        instead of duplicating the block.
        """
        age = self._nonmasters.remove(block)
        self._masters.add(block, age)
        if self._scope is not None:
            self._scope.on_promote(self.node_id, block)

    def stats(self) -> dict[str, int]:
        """Occupancy snapshot, so observers never reach into private state."""
        return {
            "node": self.node_id,
            "capacity_blocks": self.capacity_blocks,
            "masters": len(self._masters),
            "nonmasters": len(self._nonmasters),
            "dirty": len(self._dirty),
            "free_slots": self.free_slots,
        }

    def compact(self) -> None:
        """Bound heap garbage in long runs."""
        self._masters.compact()
        self._nonmasters.compact()
