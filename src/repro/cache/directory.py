"""Global master-block directory and the file-to-home mapping.

The paper's optimistic baseline assumes "a perfect global directory of
master blocks" maintained at zero cost, plus "perfect global knowledge of
the age of the oldest block on each node".  :class:`GlobalDirectory`
implements the former; the age oracle lives with the middleware (it reads
peer caches directly, which *is* the perfect-knowledge assumption).

The hint-based alternative (Sarkar & Hartman, the paper's future work)
subclasses the directory in :mod:`repro.core.hints`.

:class:`HomeMap` is the "general case of files being distributed across
all nodes, with each node having a copy of the global file-to-node
mapping"; a file's home is where its blocks live on disk.
"""

from __future__ import annotations

from collections.abc import Iterable

from .block import BlockId

__all__ = ["GlobalDirectory", "HomeMap"]


class GlobalDirectory:
    """Perfect, instantaneously consistent block -> master-holder map."""

    __slots__ = ("_masters",)

    def __init__(self) -> None:
        self._masters: dict[BlockId, int] = {}

    def lookup(self, block: BlockId) -> int | None:
        """Node currently holding the master of ``block``, or None."""
        return self._masters.get(block)

    def set_master(self, block: BlockId, node_id: int) -> None:
        """Record that ``node_id`` now holds the master of ``block``."""
        self._masters[block] = node_id

    def clear_master(self, block: BlockId) -> None:
        """The master of ``block`` left cluster memory (dropped)."""
        self._masters.pop(block, None)

    def __len__(self) -> int:
        return len(self._masters)

    def masters_at(self, node_id: int) -> int:
        """Count of master blocks recorded at ``node_id`` (O(n); debugging
        and invariant checks only)."""
        # simlint: ordered -- integer count over the whole view; the
        # result is independent of iteration order.
        return sum(1 for holder in self._masters.values() if holder == node_id)

    def census(self) -> dict[int, int]:
        """Recorded master count per node id (one O(n) pass; telemetry
        snapshots and invariant checks, not the request path)."""
        counts: dict[int, int] = {}
        # simlint: ordered -- entries were inserted in event order
        # (set_master is only called from the deterministic event loop;
        # this holds for every implementation behind the directory seam:
        # PartitionedDirectory mutates _masters only through these same
        # event-ordered methods), and integer counting is
        # order-independent anyway.
        for holder in self._masters.values():
            counts[holder] = counts.get(holder, 0) + 1
        return counts

    def purge_node(self, node_id: int) -> list[BlockId]:
        """Drop every entry pointing at ``node_id``; returns those blocks.

        Directory repair after a fail-stop crash: the node's memory — and
        with it every master copy it held — is gone, so entries naming it
        are orphans.  Only its own entries are touched (O(n) over the
        directory; crashes are rare events, not a hot path).
        """
        purged = [
            # simlint: ordered -- dict insertion order: entries were
            # recorded in event order, so the purge list (and the repair
            # events it drives) is deterministic run to run.  Subclasses
            # (HintDirectory, PartitionedDirectory) insert through the
            # same methods, so the argument survives the directory seam.
            blk for blk, holder in self._masters.items() if holder == node_id
        ]
        for blk in purged:
            del self._masters[blk]
        return purged


class HomeMap:
    """Static assignment of files to the nodes whose disks store them.

    ``strategy`` is either ``"round_robin"`` (file *f* lives on node
    ``f % N`` — the even spread the paper assumes) or ``"concentrated"``
    (every file on node 0 — the hot-spot stress of ablation A2, optionally
    limited to the ``hot_files`` most popular files via
    :meth:`concentrate`).
    """

    __slots__ = ("num_nodes", "num_files", "_home")

    def __init__(self, num_files: int, num_nodes: int, strategy: str = "round_robin") -> None:
        if num_nodes < 1 or num_files < 1:
            raise ValueError("need at least one file and one node")
        self.num_nodes = num_nodes
        self.num_files = num_files
        if strategy == "round_robin":
            self._home = [f % num_nodes for f in range(num_files)]
        elif strategy == "concentrated":
            self._home = [0] * num_files
        else:
            raise ValueError(f"unknown home strategy: {strategy!r}")

    def home_of(self, file_id: int) -> int:
        """Node whose disk stores ``file_id``."""
        return self._home[file_id]

    def concentrate(self, file_ids: Iterable[int], node_id: int = 0) -> None:
        """Re-home the given files onto one node (ablation A2)."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node {node_id} out of range")
        for f in file_ids:
            self._home[f] = node_id
