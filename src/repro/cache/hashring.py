"""Consistent-hash ring and the hash-partitioned master directory.

The paper assumes "a perfect global directory of master blocks"
maintained at zero cost — the scalability fiction that blocks every
>16-node scenario (ROADMAP item 2).  This module replaces it with the
standard decentralization: each block has a **home node** chosen by a
consistent-hash ring with virtual nodes (CoT-style load spreading), the
home answers location lookups for its partition, and answers are only
**boundedly stale** — a routing lookup at time *t* may reflect any state
that was true at some instant in ``[t - staleness_ms, t]``.

Design points:

* :func:`stable_hash` is a *seeded, process-stable* hash (BLAKE2b with
  the seed as key).  Python's builtin ``hash`` is salted per process
  (PYTHONHASHSEED) and would silently break cross-process determinism —
  simlint SL02 territory.
* :class:`HashRing` keeps ``vnodes`` points per node on a 64-bit ring;
  placement depends only on ``(node_id, vnode, seed)``, never on join
  order, so any process reconstructs the identical ring.
* :class:`PartitionedDirectory` subclasses
  :class:`~repro.cache.directory.GlobalDirectory`: the *authoritative*
  map stays one shared dict (the simulation is single-process), and
  partitioning is modeled as a **visibility and cost layer** over it —
  exactly how :class:`~repro.core.hints.HintDirectory` models hint
  inaccuracy.  ``route_lookup`` serves the boundedly stale view;
  ``lookup`` stays exact (consistency operations involve the nodes that
  own the truth first-hand).  Network hops for remote-home lookups are
  charged by the middleware, which knows the cluster (see
  ``CoopCacheLayer._directory_lookup_hops``).
* Staleness bookkeeping records, per block, the *previous* value at the
  first change inside a window; until that record expires every routing
  lookup serves it.  Served values are therefore always true somewhere
  in the window — the bound holds by construction — and expire in one
  step (no multi-version chains), matching a home node that batches
  update application every ``staleness_ms``.
* A fail-stop crash repairs the ring synchronously
  (:meth:`PartitionedDirectory.partition_crash`, called from the
  middleware's crash hook *before* the usual directory purge): the dead
  home's partition forgets its entries, the ring drops the node, and
  every stale record naming the dead node is invalidated — so routing
  can never chase a corpse, the same guarantee the oracle repair gives.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from collections.abc import Callable, Iterable
from typing import Protocol

from .block import BlockId
from .directory import GlobalDirectory

__all__ = ["stable_hash", "HashRing", "PartitionedDirectory"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


class _Clocked(Protocol):
    """Anything with a simulated-time attribute (duck-typed Simulator)."""

    now: float


def stable_hash(data: str, seed: int = 0) -> int:
    """Seeded 64-bit hash of ``data``, stable across processes and runs.

    BLAKE2b keyed by the seed: changing the seed permutes the ring
    wholesale, while any one seed gives the same placement everywhere
    (unlike builtin ``hash``, which is salted per process).
    """
    digest = hashlib.blake2b(
        data.encode("utf-8"),
        digest_size=8,
        key=(seed & _MASK64).to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "big")


def _block_key(block: BlockId) -> str:
    """Ring key of one block (stable printable form)."""
    return f"b:{block.file_id}:{block.index}"


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node owns ``vnodes`` points at ``stable_hash("n:<id>:<v>")``;
    a key belongs to the node owning the first point clockwise from the
    key's hash.  Adding or removing a node moves only the keys adjacent
    to its points (~``K/N`` of them), never reshuffles the rest — the
    property the join/leave tests pin.
    """

    __slots__ = ("vnodes", "seed", "_points", "_nodes")

    def __init__(
        self, node_ids: Iterable[int], vnodes: int = 32, seed: int = 0
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        #: Sorted ``(point, node_id)`` pairs; ties (astronomically rare
        #: 64-bit collisions) break to the lower node id via tuple order.
        self._points: list[tuple[int, int]] = []
        self._nodes: set[int] = set()
        for nid in node_ids:
            if nid in self._nodes:
                raise ValueError(f"duplicate node id {nid}")
            self.add_node(nid)
        if not self._nodes:
            raise ValueError("ring needs at least one node")

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def nodes(self) -> list[int]:
        """Member node ids, ascending."""
        return sorted(self._nodes)

    def _node_points(self, node_id: int) -> list[tuple[int, int]]:
        return [
            (stable_hash(f"n:{node_id}:{v}", self.seed), node_id)
            for v in range(self.vnodes)
        ]

    def add_node(self, node_id: int) -> None:
        """Place ``node_id``'s virtual points on the ring (idempotent)."""
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for pt in self._node_points(node_id):
            insort(self._points, pt)

    def remove_node(self, node_id: int) -> None:
        """Drop ``node_id``'s points; its arcs fall to the successors."""
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]

    def owner(self, key: str) -> int:
        """Node owning ``key`` (first ring point clockwise of its hash)."""
        if not self._points:
            raise ValueError("owner() on an empty ring")
        h = stable_hash(key, self.seed)
        idx = bisect_left(self._points, (h, -1))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._points[idx][1]


class PartitionedDirectory(GlobalDirectory):
    """Hash-partitioned directory with bounded-staleness routing.

    Implements the :class:`GlobalDirectory` protocol; consistency
    operations (``lookup`` / ``set_master`` / ``clear_master`` /
    ``purge_node``) stay exact, while :meth:`route_lookup` — the answer
    a requesting node actually acts on — may lag reality by up to
    ``staleness_ms``.  The middleware charges network round trips to
    remote ring homes; with ``staleness_ms == 0`` (and hop cost off)
    this directory is observation-identical to the oracle, which the
    differential suite pins.
    """

    __slots__ = (
        "ring", "staleness_ms", "_clock", "_stale",
        "lookups", "stale_served",
    )

    def __init__(
        self,
        num_nodes: int,
        vnodes: int = 32,
        seed: int = 0,
        staleness_ms: float = 0.0,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if staleness_ms < 0.0:
            raise ValueError("staleness_ms must be >= 0")
        super().__init__()
        self.ring = HashRing(range(num_nodes), vnodes=vnodes, seed=seed)
        self.staleness_ms = staleness_ms
        #: Staleness clock; rebound to ``sim.now`` by :meth:`attach`
        #: (mirrors ``CacheScope``).  Unattached, time stands at 0 and
        #: with ``staleness_ms == 0`` no record ever serves.
        self._clock: Callable[[], float] = lambda: 0.0
        #: block -> (previous holder or None, expiry time): the view a
        #: routing lookup serves until the window closes.
        self._stale: dict[BlockId, tuple[int | None, float]] = {}
        #: Total routing lookups.
        self.lookups = 0
        #: Routing lookups answered from an unexpired stale record.
        self.stale_served = 0

    # -- wiring ---------------------------------------------------------
    def attach(self, sim: _Clocked) -> None:
        """Read the staleness clock from ``sim.now`` from now on."""
        self._clock = lambda: float(sim.now)

    # -- ring placement -------------------------------------------------
    def home_of(self, block: BlockId) -> int:
        """Ring home of ``block`` — the node answering lookups for it."""
        return self.ring.owner(_block_key(block))

    # -- bounded-staleness bookkeeping ---------------------------------
    def _record_stale(self, block: BlockId) -> None:
        """Snapshot the pre-change value for the staleness window.

        Only the *first* change in a window records (the oldest view is
        the one that bounds staleness); later changes inside the same
        window leave it in place.
        """
        if self.staleness_ms <= 0.0:
            return
        now = self._clock()
        rec = self._stale.get(block)
        if rec is not None and now < rec[1]:
            return  # an unexpired view already bounds this window
        self._stale[block] = (self.lookup(block), now + self.staleness_ms)

    def set_master(self, block: BlockId, node_id: int) -> None:
        self._record_stale(block)
        super().set_master(block, node_id)

    def clear_master(self, block: BlockId) -> None:
        self._record_stale(block)
        super().clear_master(block)

    def route_lookup(self, block: BlockId) -> int | None:
        """Where the requester *believes* the master lives.

        Serves the recorded pre-change view while its window is open
        (``stale_served``), the authoritative answer otherwise.  The
        served value was true within the last ``staleness_ms`` — the
        bounded-staleness contract the property tests pin.
        """
        self.lookups += 1
        rec = self._stale.get(block)
        if rec is not None:
            value, expiry = rec
            if self._clock() < expiry:
                self.stale_served += 1
                return value
            del self._stale[block]  # window closed: lazily drop
        return self.lookup(block)

    # -- repair ---------------------------------------------------------
    def purge_node(self, node_id: int) -> list[BlockId]:
        purged = super().purge_node(node_id)
        if self._stale:
            gone = set(purged)
            dead = [
                # simlint: ordered -- dict insertion order: stale records
                # are created in event order, so the drop list is
                # deterministic run to run (and drops mutate no sim
                # state beyond this private table anyway).
                blk for blk, (value, _exp) in self._stale.items()
                if blk in gone or value == node_id
            ]
            for blk in dead:
                del self._stale[blk]
        return purged

    def partition_crash(self, node_id: int) -> list[tuple[BlockId, int]]:
        """Ring repair for a fail-stop crash of ``node_id``.

        The dead node's partition of the location map is lost: every
        entry *homed* at it (but held elsewhere — entries it held are
        the usual :meth:`purge_node`'s business) is forgotten, the node
        leaves the ring, and stale records naming it are invalidated
        synchronously so routing never chases a corpse.  Returns the
        forgotten ``(block, holder)`` pairs; the middleware re-registers
        the ones whose holder still has the master resident.
        """
        if node_id not in self.ring:
            return []
        if len(self.ring) == 1:
            # Last member: keep the ring non-empty so home_of() stays
            # total (everything is down anyway; requests abort on the
            # is_down checks, not here).
            return []
        lost = [
            # simlint: ordered -- dict insertion order: entries were
            # recorded in event order (see GlobalDirectory.purge_node),
            # so the lost list — and the re-registration it drives — is
            # deterministic run to run.
            (blk, holder) for blk, holder in self._masters.items()
            if holder != node_id and self.home_of(blk) == node_id
        ]
        for blk, _holder in lost:
            del self._masters[blk]
        self.ring.remove_node(node_id)
        if self._stale:
            gone = {blk for blk, _holder in lost}
            dead = [
                # simlint: ordered -- same insertion-order argument as
                # purge_node above.
                blk for blk, (value, _exp) in self._stale.items()
                if blk in gone or value == node_id
            ]
            for blk in dead:
                del self._stale[blk]
        return lost

    def partition_rejoin(self, node_id: int) -> None:
        """A restarted node re-takes its ring arcs (cold: no entries)."""
        self.ring.add_node(node_id)
