"""Age-ordered block sets with O(log n) amortized operations.

A plain LRU list is not enough for cooperative caching: a *forwarded*
master block arrives at its destination carrying its **original age**, so
it must sort into the recency order rather than enter at the MRU end
(the paper relies on this: "when a forwarded block arrives at its
destination, all blocks at the destination may now be younger than the
forwarded block; in this case, the forwarded block is dropped").

:class:`AgedLRU` therefore stores an explicit age (last-access timestamp)
per block and finds the minimum through a lazy-deletion binary heap:
stale heap entries (from touches and removals) are discarded when they
surface.  Amortized cost per operation is O(log n).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from .block import BlockId

__all__ = ["AgedLRU"]


class AgedLRU:
    """A set of blocks ordered by age (older = smaller timestamp).

    Ties in age break by insertion order (earlier insertion = older),
    which keeps runs deterministic.
    """

    __slots__ = ("_ages", "_heap", "_seq")

    def __init__(self) -> None:
        self._ages: dict[BlockId, float] = {}
        self._heap: list[tuple[float, int, BlockId]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._ages)

    def __contains__(self, block: BlockId) -> bool:
        return block in self._ages

    def __iter__(self) -> Iterator[BlockId]:
        return iter(self._ages)

    def age_of(self, block: BlockId) -> float:
        """Last-access timestamp of ``block`` (KeyError if absent)."""
        return self._ages[block]

    def add(self, block: BlockId, age: float) -> None:
        """Insert ``block`` with the given age (error if present)."""
        if block in self._ages:
            raise KeyError(f"{block} already present")
        self._set(block, age)

    def touch(self, block: BlockId, age: float) -> None:
        """Refresh ``block``'s age (KeyError if absent).

        Ages must not go backwards for a resident block: a touch models a
        new access, which can only make the block younger.
        """
        old = self._ages[block]
        if age < old:
            raise ValueError(f"age moving backwards for {block}: {age} < {old}")
        self._set(block, age)

    def remove(self, block: BlockId) -> float:
        """Remove ``block``; returns its age (KeyError if absent)."""
        return self._ages.pop(block)  # heap entry goes stale; lazily dropped

    def _set(self, block: BlockId, age: float) -> None:
        self._ages[block] = age
        self._seq += 1
        heapq.heappush(self._heap, (age, self._seq, block))

    def oldest(self) -> tuple[BlockId, float] | None:
        """The (block, age) with the smallest age, or None when empty."""
        while self._heap:
            age, _seq, block = self._heap[0]
            current = self._ages.get(block)
            # simlint: disable=SL03 -- staleness check: compares the heap
            # entry against the *same stored float*, not a computed sum;
            # exact equality is the correct predicate here.
            if current is not None and current == age:
                return block, age
            heapq.heappop(self._heap)  # stale: removed or re-aged
        return None

    def oldest_age(self) -> float:
        """Age of the oldest block; +inf when empty (so comparisons like
        "does any peer hold an older block" degrade gracefully)."""
        entry = self.oldest()
        return entry[1] if entry is not None else float("inf")

    def pop_oldest(self) -> tuple[BlockId, float]:
        """Remove and return the oldest (block, age); error when empty."""
        entry = self.oldest()
        if entry is None:
            raise KeyError("pop from empty AgedLRU")
        block, age = entry
        del self._ages[block]
        heapq.heappop(self._heap)
        return block, age

    def compact(self) -> None:
        """Rebuild the heap, dropping stale entries (optional maintenance;
        called by long-running simulations to bound memory)."""
        self._heap = [
            # simlint: ordered -- insertion order of _ages; the rebuilt
            # heap is re-heapified below, and sequence numbers only break
            # exact-age ties, which insertion order resolves
            # deterministically.
            (age, i, block) for i, (block, age) in enumerate(self._ages.items())
        ]
        self._seq = len(self._heap)
        heapq.heapify(self._heap)

    @property
    def heap_size(self) -> int:
        """Current physical heap length (stale entries included)."""
        return len(self._heap)
