"""Cluster hardware substrate (systems S2-S3 in DESIGN.md).

A :class:`~repro.cluster.cluster.Cluster` bundles
:class:`~repro.cluster.node.Node` objects (CPU + NIC + bus +
:class:`~repro.cluster.disk.Disk`), a shared
:class:`~repro.cluster.network.Network`, the front-end
:class:`~repro.cluster.router.Router` and
:class:`~repro.cluster.router.RoundRobinDNS`.
"""

from .cluster import Cluster
from .disk import FIFO, SCAN, Disk, DiskRequest
from .network import Network
from .node import Node
from .router import RoundRobinDNS, Router

__all__ = [
    "Cluster",
    "Node",
    "Disk",
    "DiskRequest",
    "FIFO",
    "SCAN",
    "Network",
    "Router",
    "RoundRobinDNS",
]
