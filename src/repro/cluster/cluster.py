"""Cluster assembly: nodes + LAN + router + DNS in one object."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..params import SimParams
from ..sim.engine import Simulator
from .disk import SCAN
from .network import Network
from .node import Node
from .router import RoundRobinDNS, Router

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

__all__ = ["Cluster"]


class Cluster:
    """The modeled hardware: 4-32 nodes on a shared Gb/s LAN.

    This is pure substrate; the cooperative-caching middleware and the
    PRESS baseline both run on an unmodified :class:`Cluster`.
    """

    __slots__ = ("sim", "params", "nodes", "network", "router", "dns")

    def __init__(
        self,
        sim: Simulator,
        params: SimParams,
        num_nodes: int,
        disk_discipline: str = SCAN,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.sim = sim
        self.params = params
        self.nodes: list[Node] = [
            Node(sim, i, params, disk_discipline=disk_discipline)
            for i in range(num_nodes)
        ]
        self.network = Network(sim, params)
        self.router = Router(sim, params)
        self.dns = RoundRobinDNS(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def alive_nodes(self) -> list[Node]:
        """Nodes currently up (all of them, absent fault injection)."""
        return [n for n in self.nodes if n.up]

    def reset_stats(self) -> None:
        """Start a fresh measurement window everywhere (end of warm-up)."""
        for node in self.nodes:
            node.reset_stats()
        self.network.reset_stats()
        self.router.reset_stats()

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register every node's hardware and the LAN into ``registry``."""
        for node in self.nodes:
            node.bind_metrics(registry)
        self.network.bind_metrics(registry)

    def utilization(self) -> dict[str, float]:
        """Cluster-mean utilization per resource class (Figure 6a)."""
        per_node = [n.utilization() for n in self.nodes]
        keys = ("cpu", "nic", "bus", "disk")
        return {k: sum(u[k] for u in per_node) / len(per_node) for k in keys}

    def max_utilization(self) -> dict[str, float]:
        """Maximum per-node utilization per resource class.

        Useful for spotting the single bottleneck disk the paper describes
        ("the first disk that ... falls behind ... becomes the performance
        bottleneck for the entire system").
        """
        per_node = [n.utilization() for n in self.nodes]
        keys = ("cpu", "nic", "bus", "disk")
        return {k: max(u[k] for u in per_node) for k in keys}
