"""Disk model with position-dependent service times and pluggable scheduling.

This is the component the paper's Section 5 turns on:

* A request is a **contiguous run of blocks inside one 64 KB extent** (the
  pre-allocation assumption guarantees contiguity only within an extent).
* A run costs media transfer only if the head is already positioned there
  — i.e. the *previous* run served was the immediately preceding blocks of
  the same file extent.  Otherwise it pays a data seek **plus** the
  metadata seek the paper charges per 64 KB access.
* Under FIFO, runs from concurrently active request streams interleave and
  almost every run pays both seeks — the paper's "12 seeks instead of 4"
  pathology that makes one disk the whole cluster's bottleneck.
* The ``scan`` discipline reorders the queue to keep serving the stream
  the head is on, then sweeps in (file, extent, block) order — the
  "simple scheduling algorithm in our queue of disk requests" that turns
  CC-Basic into CC-Sched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..params import SimParams
from ..sim.engine import Event, Simulator
from ..sim.stats import RunningStats, UtilizationTracker

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

__all__ = ["DiskRequest", "Disk", "FIFO", "SCAN"]

#: Queue-discipline names accepted by :class:`Disk`.
FIFO = "fifo"
SCAN = "scan"


@dataclass(frozen=True)
class DiskRequest:
    """One contiguous run of blocks within a single extent of a file."""

    # Hot-path object: one instance per disk run on every miss path.
    __slots__ = ("file_id", "extent", "start_block", "nblocks", "size_kb")

    file_id: int
    #: Index of the 64 KB extent within the file (0-based).
    extent: int
    #: First block within the file (0-based, global across extents).
    start_block: int
    #: Number of blocks in the run (must stay inside the extent).
    nblocks: int
    #: Bytes actually read, in KB (the last block may be partial).
    size_kb: float

    def __post_init__(self) -> None:
        if self.nblocks < 1:
            raise ValueError("run must contain at least one block")
        if self.size_kb <= 0:
            raise ValueError("run must read a positive number of KB")

    @property
    def end_block(self) -> int:
        """Block index one past the last block of the run."""
        return self.start_block + self.nblocks

    def sort_key(self) -> tuple[int, int, int]:
        """Elevator sweep position."""
        return (self.file_id, self.extent, self.start_block)


class Disk:
    """A single disk with one head, a bounded queue and a discipline.

    ``submit(request)`` returns an event firing when the run has been read.
    Statistics: seek counts (total and avoided), busy-time utilization, and
    per-run service-time moments — the seek counters make the FIFO-vs-SCAN
    ablation (A4) directly observable.
    """

    __slots__ = (
        "sim", "name", "params", "discipline", "queue_limit", "utilization",
        "service_stats", "seeks", "contiguous_hits", "completed", "reads_kb",
        "_queue", "_busy", "_head", "stall_until",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: SimParams,
        discipline: str = SCAN,
        queue_limit: int = 100_000,
    ) -> None:
        if discipline not in (FIFO, SCAN):
            raise ValueError(f"unknown disk discipline: {discipline!r}")
        self.sim = sim
        self.name = name
        self.params = params
        self.discipline = discipline
        self.queue_limit = queue_limit
        self.utilization = UtilizationTracker(1, sim.now)
        #: Per-run service time moments.
        self.service_stats = RunningStats()
        #: Runs that paid the seek + metadata-seek penalty.
        self.seeks = 0
        #: Runs served with the head already positioned (no seek).
        self.contiguous_hits = 0
        #: Total runs completed.
        self.completed = 0
        #: Total KB read.
        self.reads_kb = 0.0
        self._queue: list[tuple[DiskRequest, Event]] = []
        self._busy = False
        #: (file_id, extent, next_block) the head would continue at.
        self._head: tuple[int, int, int] | None = None
        #: Fault injection: no run enters service before this instant.
        #: 0.0 (the past) means never stalled — the dispatch-path check
        #: is then always false and costs one comparison.
        self.stall_until = 0.0

    def stall(self, duration_ms: float) -> None:
        """Freeze the head for ``duration_ms`` (fault injection).

        Queued and newly submitted runs wait; the run currently in
        service (if any) completes normally — the stall models a firmware
        hiccup between operations, not a torn read.  Overlapping stalls
        extend to the latest deadline.
        """
        if duration_ms <= 0:
            raise ValueError("stall duration must be positive")
        self.stall_until = max(self.stall_until, self.sim.now + duration_ms)

    # -- client API ---------------------------------------------------------
    def submit(self, request: DiskRequest) -> Event:
        """Enqueue a run; the returned event fires when it has been read."""
        done = self.sim.event()
        if len(self._queue) >= self.queue_limit:
            from ..sim.servicecenter import QueueFullError

            done.fail(QueueFullError(self))  # type: ignore[arg-type]
            return done
        self._queue.append((request, done))
        if not self._busy:
            self._dispatch()
        return done

    @property
    def queue_length(self) -> int:
        """Runs waiting for the head."""
        return len(self._queue)

    @property
    def load(self) -> int:
        """Runs waiting plus the one in service."""
        return len(self._queue) + (1 if self._busy else 0)

    def reset_stats(self) -> None:
        """Start a fresh measurement window (end of warm-up)."""
        self.utilization.reset(self.sim.now)
        self.service_stats.reset()
        self.seeks = 0
        self.contiguous_hits = 0
        self.reads_kb = 0.0

    def metrics(self) -> dict:
        """Current head/seek statistics for the metrics registry."""
        return {
            "seeks": self.seeks,
            "contiguous_hits": self.contiguous_hits,
            "completed": self.completed,
            "reads_kb": self.reads_kb,
            "queue_length": len(self._queue),
            "utilization": self.utilization.utilization(self.sim.now),
        }

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register this disk as a collector under its own name."""
        registry.register_collector(self.name, self.metrics)

    # -- scheduling -----------------------------------------------------------
    def _select_index(self) -> int:
        """Pick the queue index to serve next under the active discipline."""
        if self.discipline == FIFO or len(self._queue) == 1:
            return 0
        # SCAN: 1) keep streaming if any run continues the current head
        # position; 2) otherwise sweep upward in (file, extent, block)
        # order from the head, wrapping at the end.
        if self._head is not None:
            for i, (req, _) in enumerate(self._queue):
                if (req.file_id, req.extent, req.start_block) == self._head:
                    return i
        best_idx = 0
        best_key = None
        wrap_idx = 0
        wrap_key = None
        head_key = self._head if self._head is not None else (-1, -1, -1)
        for i, (req, _) in enumerate(self._queue):
            key = req.sort_key()
            if key >= head_key:
                if best_key is None or key < best_key:
                    best_key, best_idx = key, i
            if wrap_key is None or key < wrap_key:
                wrap_key, wrap_idx = key, i
        return best_idx if best_key is not None else wrap_idx

    def _dispatch(self) -> None:
        if not self._queue:
            return
        if self.sim.now < self.stall_until:
            # Stalled: re-attempt dispatch the instant the stall clears.
            self.sim.call_at(self.stall_until, self._maybe_dispatch)
            return
        idx = self._select_index()
        request, done = self._queue.pop(idx)
        contiguous = (
            self._head is not None
            and self._head == (request.file_id, request.extent, request.start_block)
        )
        service_ms = self.params.disk.read_ms(request.size_kb, contiguous=contiguous)
        if contiguous:
            self.contiguous_hits += 1
        else:
            self.seeks += 1
        self._busy = True
        self.utilization.on_start(self.sim.now)
        self._head = (request.file_id, request.extent, request.end_block)
        self.service_stats.record(service_ms)
        # Stamp service entry + seek/transfer split on the completion
        # event; the profiler reads these to decompose disk waits.
        done.svc_start = self.sim.now
        done.svc_ms = service_ms
        done.svc_seek_ms = (
            0.0 if contiguous
            else self.params.disk.seek_ms + self.params.disk.metadata_seek_ms
        )
        self.sim.call_after(service_ms, self._finish, request, done)

    def _finish(self, request: DiskRequest, done: Event) -> None:
        self._busy = False
        self.utilization.on_stop(self.sim.now)
        self.completed += 1
        self.reads_kb += request.size_kb
        # Wake the waiter *before* picking the next request: a stream
        # that immediately submits its next block (same timestamp) gets
        # that block into the queue in time for SCAN to recognise the
        # head continuation.  The deferred dispatch is a no-op if the
        # waiter's own submit() already restarted the disk.
        done.succeed(request)
        self.sim.call_after(0.0, self._maybe_dispatch)

    def _maybe_dispatch(self) -> None:
        if not self._busy and self._queue:
            self._dispatch()
