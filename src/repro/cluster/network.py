"""The system-area LAN shared by client and intra-cluster traffic.

The paper: "we assume the same network is used to field/service client
requests and for intra-cluster communication", approximating a VIA Gb/s
LAN.  A transfer from node *a* to node *b* occupies *a*'s send NIC for the
bandwidth-dependent time, then the message experiences one wire latency.
Receive-side protocol work is charged to the receiver's CPU by the caller
(the per-operation CPU costs in Table 1 — "serve peer block request",
"cache a new block", ... — are exactly those receive/handle costs).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from ..obs.profile import NULL_PROFILER, NullProfiler, Profiler
from ..params import SimParams
from ..sim.engine import Event, Simulator
from ..sim.faults import NULL_FAULTS
from .node import Node

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracing import Span

__all__ = ["Network"]


class Network:
    """Point-to-point message timing over the shared LAN."""

    __slots__ = ("sim", "params", "bytes_kb", "messages", "faults")

    def __init__(self, sim: Simulator, params: SimParams) -> None:
        self.sim = sim
        self.params = params
        #: Total KB moved since the last reset (for traffic accounting).
        self.bytes_kb = 0.0
        #: Total messages since the last reset.
        self.messages = 0
        #: Fault injector (LAN degradation adds wire latency); set by
        #: FaultInjector.install().  The extra latency folds into the one
        #: existing wire timeout, so the kernel event stream is unchanged
        #: whether or not fault injection is wired in.
        self.faults = NULL_FAULTS

    def transfer(
        self, src: Node | None, dst: Node | None, size_kb: float,
        prof: Profiler | NullProfiler = NULL_PROFILER,
        parent: Span | None = None,
    ) -> Generator[Event, None, None]:
        """Coroutine: move ``size_kb`` from ``src`` to ``dst``.

        ``src is None`` models a message arriving from outside the cluster
        (a client or the router) — only wire latency applies.  ``dst`` is
        accepted for symmetry/readability; receive-side work is the
        caller's to charge.  ``prof``/``parent`` attribute the NIC and
        wire-latency waits to phase spans when profiling is on.
        """
        if size_kb < 0:
            raise ValueError("size_kb must be >= 0")
        self.bytes_kb += size_kb
        self.messages += 1
        if src is not None:
            # Local loopback costs nothing but a bus hop, modeled by caller.
            if dst is not None and src.node_id == dst.node_id:
                return
            yield from prof.wait(
                parent, src.node_id, "nic",
                src.nic.submit(self.params.network.transfer_ms(size_kb)),
            )
        yield from prof.wait(
            parent, None, "wire",
            self.sim.timeout(
                self.params.network.latency_ms + self.faults.extra_latency_ms()
            ),
        )

    def reset_stats(self) -> None:
        """Zero the traffic accounting counters."""
        self.bytes_kb = 0.0
        self.messages = 0

    def metrics(self) -> dict:
        """Current traffic totals for the metrics registry."""
        return {"bytes_kb": self.bytes_kb, "messages": self.messages}

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register LAN traffic accounting as a collector."""
        registry.register_collector("network", self.metrics)
