"""A cluster node: CPU, send-side NIC and disk joined by a bus.

Each hardware component is a finite-queue service center (the disk is the
specialised :class:`~repro.cluster.disk.Disk`).  Protocol code acquires
them explicitly, e.g.::

    yield node.cpu.submit(params.cpu.parse_ms)
    yield node.disk.submit(run)
    yield node.bus.submit(params.bus.transfer_ms(size_kb))

Nothing here knows about caching policy — the node is a pure substrate
shared by the cooperative-caching server and the PRESS baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..params import SimParams
from ..sim.engine import Simulator
from ..sim.servicecenter import ServiceCenter
from .disk import SCAN, Disk

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

__all__ = ["Node"]


class Node:
    """One cluster node's hardware."""

    __slots__ = ("sim", "node_id", "params", "cpu", "nic", "bus", "disk", "up")

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: SimParams,
        disk_discipline: str = SCAN,
    ) -> None:
        if node_id < 0:
            raise ValueError("node_id must be >= 0")
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.cpu = ServiceCenter(
            sim, f"node{node_id}.cpu", capacity=1, queue_limit=params.queue_limit
        )
        #: Send-side NIC: occupancy while pushing a message onto the wire.
        self.nic = ServiceCenter(
            sim, f"node{node_id}.nic", capacity=1, queue_limit=params.queue_limit
        )
        self.bus = ServiceCenter(
            sim, f"node{node_id}.bus", capacity=1, queue_limit=params.queue_limit
        )
        self.disk = Disk(
            sim,
            f"node{node_id}.disk",
            params,
            discipline=disk_discipline,
            queue_limit=params.queue_limit,
        )
        #: Fail-stop liveness flag, flipped only by the fault injector.
        #: Protocol layers consult the injector (which owns detection
        #: semantics); DNS reads this directly to skip dead nodes.
        self.up = True

    def crash(self) -> None:
        """Fail-stop: the node leaves the cluster (memory contents are the
        serving layers' to discard via their crash listeners)."""
        self.up = False

    def restore(self) -> None:
        """The node rejoins, cold."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.node_id})"

    @property
    def load(self) -> int:
        """Outstanding work across CPU and disk.

        PRESS's load-aware dispatcher uses this as its load index (the
        paper's PRESS uses "the load at each node"; queued work is the
        standard proxy).
        """
        return self.cpu.load + self.disk.load

    def reset_stats(self) -> None:
        """Start a fresh measurement window on every component."""
        self.cpu.reset_stats()
        self.nic.reset_stats()
        self.bus.reset_stats()
        self.disk.reset_stats()

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register every hardware component into a shared
        :class:`~repro.obs.metrics.MetricsRegistry` (collectors only:
        nothing on the simulation hot path changes)."""
        self.cpu.bind_metrics(registry)
        self.nic.bind_metrics(registry)
        self.bus.bind_metrics(registry)
        self.disk.bind_metrics(registry)

    def utilization(self, now: float | None = None) -> dict:
        """Per-component utilization over the current window (Figure 6a)."""
        t = self.sim.now if now is None else now
        return {
            "cpu": self.cpu.utilization.utilization(t),
            "nic": self.nic.utilization.utilization(t),
            "bus": self.bus.utilization.utilization(t),
            "disk": self.disk.utilization.utilization(t),
        }
