"""Front-end router and round-robin DNS request distribution.

The paper distributes client requests "using a round robin DNS scheme";
new requests are then "routed in accordance with the Cisco 7600
performance specifications".  The router is a single service center with a
tiny per-request forwarding cost (the 7600 forwards far faster than our
request rates, so it stays off the critical path, but modeling it keeps
the shape of the paper's pipeline).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..params import SimParams
from ..sim.engine import Event, Simulator
from ..sim.servicecenter import ServiceCenter
from .node import Node

__all__ = ["Router", "RoundRobinDNS"]


class Router(ServiceCenter):
    """Cisco-7600-class front end: fixed per-request forwarding cost."""

    def __init__(self, sim: Simulator, params: SimParams) -> None:
        super().__init__(sim, "router", capacity=1, queue_limit=params.queue_limit)
        self._forward_ms = params.router.forward_ms

    def forward(self) -> Event:
        """Forward one client request; fires when forwarding completes."""
        return self.submit(self._forward_ms)


class RoundRobinDNS:
    """Round-robin assignment of requests to cluster nodes.

    The paper's clients resolve the server name through RR DNS; we apply
    the rotation per request, which is the steady-state effect of per-
    client rotation with many clients.  It is exactly this rotation that
    "diffuses the hot files throughout the cluster" (Section 5).
    """

    __slots__ = ("_nodes", "_next")

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self._nodes: list[Node] = list(nodes)
        self._next = 0

    def pick(self) -> Node | None:
        """The next *live* node in rotation, or None if every node is down.

        DNS health checking: crashed nodes are skipped (their requests
        would otherwise black-hole).  With all nodes up — the only state
        a fault-free run ever sees — this is the plain rotation.
        """
        for _ in range(len(self._nodes)):
            node = self._nodes[self._next]
            self._next = (self._next + 1) % len(self._nodes)
            if node.up:
                return node
        return None

    @property
    def nodes(self) -> Sequence[Node]:
        """The rotation set."""
        return tuple(self._nodes)
