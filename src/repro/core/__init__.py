"""The cooperative caching middleware (systems S5-S6 in DESIGN.md).

* :class:`~repro.core.middleware.CoopCacheLayer` — the protocol engine.
* :class:`~repro.core.config.CoopCacheConfig` / :func:`~repro.core.config.variant`
  — the paper's named variants (``cc-basic`` / ``cc-sched`` / ``cc-kmc``).
* :mod:`~repro.core.policies` — replacement policies.
* :class:`~repro.core.hints.HintDirectory` — hint-based location (A1).
* :class:`~repro.core.api.CoopCacheService` — the library facade.
"""

from .api import CoopCacheService, blocks_for_mb
from .config import CoopCacheConfig, VARIANTS, variant
from .hints import HINT_TRAFFIC_OVERHEAD, HintDirectory
from .middleware import REQUEST_MSG_KB, CoopCacheLayer
from .policies import POLICIES, select_victim

__all__ = [
    "CoopCacheLayer",
    "CoopCacheConfig",
    "CoopCacheService",
    "blocks_for_mb",
    "VARIANTS",
    "variant",
    "HintDirectory",
    "HINT_TRAFFIC_OVERHEAD",
    "REQUEST_MSG_KB",
    "POLICIES",
    "select_victim",
]
