"""High-level facade: the middleware as an embeddable library.

The paper pitches the layer as "a building block for diverse distributed
services" — usable "as a library module as well as an independent
middleware service".  :class:`CoopCacheService` is that building block:
it owns the simulator, cluster and middleware wiring so a service author
writes only their request-handling logic::

    svc = CoopCacheService(file_sizes_kb=[12.0, 300.0, 8.0],
                           num_nodes=4, mem_mb_per_node=1)

    def handler(node, file_id):
        yield from svc.layer.read(node, file_id)      # the middleware
        yield node.cpu.submit(0.05)                   # service-specific work

    svc.submit(node_id=0, gen=handler(svc.node(0), 1))
    svc.run()

Experiments that need full control (warm-up windows, custom clients)
build the pieces directly; see :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from ..cache.block import FileLayout
from ..cache.directory import GlobalDirectory, HomeMap
from ..cluster.cluster import Cluster
from ..cluster.node import Node
from ..params import DEFAULT_PARAMS, SimParams
from ..sim.engine import Event, Process, Simulator
from ..sim.faults import FaultInjector, FaultPlan
from ..sim.rng import stream
from .config import CoopCacheConfig
from .hints import HintDirectory
from .middleware import CoopCacheLayer

__all__ = ["CoopCacheService", "blocks_for_mb"]


def blocks_for_mb(mem_mb: float, params: SimParams = DEFAULT_PARAMS) -> int:
    """Cache blocks that fit in ``mem_mb`` MB of node memory."""
    blocks = int(mem_mb * 1024 // params.block_kb)
    return max(1, blocks)


class CoopCacheService:
    """One-stop construction of a cooperatively cached cluster service."""

    def __init__(
        self,
        file_sizes_kb: Sequence[float],
        num_nodes: int,
        mem_mb_per_node: float,
        config: CoopCacheConfig | None = None,
        params: SimParams = DEFAULT_PARAMS,
        home_strategy: str = "round_robin",
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config or CoopCacheConfig()
        self.params = params
        self.sim = Simulator()
        self.cluster = Cluster(
            self.sim, params, num_nodes,
            disk_discipline=self.config.disk_discipline,
        )
        self.layout = FileLayout(file_sizes_kb, params)
        self.homes = HomeMap(self.layout.num_files, num_nodes, home_strategy)
        directory: GlobalDirectory | None = None
        if self.config.directory == "hints":
            directory = HintDirectory(
                self.config.hint_accuracy, num_nodes, stream(seed, "hints")
            )
        #: Fault injector (None without a plan — zero overhead, and unit
        #: tests get the whole chaos stack from one constructor argument).
        self.faults: FaultInjector | None = None
        if fault_plan:
            self.faults = FaultInjector(fault_plan, params, seed=seed)
            self.faults.install(self.sim, self.cluster)
        self.layer = CoopCacheLayer(
            self.cluster,
            self.layout,
            self.homes,
            capacity_blocks=blocks_for_mb(mem_mb_per_node, params),
            config=self.config,
            directory=directory,
            faults=self.faults,
        )

    def node(self, node_id: int) -> Node:
        """The node object for ``node_id`` (to hand to protocol coroutines)."""
        return self.cluster.nodes[node_id]

    def submit(self, gen: Generator[Event, object, object]) -> Process:
        """Start a service coroutine; returns its completion event."""
        return self.sim.process(gen)

    def read(self, node_id: int, file_id: int) -> Process:
        """Convenience: start a plain middleware read as its own process."""
        return self.submit(self.layer.read(self.node(node_id), file_id))

    def run(self, until: float | None = None) -> None:
        """Drive the simulation (see :meth:`repro.sim.Simulator.run`)."""
        self.sim.run(until=until)
