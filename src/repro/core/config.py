"""Configuration for the cooperative caching middleware.

One :class:`CoopCacheConfig` names each of the paper's evaluated systems:

=============  ========  ===============  ==================
variant        policy    disk discipline  forwarding
=============  ========  ===============  ==================
``cc-basic``   basic     fifo             on (second chance)
``cc-sched``   basic     scan             on
``cc-kmc``     kmc       scan             on
=============  ========  ===============  ==================

plus the ablation knobs DESIGN.md lists (A6: forwarding off; A1:
hint-based directory; A3: whole-file granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.disk import FIFO, SCAN
from .policies import POLICIES

__all__ = ["CoopCacheConfig", "VARIANTS", "variant"]


@dataclass(frozen=True)
class CoopCacheConfig:
    """Behavioural switches of the middleware."""

    #: Replacement policy name (see :mod:`repro.core.policies`).
    policy: str = "kmc"
    #: Disk queue discipline for every node.
    disk_discipline: str = SCAN
    #: Forward evicted masters to the peer with the oldest block (the
    #: traditional "second chance").  Off = drop masters like replicas.
    forward_on_evict: bool = True
    #: Refresh a master's age when it serves a peer's remote hit.
    touch_on_peer_hit: bool = True
    #: Directory type: "perfect" (the paper's optimistic assumption),
    #: "hints" (Sarkar & Hartman-style, see :mod:`repro.core.hints`) or
    #: "partitioned" (consistent-hash homes with bounded staleness, see
    #: :mod:`repro.cache.hashring`).
    directory: str = "perfect"
    #: Probability a hint lookup points at the true master location
    #: (Sarkar & Hartman report ~98% achievable).  Only with "hints".
    hint_accuracy: float = 0.98
    #: Virtual nodes per physical node on the consistent-hash ring
    #: (load spreading).  Only with "partitioned".
    dir_vnodes: int = 32
    #: Bounded-staleness window (simulated ms) of partitioned routing
    #: answers — the asynchrony of directory update propagation.  Zero
    #: makes routing exact (the differential-test configuration).  Only
    #: with "partitioned".
    dir_staleness_ms: float = 0.25
    #: Charge network round trips to remote ring homes on the lookup
    #: path.  Off (with zero staleness) reproduces the oracle's event
    #: stream byte-for-byte.  Only with "partitioned".
    dir_hop_cost: bool = True
    #: Write handling (paper Section 6 future work): "write-back" keeps
    #: dirty masters in memory and flushes them on eviction;
    #: "write-through" flushes every write to the home disk immediately.
    write_policy: str = "write-back"
    #: Age gap (simulated ms) for the "hybrid" policy's cold-master
    #: escape hatch (ablation A9); ignored by other policies.
    hybrid_bias_ms: float = 1_000.0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {sorted(POLICIES)}"
            )
        if self.disk_discipline not in (FIFO, SCAN):
            raise ValueError(f"unknown disk discipline {self.disk_discipline!r}")
        if self.directory not in ("perfect", "hints", "partitioned"):
            raise ValueError(f"unknown directory type {self.directory!r}")
        if not 0.0 <= self.hint_accuracy <= 1.0:
            raise ValueError("hint_accuracy must be in [0, 1]")
        if self.dir_vnodes < 1:
            raise ValueError("dir_vnodes must be >= 1")
        if self.dir_staleness_ms < 0:
            raise ValueError("dir_staleness_ms must be >= 0")
        if self.write_policy not in ("write-back", "write-through"):
            raise ValueError(f"unknown write policy {self.write_policy!r}")
        if self.hybrid_bias_ms < 0:
            raise ValueError("hybrid_bias_ms must be >= 0")

    def with_overrides(self, **kwargs: object) -> "CoopCacheConfig":
        """Copy with fields replaced (for ablation sweeps)."""
        return replace(self, **kwargs)


#: The paper's three curves, by the names DESIGN.md assigns them.
VARIANTS = {
    "cc-basic": CoopCacheConfig(policy="basic", disk_discipline=FIFO),
    "cc-sched": CoopCacheConfig(policy="basic", disk_discipline=SCAN),
    "cc-kmc": CoopCacheConfig(policy="kmc", disk_discipline=SCAN),
}


def variant(name: str) -> CoopCacheConfig:
    """Look up one of the paper's named variants."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
        ) from None
