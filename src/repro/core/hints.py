"""Hint-based master-block location (Sarkar & Hartman, OSDI '96).

The paper's results assume a *perfect* global directory and cite Sarkar &
Hartman to argue a practical system gets close: "it is possible to
achieve very high location accuracy for master blocks (on the order of
98%) using a hint-based directory; exchanging hints only imposed an
overhead of 0.4%".  The paper's future work is to implement exactly this
variant — ablation A1 in DESIGN.md.

We model hints at the fidelity the protocol cares about:

* **Routing lookups** (where should node *n* send its block request?) go
  through the hint table and are wrong with probability ``1 - accuracy``.
  A wrong hint either points at a node that no longer holds the master
  (the request bounces and falls back to the home disk — the expensive
  failure mode) or reports the block uncached when it is cached (a
  missed remote-hit opportunity).
* **Consistency operations** (recording who holds a master after a disk
  read or a forward) remain exact: in the real protocol the nodes
  involved in a transfer know the truth first-hand; hints only degrade
  *third-party* knowledge.
* The 0.4% bandwidth overhead of piggybacked hint exchange is charged as
  a multiplicative factor on control-message size.

``route_lookup`` draws from a dedicated RNG stream so hint noise never
perturbs workload generation.
"""

from __future__ import annotations


import numpy as np

from ..cache.block import BlockId
from ..cache.directory import GlobalDirectory

__all__ = ["HintDirectory", "HINT_TRAFFIC_OVERHEAD"]

#: Fractional extra control traffic from piggybacked hint exchange.
HINT_TRAFFIC_OVERHEAD = 0.004


class HintDirectory(GlobalDirectory):
    """A directory whose *routing* answers are only probabilistically right."""

    __slots__ = ("accuracy", "num_nodes", "_rng", "wrong_hints", "lookups")

    def __init__(self, accuracy: float, num_nodes: int, rng: np.random.Generator) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        super().__init__()
        self.accuracy = accuracy
        self.num_nodes = num_nodes
        self._rng = rng
        #: Routing lookups that returned a wrong answer.
        self.wrong_hints = 0
        #: Total routing lookups.
        self.lookups = 0

    def route_lookup(self, block: BlockId) -> int | None:
        """Where a node *believes* the master of ``block`` lives.

        With probability ``accuracy`` this is the truth; otherwise the
        hint is stale: either a uniformly random wrong node (the request
        will bounce) or, when the block genuinely is mastered somewhere,
        possibly ``None`` (a missed hit).
        """
        self.lookups += 1
        truth = self.lookup(block)
        if self._rng.random() < self.accuracy:
            return truth
        self.wrong_hints += 1
        if truth is None:
            # Stale positive: point at some node; it will bounce to disk.
            return int(self._rng.integers(self.num_nodes))
        # Stale negative or stale location, equally likely.
        if self._rng.random() < 0.5:
            return None
        others = [n for n in range(self.num_nodes) if n != truth]
        if not others:
            return None
        return int(others[int(self._rng.integers(len(others)))])

    @property
    def observed_accuracy(self) -> float:
        """Fraction of routing lookups answered correctly so far."""
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.wrong_hints / self.lookups
