"""The cooperative caching middleware layer (the paper's contribution).

:class:`CoopCacheLayer` manages the memories of all cluster nodes as one
aggregate block cache.  The protocol, from Section 3 of the paper:

* When a block is read from disk it becomes the **master copy**; a global
  directory records where each master lives.
* A request for block *b* at node *n*:

  1. *n* holds a copy → **local hit**, serve immediately.
  2. the directory locates master at peer *m* → *n* requests a
     **non-master copy** from *m* (network round trip, peer CPU), caches
     it, serves → **remote (global) hit**.
  3. no master in memory → *n* asks *b*'s **home node** to read it from
     disk and forward the master; the directory now points at *n*.

* Eviction (cache full): the policy picks a victim
  (:mod:`repro.core.policies`).  A non-master victim is dropped.  A
  master victim is dropped if it is the globally oldest block; otherwise
  it is **forwarded** to the peer holding the oldest block, which drops
  its own oldest block to make room.  Forwarded blocks keep their age,
  never cascade further evictions, and are dropped on arrival if
  everything at the destination is younger.

The layer is service-agnostic: the web server (:mod:`repro.web`) and the
custom-service example both drive it through :meth:`CoopCacheLayer.read`.
Races the paper acknowledges — a master evicted while a peer request is
in flight — are handled by falling back to the home node's disk.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

from ..cache.block import BlockId, FileLayout
from ..cache.blockcache import BlockCache
from ..cache.directory import GlobalDirectory, HomeMap
from ..cluster.cluster import Cluster
from ..cluster.disk import DiskRequest
from ..cluster.node import Node
from ..obs.cachestats import NULL_CACHESCOPE
from ..obs.profile import NULL_PROFILER
from ..obs.tracing import NULL_TRACER, Span
from ..sim.engine import Event
from ..sim.faults import NULL_FAULTS, FaultInjector, NullFaultInjector, RequestAborted
from ..sim.stats import CounterSet
from .config import CoopCacheConfig

if TYPE_CHECKING:
    from ..obs import Observability

__all__ = ["CoopCacheLayer", "REQUEST_MSG_KB"]

#: Size of a control message (block request, forward notice), KB.
REQUEST_MSG_KB = 0.1


class CoopCacheLayer:
    """Block-based cooperative caching over a :class:`Cluster`.

    ``capacity_blocks`` is the per-node cache size.  All protocol methods
    are simulation coroutines (generators over events) so callers compose
    them into request flows.
    """

    def __init__(
        self,
        cluster: Cluster,
        layout: FileLayout,
        homes: HomeMap,
        capacity_blocks: int,
        config: CoopCacheConfig | None = None,
        directory: GlobalDirectory | None = None,
        obs: Observability | None = None,
        faults: FaultInjector | NullFaultInjector | None = None,
    ) -> None:
        if homes.num_nodes != len(cluster):
            raise ValueError("home map node count != cluster size")
        if homes.num_files != layout.num_files:
            raise ValueError("home map file count != layout file count")
        self.cluster = cluster
        self.sim = cluster.sim
        self.params = cluster.params
        self.layout = layout
        self.homes = homes
        self.config = config or CoopCacheConfig()
        #: Cache-behavior telemetry; the shared no-op scope unless the
        #: Observability bundle enabled ``cachestats``.  Purely passive
        #: (no sim events), so the event stream is identical either way.
        self.scope = getattr(obs, "cachescope", None) or NULL_CACHESCOPE
        cache_scope = self.scope if self.scope.active else None
        self.caches: list[BlockCache] = [
            BlockCache(node.node_id, capacity_blocks, scope=cache_scope)
            for node in cluster.nodes
        ]
        self.directory = directory if directory is not None else GlobalDirectory()
        if self.scope.active:
            self.scope.bind_layout(layout)
            self.scope.bind_directory(self.directory)
        #: Protocol event counters; block-level hits feed Figure 4.
        self.counters = CounterSet()
        #: Request tracer (no-op unless an Observability bundle is given).
        self.tracer = obs.tracer if obs is not None else NULL_TRACER
        #: Critical-path profiler (no-op unless profiling was requested).
        self.prof = getattr(obs, "profiler", NULL_PROFILER) or NULL_PROFILER
        #: Fault injector; NULL_FAULTS (constant answers, no events) when
        #: no chaos plan is installed, so fault paths cost one attribute
        #: read and the fault-free event stream is untouched.
        self.faults = faults if faults is not None else NULL_FAULTS
        if self.faults.active:
            self.faults.crash_listeners.append(self._on_node_crash)
            self.faults.restart_listeners.append(self._on_node_restart)
        if obs is not None:
            self.counters.bind(obs.registry, "coopcache")
            obs.registry.gauge("coopcache.resident_blocks",
                               self.resident_blocks)
        # Per-node in-flight fetch table: concurrent requests for a block
        # already being fetched join the existing fetch instead of issuing
        # a duplicate disk/peer read (standard request coalescing).
        self._inflight: list[dict[BlockId, Event]] = [
            {} for _ in cluster.nodes
        ]
        # Cluster-wide pending-master table: block -> completion event of
        # a disk read already fetching its master at some node.  The
        # paper's "perfect, zero-cost" directory naturally knows about
        # reads in progress; a requester waits for the pending read and
        # then fetches the fresh master from its new holder instead of
        # issuing a duplicate disk read.
        self._pending_master: dict[BlockId, Event] = {}
        # Hint exchange piggybacks on control messages (Sarkar & Hartman's
        # measured 0.4% overhead); perfect directories pay nothing.
        from ..cache.hashring import PartitionedDirectory
        from .hints import HINT_TRAFFIC_OVERHEAD, HintDirectory

        #: Set iff the directory is hash-partitioned (ring repair hooks
        #: and lookup hop charging key off this).
        self._partitioned: PartitionedDirectory | None = None
        if isinstance(self.directory, HintDirectory):
            self._msg_kb = REQUEST_MSG_KB * (1.0 + HINT_TRAFFIC_OVERHEAD)
            self._route = self.directory.route_lookup
        elif isinstance(self.directory, PartitionedDirectory):
            self._msg_kb = REQUEST_MSG_KB
            self._route = self.directory.route_lookup
            self._partitioned = self.directory
        else:
            self._msg_kb = REQUEST_MSG_KB
            self._route = self.directory.lookup
        #: Charge round trips to remote ring homes on the lookup path?
        self._dir_hops = (
            self._partitioned is not None and self.config.dir_hop_cost
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def read(
        self, node: Node, file_id: int, span: Span | None = None
    ) -> Generator[Event, object, None]:
        """Coroutine: make every block of ``file_id`` readable at ``node``.

        Charges the Table 1 block-operation costs along the way and
        returns once all blocks have been served locally, fetched from
        peers, or read from disk.  This is the middleware's whole public
        read path; a service that reads byte ranges can call
        :meth:`read_blocks` directly.  ``span`` is the request's trace
        span (if the caller traces).
        """
        blocks = list(self.layout.blocks(file_id))
        return (yield from self.read_blocks(node, blocks, span=span))

    def read_blocks(
        self, node: Node, blocks: list[BlockId], span: Span | None = None
    ) -> Generator[Event, object, str]:
        """Coroutine: ensure ``blocks`` are served through ``node``.

        Returns the request's service class — ``"local"`` (every block
        already resident), ``"remote"`` (peer memory involved, no disk)
        or ``"disk"`` (at least one block came off a disk) — which the
        measurement harness uses for per-class response-time breakdowns
        (the paper's Figure 5 discussion attributes the middleware's
        latency premium to exactly these classes).
        """
        # "Process a file request": per-block bookkeeping on the CPU.
        yield from self.prof.wait(
            span, node.node_id, "cpu",
            node.cpu.submit(self.params.cpu.file_request_ms(len(blocks))),
        )

        if self._dir_hops:
            # Partitioned directory: ask the remote ring homes where the
            # not-yet-resident blocks live before acting on the answers.
            yield from self._directory_lookup_hops(node, blocks, span)

        local, joined, by_peer, by_home = self._classify(node, blocks, span)

        # The cache probe's outcome, as one point event on the trace.
        self.tracer.point(
            "probe", parent=span, node=node.node_id,
            n=len(blocks), local=len(local), joined=len(joined),
            peers=len(by_peer), homes=len(by_home),
        )

        for blk in local:
            self.counters.incr("local_hit")
            self.caches[node.node_id].touch(blk, self.sim.now)

        fetches = list(joined)
        # simlint: ordered -- by_peer/by_home are populated by one pass
        # over the request's block list, so insertion (= fan-out) order
        # is the deterministic block order of the request.
        for peer_id, wanted in by_peer.items():
            fetches.append(
                self._spawn_fetch(
                    node, wanted,
                    self._fetch_from_peer(node, peer_id, wanted, parent=span),
                )
            )
        # simlint: ordered -- same single deterministic pass as by_peer.
        for home_id, wanted in by_home.items():
            proc = self._spawn_fetch(
                node, wanted,
                self._fetch_from_disk(node, home_id, wanted, parent=span),
            )
            # Publish the pending reads *synchronously*: requests at
            # other nodes classified at this same instant must see them
            # (the disk fetch coroutine itself only starts a kernel step
            # later, which would be too late).
            registered = [
                blk for blk in wanted if blk not in self._pending_master
            ]
            for blk in registered:
                self._pending_master[blk] = proc
            if registered:
                proc.callbacks.append(
                    self._make_pending_cleanup(registered, proc)
                )
            fetches.append(proc)
        if fetches:
            # Parallel fan-out: the analyzer refines this wait by walking
            # the child fetch spans backward along the critical path.
            yield from self.prof.wait(
                span, node.node_id, "fetch", self.sim.all_of(fetches),
                d=len(by_home), pe=len(by_peer), j=len(joined),
            )
        if self.faults.active and self.faults.is_down(node.node_id):
            # The serving node crashed while this request was in flight:
            # fail-stop took its connection state with it, so the request
            # fails explicitly even though peers may have done work for it.
            self.faults.counters.incr("requests_lost_to_crash")
            raise RequestAborted(
                f"serving node {node.node_id} crashed mid-request"
            )
        if by_home:
            return "disk"
        if by_peer or joined:
            return "remote"
        return "local"

    def _make_pending_cleanup(
        self, blocks: list[BlockId], proc: Event
    ) -> Callable[[Event], None]:
        """Callback clearing pending-master entries when a fetch ends."""

        def cleanup(_ev: Event) -> None:
            for blk in blocks:
                if self._pending_master.get(blk) is proc:
                    del self._pending_master[blk]

        return cleanup

    def _spawn_fetch(
        self, node: Node, blocks: list[BlockId],
        gen: Generator[Event, object, None],
    ) -> Event:
        """Start a fetch coroutine and register its blocks as in flight."""
        proc = self.sim.process(self._tracked(node.node_id, blocks, gen))
        table = self._inflight[node.node_id]
        for blk in blocks:
            table[blk] = proc
        return proc

    def _tracked(
        self, node_id: int, blocks: list[BlockId],
        gen: Generator[Event, object, None],
    ) -> Generator[Event, object, None]:
        """Run ``gen`` and clear the in-flight entries when it finishes."""
        try:
            yield from gen
        finally:
            table = self._inflight[node_id]
            for blk in blocks:
                table.pop(blk, None)

    # ------------------------------------------------------------------
    # partitioned-directory lookup cost (DESIGN.md S19)
    # ------------------------------------------------------------------
    def _directory_lookup_hops(
        self, node: Node, blocks: list[BlockId], span: Span | None
    ) -> Generator[Event, object, None]:
        """Charge location-lookup round trips to remote ring homes.

        One round trip per *distinct* remote home covering the request's
        not-yet-resident blocks (lookups for co-homed blocks batch into
        one message, like the data-path fan-out).  Blocks homed at the
        requesting node answer locally for free; blocks already cached
        or in flight never ask.  This charges cost only — the routing
        *answer* comes from ``route_lookup`` in ``_classify``, whose
        bounded staleness models the asynchrony of update propagation
        (directory updates are not separately charged: they piggyback
        within the staleness window).
        """
        pdir = self._partitioned
        assert pdir is not None  # _dir_hops implies a partitioned directory
        cache = self.caches[node.node_id]
        inflight = self._inflight[node.node_id]
        homes: list[int] = []
        for blk in blocks:
            if blk in cache or blk in inflight:
                continue
            home = pdir.home_of(blk)
            if home != node.node_id and home not in homes:
                homes.append(home)
        if not homes:
            return
        self.counters.incr("dir_lookups_remote", len(homes))
        trips = [
            self.sim.process(self._dir_round_trip(node, home, span))
            for home in homes
        ]
        yield from self.prof.wait(
            span, node.node_id, "dir_lookup", self.sim.all_of(trips),
        )

    def _dir_round_trip(
        self, node: Node, home_id: int, span: Span | None
    ) -> Generator[Event, object, None]:
        """One location-lookup round trip to ring home ``home_id``.

        An unreachable home costs one failure detection and is skipped:
        the requester proceeds on its (boundedly stale) routing view —
        a crash invalidated every record naming a dead node
        synchronously, so the view can still never point at a corpse.
        """
        faults = self.faults
        if faults.active and (
            faults.is_down(home_id)
            or not faults.link_ok(node.node_id, home_id)
        ):
            yield from self._detect_fault(node, span)
            faults.counters.incr("dir_lookup_failovers")
            return
        home = self.cluster.nodes[home_id]
        net = self.cluster.network
        yield from net.transfer(node, home, self._msg_kb,
                                prof=self.prof, parent=span)
        yield from net.transfer(home, node, self._msg_kb,
                                prof=self.prof, parent=span)

    # ------------------------------------------------------------------
    # fault handling (fail-stop model; DESIGN.md S14)
    # ------------------------------------------------------------------
    def _on_node_crash(self, node_id: int) -> None:
        """Directory repair for a fail-stop crash.

        Runs synchronously *inside* the crash event (before any other
        process can observe the dead node): the node's memory is cleared,
        every directory entry naming it is purged, and for each purged
        master the youngest surviving replica — if any — is re-elected in
        place (promote + directory update, no data movement: the replica
        *is* the data).  Blocks with no surviving replica simply leave
        cluster memory; the next reader re-creates the master from disk.
        Dirty masters lose their unwritten modifications — that is the
        data loss fail-stop implies, and it is counted, not hidden.

        With a partitioned directory the dead node was also the ring
        home for part of the location map: that partition's entries are
        forgotten *first* (ring repair, before the holder purge below,
        so re-elected masters are never scanned as homed-at-the-corpse)
        and, after the usual repair, every forgotten entry whose holder
        still has the master resident re-registers with the block's new
        ring home — the directory re-registration half of the repair
        protocol.
        """
        lost_homed: list[tuple[BlockId, int]] = []
        if self._partitioned is not None:
            lost_homed = self._partitioned.partition_crash(node_id)
        cache = self.caches[node_id]
        dirty_lost = cache.num_dirty
        if self.scope.active:
            masters_before = set(cache.masters())
            nm_before = cache.num_nonmasters
        lost = cache.clear()
        if self.scope.active:
            for blk in lost:
                self.scope.on_evict(
                    node_id, blk, blk in masters_before, nm_before, "crash"
                )
        purged = self.directory.purge_node(node_id)
        reelected = 0
        for blk in purged:
            target = self._youngest_replica(blk, exclude=node_id)
            if target is None:
                # The master died with no surviving replica: it leaves
                # cluster memory until the next disk read re-creates it.
                self.scope.on_master_exit(blk)
                continue
            self.caches[target].promote_to_master(blk)
            self.directory.set_master(blk, target)
            reelected += 1
        reregistered = 0
        for blk, holder in lost_homed:
            if self.faults.is_down(holder):
                continue
            holder_cache = self.caches[holder]
            if (
                blk in holder_cache
                and holder_cache.is_master(blk)
                and self.directory.lookup(blk) is None
            ):
                # The master survived the home's crash: re-register it
                # with the block's new ring home.  Entries that were
                # only in flight stay forgotten — _forward_master drops
                # a copy the directory no longer expects, and _install
                # re-registers fresh disk reads, so no dual master can
                # arise.
                self.directory.set_master(blk, holder)
                reregistered += 1
        fc = self.faults.counters
        fc.incr("cc_blocks_lost", len(lost))
        fc.incr("cc_masters_purged", len(purged))
        fc.incr("cc_masters_reelected", reelected)
        if lost_homed:
            fc.incr("dir_entries_lost", len(lost_homed))
            fc.incr("dir_reregistered", reregistered)
        if dirty_lost:
            fc.incr("cc_dirty_lost", dirty_lost)
        self.tracer.point(
            "fault_repair", node=node_id, lost=len(lost),
            purged=len(purged), reelected=reelected,
        )

    def _on_node_restart(self, node_id: int) -> None:
        """A restarted node rejoins cold.

        Nothing is re-registered here: the crash repair already moved or
        dropped its masters, and new ones appear only as blocks are
        re-fetched through the normal read paths (the recovery unit tests
        pin exactly this).  Under a partitioned directory the node does
        re-take its ring arcs — location authority returns even though
        its cache is cold.
        """
        if self._partitioned is not None:
            self._partitioned.partition_rejoin(node_id)
        self.tracer.point("fault_recovery", node=node_id)

    def _youngest_replica(self, blk: BlockId, exclude: int) -> int | None:
        """Up node holding the youngest non-master copy of ``blk``.

        Deterministic re-election: youngest age wins (it is the most
        recently useful copy), ties break to the lowest node id.
        """
        best_id: int | None = None
        best_age = -1.0  # ages are sim timestamps, >= 0
        for cache in self.caches:
            nid = cache.node_id
            if nid == exclude or self.faults.is_down(nid):
                continue
            if blk in cache and not cache.is_master(blk):
                age = cache.age_of(blk)
                if age > best_age:
                    best_age = age
                    best_id = nid
        return best_id

    def _detect_fault(
        self, node: Node, span: Span | None
    ) -> Generator[Event, object, None]:
        """Coroutine: the fixed failure-detection wait.

        Detection is modeled as a timeout, not a live probe exchange, so
        it adds kernel events only when a fault is actually in the way.
        """
        self.faults.counters.incr("fault_detects")
        yield from self.prof.wait(
            span, node.node_id, "fault_detect",
            self.sim.timeout(self.params.faults.detect_timeout_ms),
        )

    def _await_home(
        self, node: Node, home_id: int, attempt: int, span: Span | None
    ) -> Generator[Event, object, int]:
        """Coroutine: wait (bounded) until ``home_id`` is reachable.

        Each round costs one detection timeout plus one capped,
        jittered backoff; past ``max_retries`` the request fails
        explicitly with :class:`RequestAborted` — degraded, never hung.
        Returns the updated attempt count.
        """
        faults = self.faults
        fparams = self.params.faults
        while faults.is_down(home_id) or not faults.link_ok(
            node.node_id, home_id
        ):
            if attempt >= fparams.max_retries:
                faults.counters.incr("aborted_requests")
                span.finish(error=True, aborted=True)
                raise RequestAborted(
                    f"home node {home_id} unreachable after {attempt} retries"
                )
            yield from self._detect_fault(node, span)
            delay = faults.backoff_ms(attempt)
            if delay > 0.0:
                yield from self.prof.wait(
                    span, node.node_id, "retry_wait", self.sim.timeout(delay)
                )
            faults.counters.incr("disk_retries")
            attempt += 1
        return attempt

    # ------------------------------------------------------------------
    # write path (paper Section 6 future work)
    # ------------------------------------------------------------------
    def write(
        self, node: Node, file_id: int, span: Span | None = None
    ) -> Generator[Event, object, None]:
        """Coroutine: write every block of ``file_id`` at ``node``.

        Write-invalidate, single-writer semantics:

        1. ``node`` acquires the **master** of each block (ownership
           transfer from the current holder, or creation for blocks with
           no in-memory master — writes are whole-block, so no
           read-modify-write disk fetch is needed);
        2. every replica at a peer is invalidated (one message per peer,
           per-block CPU at the peer);
        3. the write is applied to the local masters; under
           ``write-through`` the blocks are flushed to the home disk
           immediately, under ``write-back`` they are flushed when the
           dirty master is evicted or explicitly via :meth:`sync`.
        """
        blocks = list(self.layout.blocks(file_id))
        yield from self.write_blocks(node, blocks, span=span)

    def write_blocks(
        self, node: Node, blocks: list[BlockId], span: Span | None = None
    ) -> Generator[Event, object, None]:
        """Coroutine: whole-block writes of ``blocks`` at ``node``."""
        yield node.cpu.submit(self.params.cpu.file_request_ms(len(blocks)))
        cache = self.caches[node.node_id]
        for blk in blocks:
            yield from self._acquire_master(node, blk)

        # Invalidate replicas cluster-wide (perfect copy knowledge: one
        # message to each peer actually holding a stale copy).
        victims: dict[int, list[BlockId]] = defaultdict(list)
        for peer_cache in self.caches:
            if peer_cache.node_id == node.node_id:
                continue
            for blk in blocks:
                if blk in peer_cache:
                    victims[peer_cache.node_id].append(blk)
        if victims:
            invalidations = [
                self.sim.process(self._invalidate(node, pid, blks))
                # simlint: ordered -- victims is keyed in peer-scan order
                # (a deterministic loop over self.caches), so the
                # invalidation fan-out order is reproducible.
                for pid, blks in victims.items()
            ]
            yield self.sim.all_of(invalidations)

        # Apply the write to the local masters.
        yield node.cpu.submit(self.params.cpu.write_block_ms * len(blocks))
        for blk in blocks:
            if blk in cache and cache.is_master(blk):
                cache.touch(blk, self.sim.now)
                cache.mark_dirty(blk)
        self.counters.incr("block_writes", len(blocks))
        if self.config.write_policy == "write-through":
            yield from self._flush(node, blocks, parent=span)

    def _acquire_master(
        self, node: Node, blk: BlockId
    ) -> Generator[Event, object, None]:
        """Make ``node`` the master holder of ``blk`` (write ownership)."""
        cache = self.caches[node.node_id]
        holder = self.directory.lookup(blk)
        if blk in cache and cache.is_master(blk):
            return
        if holder is not None and holder != node.node_id:
            # Ownership transfer: the old holder gives up its copy.
            old = self.cluster.nodes[holder]
            old_cache = self.caches[holder]
            yield from self.cluster.network.transfer(node, old, self._msg_kb)
            if blk in old_cache:
                # The copy leaves the holder the instant the transfer
                # request is processed (pin semantics, as on the read
                # path) so no concurrent eviction can race the removal.
                was_dirty = old_cache.is_dirty(blk)
                self.scope.on_evict(
                    holder, blk, old_cache.is_master(blk),
                    old_cache.num_nonmasters, "ownership",
                    dest=node.node_id,
                )
                old_cache.remove(blk)
                yield old.cpu.submit(self.params.cpu.serve_peer_block_ms)
                yield from self.cluster.network.transfer(
                    old, node, self.layout.block_size_kb(blk)
                )
                self.counters.incr("ownership_transfers")
                if was_dirty:
                    # Dirtiness travels with the master copy.
                    self._install_master_for_write(node, blk, dirty=True)
                    return
        self._install_master_for_write(node, blk, dirty=False)

    def _install_master_for_write(
        self, node: Node, blk: BlockId, *, dirty: bool
    ) -> None:
        """Synchronously place a (possibly fresh) master at the writer.

        Concurrent writers serialize through the directory: the later
        writer wins, and any master a racing writer installed meanwhile
        is stale data and is dropped (single-master invariant).
        """
        other = self.directory.lookup(blk)
        if other is not None and other != node.node_id:
            other_cache = self.caches[other]
            if blk in other_cache and other_cache.is_master(blk):
                self.scope.on_evict(
                    other, blk, True, other_cache.num_nonmasters,
                    "write_race",
                )
                other_cache.remove(blk)
                self.counters.incr("write_race_invalidations")
        cache = self.caches[node.node_id]
        if blk in cache:
            if not cache.is_master(blk):
                cache.promote_to_master(blk)
        else:
            if cache.is_full:
                self._evict_one(node.node_id)
            cache.insert(blk, master=True, age=self.sim.now)
        self.directory.set_master(blk, node.node_id)
        # The writer's copy is now canonical: hop chain restarts here.
        self.scope.on_master_reset(blk)
        if dirty:
            cache.mark_dirty(blk)

    def _invalidate(
        self, writer: Node, peer_id: int, blocks: list[BlockId]
    ) -> Generator[Event, object, None]:
        """Drop stale copies of ``blocks`` at ``peer_id``."""
        peer = self.cluster.nodes[peer_id]
        yield from self.cluster.network.transfer(writer, peer, self._msg_kb)
        yield peer.cpu.submit(
            self.params.cpu.invalidate_block_ms * len(blocks)
        )
        peer_cache = self.caches[peer_id]
        for blk in blocks:
            if blk in peer_cache:
                nm_held = peer_cache.num_nonmasters
                is_m = peer_cache.is_master(blk)
                self.scope.on_evict(peer_id, blk, is_m, nm_held, "invalidate")
                was_master = peer_cache.remove(blk)
                self.counters.incr("invalidations")
                if was_master and self.directory.lookup(blk) == peer_id:
                    self.scope.on_master_exit(blk)
                    self.directory.clear_master(blk)

    def _flush(
        self, node: Node, blocks: list[BlockId],
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Write dirty blocks back to their home disks."""
        span = self.tracer.start(
            "writeback", parent=parent, node=node.node_id, n=len(blocks)
        )
        cache = self.caches[node.node_id]
        by_home: dict[int, list[BlockId]] = defaultdict(list)
        for blk in blocks:
            if blk in cache and cache.is_dirty(blk):
                by_home[self.homes.home_of(blk.file_id)].append(blk)
        # simlint: ordered -- by_home insertion order is the caller's
        # dirty-block order, which is deterministic (see dirty_blocks()).
        for home_id, blks in by_home.items():
            if self.faults.active and self.faults.is_down(home_id):
                # Home disk unreachable: the blocks stay dirty and are
                # retried on the next flush (or lost with the node).
                self.faults.counters.incr("writebacks_deferred", len(blks))
                continue
            home = self.cluster.nodes[home_id]
            total_kb = sum(self.layout.block_size_kb(b) for b in blks)
            if home_id != node.node_id:
                yield from self.cluster.network.transfer(node, home, total_kb)
            for run in self._runs(blks):
                yield home.disk.submit(run)
            self.counters.incr("flushed_blocks", len(blks))
            for blk in blks:
                if blk in cache:
                    cache.clear_dirty(blk)
        span.finish()

    def sync(self, node: Node) -> Generator[Event, object, None]:
        """Coroutine: flush every dirty master at ``node`` (write-back)."""
        cache = self.caches[node.node_id]
        yield from self._flush(node, list(cache.dirty_blocks()))

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _classify(
        self, node: Node, blocks: list[BlockId], span: Span | None = None
    ) -> tuple[
        list[BlockId],
        list[Event],
        dict[int, list[BlockId]],
        dict[int, list[BlockId]],
    ]:
        """Split ``blocks`` into local hits, in-flight fetches to join,
        per-peer fetches, and per-home disk reads, using the directory.

        Joins of fetches owned by *other* requests leave a point event on
        this request's trace (``coalesce`` / ``wait_master``) so every
        non-local service class has a visible cause even when the actual
        fetch span belongs to another trace.
        """
        cache = self.caches[node.node_id]
        inflight = self._inflight[node.node_id]
        local: list[BlockId] = []
        joined: list[Event] = []
        by_peer: dict[int, list[BlockId]] = defaultdict(list)
        by_home: dict[int, list[BlockId]] = defaultdict(list)
        for blk in blocks:
            if blk in cache:
                local.append(blk)
                continue
            pending = inflight.get(blk)
            if pending is not None:
                # Another request at this node is already fetching it.
                self.counters.incr("coalesced")
                self.tracer.point("coalesce", parent=span, node=node.node_id)
                joined.append(pending)
                continue
            holder = self._route(blk)
            if holder is not None and holder != node.node_id:
                by_peer[holder].append(blk)
                continue
            pending_read = self._pending_master.get(blk)
            if pending_read is not None:
                # Some other node's disk read for this block is already
                # in flight: wait for it, then reclassify (usually a
                # remote hit on the fresh master).
                self.counters.incr("waited_master")
                self.tracer.point(
                    "wait_master", parent=span, node=node.node_id
                )
                joined.append(
                    self._spawn_fetch(
                        node, [blk],
                        self._retry_after(node, blk, pending_read, parent=span),
                    )
                )
                continue
            # No master in memory (or a stale hint pointing at us):
            # read from the home node's disk.
            by_home[self.homes.home_of(blk.file_id)].append(blk)
        return local, joined, dict(by_peer), dict(by_home)

    def _retry_after(
        self, node: Node, blk: BlockId, pending: Event,
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Wait out another node's disk read, then re-resolve ``blk``.

        Runs inside the requester's tracked fetch process, so same-node
        requests coalesce onto it; re-resolution goes straight to the
        fetch paths (not :meth:`read_blocks`, which would see this very
        fetch in the in-flight table and wait on itself).

        A fault-free run chases chained pending reads unboundedly — safe,
        because each wait is on a read that is guaranteed to complete.
        Under fault injection that guarantee is gone (reads abort, nodes
        crash and re-read), so the chase is bounded: each extra round
        pays a capped, jittered backoff and past ``max_retries`` the
        requester stops chasing and reads the disk itself.
        """
        faults = self.faults
        attempt = 0
        while True:
            if not pending.processed:
                yield from self.prof.wait(
                    parent, node.node_id, "master_wait", pending
                )
            cache = self.caches[node.node_id]
            if blk in cache:
                self.counters.incr("local_hit")
                cache.touch(blk, self.sim.now)
                return
            holder = self._route(blk)
            if holder is not None and holder != node.node_id:
                yield from self._fetch_from_peer(
                    node, holder, [blk], parent=parent
                )
                return
            again = self._pending_master.get(blk)
            if again is None or again is pending:
                break
            attempt += 1
            if faults.active:
                if attempt > self.params.faults.max_retries:
                    # Stop chasing other nodes' reads; go to disk directly.
                    faults.counters.incr("retry_chases_capped")
                    break
                delay = faults.backoff_ms(attempt - 1)
                if delay > 0.0:
                    yield from self.prof.wait(
                        parent, node.node_id, "retry_wait",
                        self.sim.timeout(delay),
                    )
            pending = again
        yield from self._fetch_from_disk(
            node, self.homes.home_of(blk.file_id), [blk], parent=parent
        )

    # ------------------------------------------------------------------
    # peer fetch path (remote / global hit)
    # ------------------------------------------------------------------
    def _fetch_from_peer(
        self, node: Node, peer_id: int, blocks: list[BlockId],
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Request non-master copies of ``blocks`` from ``peer_id``.

        Blocks the peer discarded while the request was in flight fall
        back to a disk read at their home — the race the paper explicitly
        allows under its "instantaneous directory" assumption.
        """
        peer = self.cluster.nodes[peer_id]
        span = self.tracer.start(
            "peer_fetch", parent=parent, node=node.node_id,
            peer=peer_id, n=len(blocks),
        )
        try:
            yield from self._peer_fetch_body(
                node, peer, peer_id, blocks, span
            )
        except RequestAborted:
            # An abort below (home unreachable on the fallback path)
            # still closes this span so the trace stays well-formed.
            span.finish(error=True, aborted=True)
            raise

    def _peer_fetch_body(
        self, node: Node, peer: Node, peer_id: int, blocks: list[BlockId],
        span: Span,
    ) -> Generator[Event, object, None]:
        """The peer-fetch protocol proper (span lifecycle in the caller)."""
        peer_cache = self.caches[peer_id]
        net = self.cluster.network
        faults = self.faults

        if faults.active and not self._peer_ok(node, peer_id):
            # Peer already down (or the link is): pay the detection
            # timeout once, then re-route every block past it.
            yield from self._detect_fault(node, span)
            faults.counters.incr("peer_fetch_failovers")
            yield from self._reresolve(node, blocks, peer_id, parent=span)
            span.finish(hits=0, misses=len(blocks), failover=True)
            return

        # Request message: n -> m.
        yield from net.transfer(node, peer, self._msg_kb,
                                prof=self.prof, parent=span)

        if faults.active and not self._peer_ok(node, peer_id):
            # Peer crashed while the request message was in flight: the
            # reply will never come.  Same failover as above — a crash
            # purged the directory, so re-resolution cannot loop back.
            yield from self._detect_fault(node, span)
            faults.counters.incr("peer_fetch_failovers")
            yield from self._reresolve(node, blocks, peer_id, parent=span)
            span.finish(hits=0, misses=len(blocks), failover=True)
            return

        present = [blk for blk in blocks if blk in peer_cache]
        missing = [blk for blk in blocks if blk not in peer_cache]

        if present:
            # The peer pins the blocks it is about to serve: presence and
            # recency are decided the instant the request is processed,
            # so a concurrent eviction cannot yank them mid-serve.
            if self.config.touch_on_peer_hit:
                for blk in present:
                    peer_cache.touch(blk, self.sim.now)
            # Peer CPU: "serve peer block request" per block.
            yield from self.prof.wait(
                span, peer_id, "cpu",
                peer.cpu.submit(
                    self.params.cpu.serve_peer_block_ms * len(present)
                ),
            )
            reply_kb = sum(self.layout.block_size_kb(blk) for blk in present)
            yield from net.transfer(peer, node, reply_kb,
                                    prof=self.prof, parent=span)
            for blk in present:
                self.counters.incr("remote_hit")
            yield from self._install(node, present, master=False, parent=span)

        if missing:
            self.counters.incr("peer_miss", len(missing))
            # The directory's answer was one hop stale: the peer evicted
            # (or forwarded) these blocks while our request was in flight.
            self.scope.on_stale(len(missing))
            yield from self._reresolve(node, missing, peer_id, parent=span)
        span.finish(hits=len(present), misses=len(missing))

    def _peer_ok(self, node: Node, peer_id: int) -> bool:
        """The peer is up and the link to it carries traffic."""
        return not self.faults.is_down(peer_id) and self.faults.link_ok(
            node.node_id, peer_id
        )

    def _reresolve(
        self, node: Node, blocks: list[BlockId], exclude: int,
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Re-route ``blocks`` after a peer miss or peer failure.

        Hint-chain correction (Sarkar & Hartman): the contacted peer
        knows more recent state, so the request is forwarded toward the
        block's true master (one hop) rather than bouncing straight to
        disk.  Blocks that genuinely have no in-memory master — or whose
        recorded master is ``exclude`` or a down node — fall back to
        their home disk.  A crash purges the directory synchronously, so
        re-resolution can never chase a dead node forever.
        """
        chase: dict[int, list[BlockId]] = defaultdict(list)
        by_home: dict[int, list[BlockId]] = defaultdict(list)
        for blk in blocks:
            true_holder = self.directory.lookup(blk)
            if (
                true_holder is not None
                and true_holder not in (node.node_id, exclude)
                and not self.faults.is_down(true_holder)
            ):
                chase[true_holder].append(blk)
            else:
                by_home[self.homes.home_of(blk.file_id)].append(blk)
        fallback = [
            self.sim.process(
                self._fetch_from_peer(node, h, blks, parent=parent)
            )
            # simlint: ordered -- chase/by_home are keyed in the stale
            # block list's order (one deterministic classification pass).
            for h, blks in chase.items()
        ] + [
            self.sim.process(
                self._fetch_from_disk(node, h, blks, parent=parent)
            )
            # simlint: ordered -- same classification pass as chase.
            for h, blks in by_home.items()
        ]
        yield from self.prof.wait(
            parent, node.node_id, "fetch", self.sim.all_of(fallback),
            d=len(by_home), pe=len(chase), j=0,
        )

    # ------------------------------------------------------------------
    # disk path (miss)
    # ------------------------------------------------------------------
    def _fetch_from_disk(
        self, node: Node, home_id: int, blocks: list[BlockId],
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Read ``blocks`` from their home's disk; install masters at
        ``node``; update the directory."""
        home = self.cluster.nodes[home_id]
        net = self.cluster.network
        remote_home = home_id != node.node_id
        span = self.tracer.start(
            "disk_read", parent=parent, node=node.node_id,
            home=home_id, n=len(blocks),
        )

        done = self.sim.event()
        registered = [
            blk for blk in blocks if blk not in self._pending_master
        ]
        for blk in registered:
            self._pending_master[blk] = done
        faults = self.faults
        try:
            attempt = 0
            while True:
                if faults.active:
                    # Bounded wait for the home to be reachable; raises
                    # RequestAborted past the retry budget.
                    attempt = yield from self._await_home(
                        node, home_id, attempt, span
                    )
                if remote_home:
                    yield from net.transfer(node, home, self._msg_kb,
                                            prof=self.prof, parent=span)
                    if faults.active and (
                        faults.is_down(home_id)
                        or not faults.link_ok(node.node_id, home_id)
                    ):
                        # Home died while the request message was in
                        # flight; next round re-enters _await_home.
                        faults.counters.incr("disk_requests_lost")
                        attempt += 1
                        continue

                # Block-granular interface: the stream reads its blocks
                # one at a time, so blocks from concurrent streams
                # interleave in the disk queue.  Under FIFO this is the
                # paper's "12 seeks instead of 4" pathology; the SCAN
                # discipline re-groups the queued blocks by (file,
                # extent, block) and undoes it.
                runs = self._runs(blocks)
                for run in runs:
                    ev = home.disk.submit(run)
                    yield from self.prof.disk_wait(span, home_id, ev, (ev,))
                if faults.active and faults.is_down(home_id):
                    # Home crashed after the head moved but before the
                    # data left the node: the read is lost, retry it.
                    faults.counters.incr("disk_reads_lost")
                    attempt += 1
                    continue
                break
            self.counters.incr("disk_read", len(blocks))
            self.counters.incr("disk_runs", len(runs))

            total_kb = sum(self.layout.block_size_kb(blk) for blk in blocks)
            # Move the data across the home's bus (disk -> memory/NIC).
            yield from self.prof.wait(
                span, home_id, "bus",
                home.bus.submit(self.params.bus.transfer_ms(total_kb)),
            )

            if remote_home:
                # Home CPU forwards the freshly read master copies.
                yield from self.prof.wait(
                    span, home_id, "cpu",
                    home.cpu.submit(
                        self.params.cpu.serve_peer_block_ms * len(blocks)
                    ),
                )
                yield from net.transfer(home, node, total_kb,
                                        prof=self.prof, parent=span)

            yield from self._install(node, blocks, master=True, parent=span)
            span.finish(runs=len(runs))
        finally:
            for blk in registered:
                if self._pending_master.get(blk) is done:
                    del self._pending_master[blk]
            done.succeed()

    def _runs(self, blocks: list[BlockId]) -> list[DiskRequest]:
        """One disk request per block — deliberately.

        The middleware is block-based, so its disk traffic arrives at the
        queue in block units (as in the paper's simulator).  Whether the
        blocks of one stream are read back-to-back (2 seeks for a 64 KB
        extent: metadata + data, then contiguous transfers) or interleave
        with other streams (a seek pair per block — the paper's "12 seeks
        instead of 4") is then decided entirely by the disk's queue
        discipline: FIFO reproduces CC-Basic's interleaving pathology,
        SCAN reproduces the CC-Sched fix.
        """
        return [
            DiskRequest(
                blk.file_id,
                self.layout.extent_of(blk),
                blk.index,
                1,
                self.layout.block_size_kb(blk),
            )
            for blk in sorted(blocks)
        ]

    # ------------------------------------------------------------------
    # installation & eviction
    # ------------------------------------------------------------------
    def _install(
        self, node: Node, blocks: list[BlockId], *, master: bool,
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Insert arrived blocks at ``node``, evicting as needed.

        "Cache a new block" CPU cost is charged per block; eviction
        decisions are instantaneous state changes (their network cost is
        the forwarded block's transfer, spawned asynchronously).
        """
        if self.faults.active and self.faults.is_down(node.node_id):
            # The requester crashed while the data was in flight: it has
            # nowhere to land, and installing it would resurrect memory
            # fail-stop destroyed (and point the directory at a corpse).
            self.faults.counters.incr("installs_dropped", len(blocks))
            return
        cache = self.caches[node.node_id]
        yield from self.prof.wait(
            parent, node.node_id, "cpu",
            node.cpu.submit(self.params.cpu.cache_block_ms * len(blocks)),
        )
        for blk in blocks:
            # If some other node (re-)mastered the block while our fetch
            # was in flight, install ours as a plain replica: the cluster
            # must never hold two master copies.
            as_master = master and not self._has_other_master(blk, node.node_id)
            if master and not as_master:
                self.counters.incr("master_race")
            if blk in cache:
                # Raced with another request that installed it first.
                cache.touch(blk, self.sim.now)
                if as_master and not cache.is_master(blk):
                    cache.promote_to_master(blk)
                    self.directory.set_master(blk, node.node_id)
                    self.scope.on_master_reset(blk)
                continue
            if cache.is_full:
                self._evict_one(node.node_id)
            cache.insert(blk, master=as_master, age=self.sim.now)
            if as_master:
                self.directory.set_master(blk, node.node_id)
                # Fresh master off the disk: its forward-hop chain restarts.
                self.scope.on_master_reset(blk)

    def _has_other_master(self, blk: BlockId, node_id: int) -> bool:
        """True if the directory records a master at some other node."""
        holder = self.directory.lookup(blk)
        return holder is not None and holder != node_id

    def _evict_one(self, node_id: int) -> None:
        """Free one slot at ``node_id`` per the configured policy."""
        from .policies import select_victim

        cache = self.caches[node_id]
        victim = select_victim(
            self.config.policy, cache, self.config.hybrid_bias_ms
        )
        if victim is None:  # pragma: no cover - full implies non-empty
            raise RuntimeError("eviction requested on empty cache")
        blk, age, is_master = victim
        was_dirty = cache.is_dirty(blk)
        # Captured before removal so it reflects the state the policy
        # decided on — the CC-KMC invariant test (and CacheScope's
        # violation counter) read exactly this.
        nm_held = cache.num_nonmasters
        self.tracer.point(
            "evict", node=node_id, master=is_master,
            nonmasters=nm_held, policy=self.config.policy,
        )
        cache.remove(blk)
        self.counters.incr("evictions")
        if not is_master:
            self.counters.incr("evict_drop_nonmaster")
            self.scope.on_evict(node_id, blk, False, nm_held, "drop")
            return
        if not self.config.forward_on_evict:
            self.scope.on_evict(node_id, blk, True, nm_held, "drop")
            self._drop_master(node_id, blk, was_dirty)
            return
        target = self._oldest_peer(node_id, age)
        if target is None:
            # Globally oldest: drop, master leaves cluster memory.
            self.scope.on_evict(node_id, blk, True, nm_held, "drop")
            self._drop_master(node_id, blk, was_dirty)
            return
        self.scope.on_evict(node_id, blk, True, nm_held, "forward",
                            dest=target)
        # Optimistic instantaneous directory: point at the destination
        # as soon as the block is in flight.
        self.directory.set_master(blk, target)
        self.counters.incr("forwards")
        self.sim.process(
            self._forward_master(node_id, target, blk, age, dirty=was_dirty)
        )

    def _drop_master(self, node_id: int, blk: BlockId, dirty: bool) -> None:
        """A master leaves cluster memory; flush it first if dirty."""
        self.counters.incr("evict_drop_master")
        self.scope.on_master_exit(blk)
        self.directory.clear_master(blk)
        if dirty:
            self.sim.process(self._writeback_evicted(node_id, [blk]))

    def _writeback_evicted(
        self, node_id: int, blocks: list[BlockId]
    ) -> Generator[Event, object, None]:
        """Asynchronously write evicted dirty blocks to their homes."""
        node = self.cluster.nodes[node_id]
        # Background cluster activity: a new root span, not tied to the
        # request whose eviction triggered it (it outlives the request).
        span = self.tracer.start("writeback", node=node_id, n=len(blocks))
        by_home: dict[int, list[BlockId]] = defaultdict(list)
        for blk in blocks:
            by_home[self.homes.home_of(blk.file_id)].append(blk)
        # simlint: ordered -- keyed in the evicted-block list's order,
        # which the eviction path produces deterministically.
        for home_id, blks in by_home.items():
            if self.faults.active and self.faults.is_down(home_id):
                # The evicted copy is already gone from memory and its
                # home disk is unreachable: the modification is lost.
                self.faults.counters.incr("writebacks_lost", len(blks))
                continue
            home = self.cluster.nodes[home_id]
            total_kb = sum(self.layout.block_size_kb(b) for b in blks)
            if home_id != node_id:
                yield from self.cluster.network.transfer(node, home, total_kb)
            for run in self._runs(blks):
                yield home.disk.submit(run)
            self.counters.incr("flushed_blocks", len(blks))
        span.finish()

    def _oldest_peer(self, node_id: int, victim_age: float) -> int | None:
        """Peer holding the oldest block strictly older than the victim.

        None means the victim is the globally oldest block (or there are
        no peers) — per the paper, it is then simply dropped.
        """
        best_id: int | None = None
        best_age = victim_age
        for cache in self.caches:
            if cache.node_id == node_id:
                continue
            age = cache.oldest_age()
            if age < best_age:
                best_age = age
                best_id = cache.node_id
        return best_id

    def _forward_master(
        self, src_id: int, dst_id: int, blk: BlockId, age: float,
        dirty: bool = False,
    ) -> Generator[Event, object, None]:
        """Ship an evicted master to the peer with the oldest block.

        Properties the paper requires: (1) no cascaded evictions — the
        destination unconditionally drops its own oldest block to make
        room; (2) if everything at the destination is now younger than
        the forwarded block, the forwarded block is dropped instead.
        ``dirty`` travels with the copy; a dirty forward that gets
        dropped anywhere is written back to the home disk instead of
        losing data.
        """
        src = self.cluster.nodes[src_id]
        dst = self.cluster.nodes[dst_id]
        size_kb = self.layout.block_size_kb(blk)
        # Background activity: its own root span (outlives the evicting
        # request), closed with the forward's outcome.
        span = self.tracer.start("forward", node=src_id, dst=dst_id)
        yield from self.cluster.network.transfer(src, dst, size_kb)
        # "Process an evicted master block" at the destination.
        yield dst.cpu.submit(self.params.cpu.evicted_master_ms)

        cache = self.caches[dst_id]
        if self.directory.lookup(blk) != dst_id:
            # While the block was in flight some node re-mastered it
            # (e.g. re-read it from disk after a racing miss): this copy
            # is stale; drop it rather than create a second master.  A
            # re-mastered block was re-read from disk, so a stale dirty
            # copy would carry *newer* data: flush it.
            self.counters.incr("forward_stale")
            self.scope.on_forward(blk, "stale")
            span.finish(outcome="stale")
            if dirty:
                self.sim.process(self._writeback_evicted(dst_id, [blk]))
            return
        if blk in cache:
            # Destination already holds a replica: absorb master status.
            if not cache.is_master(blk):
                cache.promote_to_master(blk)
            self.directory.set_master(blk, dst_id)
            if dirty:
                cache.mark_dirty(blk)
            self.counters.incr("forward_merged")
            self.scope.on_forward(blk, "merged")
            span.finish(outcome="merged")
            return
        if cache.oldest_age() >= age:
            # Everything here is younger: the forwarded block is dropped.
            self.counters.incr("forward_dropped")
            self.scope.on_forward(blk, "dropped")
            span.finish(outcome="dropped")
            if self.directory.lookup(blk) == dst_id:
                self.directory.clear_master(blk)
            if dirty:
                self.sim.process(self._writeback_evicted(dst_id, [blk]))
            return
        if cache.is_full:
            old_blk, _old_age, was_master = cache.oldest()  # type: ignore[misc]
            displaced_dirty = cache.is_dirty(old_blk)
            self.scope.on_evict(
                dst_id, old_blk, was_master, cache.num_nonmasters,
                "displaced",
            )
            cache.remove(old_blk)
            self.counters.incr("forward_displaced")
            if was_master and self.directory.lookup(old_blk) == dst_id:
                self.scope.on_master_exit(old_blk)
                self.directory.clear_master(old_blk)
            if displaced_dirty:
                self.sim.process(self._writeback_evicted(dst_id, [old_blk]))
        cache.insert(blk, master=True, age=age)
        self.directory.set_master(blk, dst_id)
        if dirty:
            cache.mark_dirty(blk)
        self.counters.incr("forward_installed")
        self.scope.on_forward(blk, "installed")
        span.finish(outcome="installed")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def hit_rates(self) -> dict[str, float]:
        """Block-level local / remote / disk fractions (Figure 4)."""
        c = self.counters
        total = c.get("local_hit") + c.get("remote_hit") + c.get("disk_read")
        if total == 0:
            return {"local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0}
        return {
            "local": c.get("local_hit") / total,
            "remote": c.get("remote_hit") / total,
            "disk": c.get("disk_read") / total,
            "total": (c.get("local_hit") + c.get("remote_hit")) / total,
        }

    def resident_blocks(self) -> int:
        """Blocks currently cached cluster-wide."""
        return sum(len(c) for c in self.caches)

    def check_invariants(self) -> None:
        """Assert directory/cache consistency (tests and debugging).

        * no cache exceeds its capacity;
        * no block has two master copies;
        * every resident master is recorded in the directory at its node.

        A directory entry *may* point at a node not (yet) holding the
        block — that is a master in flight (forward or disk reply); call
        this at quiescent points (calendar drained) for the strict check
        that every entry is backed by a resident master.
        """
        seen: dict[BlockId, int] = {}
        for cache in self.caches:
            if len(cache) > cache.capacity_blocks:
                raise AssertionError(f"cache {cache.node_id} over capacity")
            for blk in cache.masters():
                if blk in seen:
                    raise AssertionError(
                        f"{blk} mastered at both {seen[blk]} and {cache.node_id}"
                    )
                seen[blk] = cache.node_id
        # simlint: ordered -- diagnostic cross-check; raises on the first
        # inconsistency and mutates nothing, so order only affects which
        # of several (already fatal) errors reports first.
        for blk, holder in seen.items():
            recorded = self.directory.lookup(blk)
            if recorded != holder:
                raise AssertionError(
                    f"master of {blk} resident at {holder} but directory "
                    f"says {recorded}"
                )
