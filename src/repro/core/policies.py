"""Replacement policies: the knob the paper turns.

The paper's three evaluated variants differ in *which resident block a
full cache sacrifices* (and in the disk discipline, which lives in
:class:`~repro.core.config.CoopCacheConfig`):

* **basic** — approximate global LRU: the victim is the locally oldest
  block regardless of master status.  Master victims then get the
  traditional "second chance" (forwarding) in the middleware.
* **kmc** (*keep master copies*) — the paper's contribution: "when
  eviction is necessary, never evict a master copy if the evicting node
  is still holding a non-master copy; instead, evict the oldest
  non-master copy.  If the node is only holding master copies, then
  perform the global LRU eviction as before."

Policies are stateless selectors over a :class:`~repro.cache.BlockCache`;
what happens to the victim (drop vs forward) is protocol, implemented in
:mod:`repro.core.middleware`.
"""

from __future__ import annotations


from ..cache.blockcache import BlockCache
from ..cache.block import BlockId

__all__ = ["Victim", "select_victim", "POLICIES"]

#: (block, age, is_master)
Victim = tuple[BlockId, float, bool]


def _basic(cache: BlockCache) -> Victim | None:
    """Local LRU over all resident blocks."""
    return cache.oldest()


def _kmc(cache: BlockCache) -> Victim | None:
    """Oldest non-master if any non-master exists; else local LRU."""
    nm = cache.oldest_nonmaster()
    if nm is not None:
        return (nm[0], nm[1], False)
    return cache.oldest()


#: Default age gap (simulated ms) beyond which the hybrid policy prefers
#: evicting a very cold master over a recently used replica.
DEFAULT_HYBRID_BIAS_MS = 1_000.0


def _hybrid(cache: BlockCache, bias_ms: float) -> Victim | None:
    """KMC with an escape hatch for extremely cold masters.

    The paper notes KMC "is rather extreme; it leads to all memories
    holding only master copies, which does not necessarily lead to best
    performance" and that the policy "can likely be improved".  This
    variant tests one improvement: protect masters as KMC does, *unless*
    the locally oldest master is more than ``bias_ms`` older than the
    oldest replica — such a master is deep in the cold tail and keeping
    a recently touched replica (a likely local hit) is the better trade.
    Ablation A9 evaluates it.
    """
    nm = cache.oldest_nonmaster()
    overall = cache.oldest()
    if nm is None or overall is None:
        return overall
    blk, age, is_master = overall
    if is_master and age + bias_ms < nm[1]:
        return overall  # the master is extremely cold: let it go
    return (nm[0], nm[1], False)


POLICIES = {
    "basic": lambda cache, bias_ms: _basic(cache),
    "kmc": lambda cache, bias_ms: _kmc(cache),
    "hybrid": _hybrid,
}


def select_victim(
    policy: str,
    cache: BlockCache,
    hybrid_bias_ms: float = DEFAULT_HYBRID_BIAS_MS,
) -> Victim | None:
    """Choose the eviction victim for ``cache`` under ``policy``.

    Returns None for an empty cache.  Raises for unknown policy names so
    configuration typos fail fast.  ``hybrid_bias_ms`` only affects the
    ``hybrid`` policy.
    """
    try:
        selector = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
    return selector(cache, hybrid_bias_ms)
