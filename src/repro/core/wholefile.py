"""Whole-file adaptation of the cooperative caching middleware.

Paper, Section 6: "We will also investigate how to parameterize [the
layer] so that it can be adapted to particular applications.  For
example, we will investigate whether [it] can easily be adapted for
servers that always use whole files (e.g., a web server) and whether such
an adaptation would improve performance."

:class:`WholeFileCoopServer` is that adaptation: the Section 3 protocol
verbatim, with the caching unit changed from an 8 KB block to a whole
file.  Master file copies, a global directory, peer fetches of whole
files, and KMC-style replacement (evict replica files first; forward an
evicted master file to the peer with the oldest file) all carry over.
Ablation A3 compares it against the block-based layer.

It implements the same service interface as
:class:`~repro.web.server.CoopCacheWebServer`, so the closed-loop driver
runs it unchanged.
"""

from __future__ import annotations

from collections.abc import Generator

from ..cache.block import FileLayout
from ..cache.directory import HomeMap
from ..cache.lru import AgedLRU
from ..cluster.cluster import Cluster
from ..cluster.disk import DiskRequest
from ..cluster.node import Node
from ..sim.engine import Event
from ..sim.stats import CounterSet
from .middleware import REQUEST_MSG_KB

__all__ = ["WholeFileCoopServer", "WholeFileCache"]


class WholeFileCache:
    """One node's memory as an aged set of whole files (KB-budgeted)."""

    __slots__ = ("node_id", "capacity_kb", "used_kb", "_masters",
                 "_replicas", "_sizes")

    def __init__(self, node_id: int, capacity_kb: float) -> None:
        if capacity_kb <= 0:
            raise ValueError("capacity must be positive")
        self.node_id = node_id
        self.capacity_kb = capacity_kb
        self.used_kb = 0.0
        self._masters = AgedLRU()
        self._replicas = AgedLRU()
        self._sizes: dict[int, float] = {}

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def is_master(self, file_id: int) -> bool:
        """True if this node holds the file's master copy."""
        return file_id in self._masters

    def fits(self, size_kb: float) -> bool:
        """Could the file ever be cached here?"""
        return size_kb <= self.capacity_kb

    def touch(self, file_id: int, now: float) -> None:
        """Refresh a resident file's age."""
        (self._masters if file_id in self._masters else self._replicas).touch(
            file_id, now
        )

    def insert(self, file_id: int, size_kb: float, *, master: bool,
               age: float) -> None:
        """Add a file; caller must have made room first."""
        if file_id in self._sizes:
            raise KeyError(f"file {file_id} already cached")
        if self.used_kb + size_kb > self.capacity_kb:
            raise ValueError("insert without room")
        (self._masters if master else self._replicas).add(file_id, age)
        self._sizes[file_id] = size_kb
        self.used_kb += size_kb

    def remove(self, file_id: int) -> tuple[float, bool]:
        """Drop a resident file; returns (size_kb, was_master)."""
        size = self._sizes.pop(file_id)
        self.used_kb -= size
        if file_id in self._masters:
            self._masters.remove(file_id)
            return size, True
        self._replicas.remove(file_id)
        return size, False

    def oldest_age(self) -> float:
        """Age of the oldest resident file; +inf when empty."""
        return min(self._masters.oldest_age(), self._replicas.oldest_age())

    def select_victim(self) -> tuple[int, float, bool] | None:
        """KMC at file granularity: oldest replica first, else oldest
        master; (file_id, age, is_master) or None when empty."""
        rep = self._replicas.oldest()
        if rep is not None:
            return (rep[0], rep[1], False)
        mas = self._masters.oldest()
        if mas is not None:
            return (mas[0], mas[1], True)
        return None

    def size_of(self, file_id: int) -> float:
        """Resident file's size (KB)."""
        return self._sizes[file_id]


class WholeFileCoopServer:
    """Web service over file-granularity cooperative caching."""

    def __init__(
        self,
        cluster: Cluster,
        layout: FileLayout,
        homes: HomeMap,
        capacity_kb: float,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.params = cluster.params
        self.layout = layout
        self.homes = homes
        self.caches: list[WholeFileCache] = [
            WholeFileCache(n.node_id, capacity_kb) for n in cluster.nodes
        ]
        #: file -> node currently holding the master copy.
        self.directory: dict[int, int] = {}
        self.counters = CounterSet()
        # file -> completion event of an in-flight fetch at (node, file).
        self._inflight: dict[tuple[int, int], Event] = {}

    # ------------------------------------------------------------------
    def handle(self, node: Node, file_id: int) -> Generator[Event, object, str]:
        """Process one GET at ``node`` (same interface as the web server).

        Returns the request's service class for per-class accounting.
        """
        cpu = self.params.cpu
        nblocks = self.layout.num_blocks(file_id)
        yield node.cpu.submit(cpu.parse_ms)
        yield node.cpu.submit(cpu.file_request_ms(nblocks))

        cache = self.caches[node.node_id]
        if file_id in cache:
            service_class = "local"
            self.counters.incr("local_hit", nblocks)
            cache.touch(file_id, self.sim.now)
        else:
            pending = self._inflight.get((node.node_id, file_id))
            if pending is not None:
                service_class = "coalesced"
                self.counters.incr("coalesced", nblocks)
                yield pending
            else:
                done = self.sim.event()
                self._inflight[(node.node_id, file_id)] = done
                try:
                    service_class = yield from self._fetch(node, file_id)
                finally:
                    del self._inflight[(node.node_id, file_id)]
                    done.succeed()

        size_kb = self.layout.size_kb(file_id)
        yield node.cpu.submit(cpu.serve_ms(size_kb))
        yield node.nic.submit(self.params.network.transfer_ms(size_kb))
        return service_class

    # ------------------------------------------------------------------
    def _fetch(self, node: Node, file_id: int) -> Generator[Event, object, str]:
        """Pull the file to ``node``; returns "remote" or "disk"."""
        nblocks = self.layout.num_blocks(file_id)
        size_kb = self.layout.size_kb(file_id)
        holder = self.directory.get(file_id)
        net = self.cluster.network
        if holder is not None and holder != node.node_id:
            peer = self.cluster.nodes[holder]
            yield from net.transfer(node, peer, REQUEST_MSG_KB)
            if file_id in self.caches[holder]:
                self.counters.incr("remote_hit", nblocks)
                self.caches[holder].touch(file_id, self.sim.now)
                yield peer.cpu.submit(
                    self.params.cpu.serve_peer_block_ms * nblocks
                )
                yield from net.transfer(peer, node, size_kb)
                yield node.cpu.submit(self.params.cpu.cache_block_ms * nblocks)
                self._install(node.node_id, file_id, master=False)
                return "remote"
            # Stale location (master evicted mid-flight): fall through.
        home = self.cluster.nodes[self.homes.home_of(file_id)]
        if home.node_id != node.node_id:
            yield from net.transfer(node, home, REQUEST_MSG_KB)
        self.counters.incr("disk_read", nblocks)
        runs = self._extent_runs(file_id)
        yield self.sim.all_of([home.disk.submit(r) for r in runs])
        yield home.bus.submit(self.params.bus.transfer_ms(size_kb))
        if home.node_id != node.node_id:
            yield home.cpu.submit(self.params.cpu.serve_peer_block_ms * nblocks)
            yield from net.transfer(home, node, size_kb)
        yield node.cpu.submit(self.params.cpu.cache_block_ms * nblocks)
        self._install(node.node_id, file_id, master=True)
        return "disk"

    def _extent_runs(self, file_id: int) -> list[DiskRequest]:
        params = self.params
        nblocks = self.layout.num_blocks(file_id)
        bpe = params.extent_kb // params.block_kb
        remaining = self.layout.size_kb(file_id)
        runs = []
        for ext in range(self.layout.num_extents(file_id)):
            chunk = min(remaining, float(params.extent_kb))
            start = ext * bpe
            runs.append(DiskRequest(file_id, ext, start,
                                    min(bpe, nblocks - start), chunk))
            remaining -= chunk
        return runs

    # ------------------------------------------------------------------
    def _install(self, node_id: int, file_id: int, *, master: bool) -> None:
        cache = self.caches[node_id]
        size_kb = self.layout.size_kb(file_id)
        if file_id in cache:
            cache.touch(file_id, self.sim.now)
            return
        if not cache.fits(size_kb):
            self.counters.incr("uncacheable")
            if master:
                self.directory.pop(file_id, None)
            return
        if master and self.directory.get(file_id) not in (None, node_id):
            master = False  # someone re-mastered it while we fetched
        while cache.used_kb + size_kb > cache.capacity_kb:
            self._evict_one(node_id)
        cache.insert(file_id, size_kb, master=master, age=self.sim.now)
        if master:
            self.directory[file_id] = node_id

    def _evict_one(self, node_id: int) -> None:
        cache = self.caches[node_id]
        victim = cache.select_victim()
        if victim is None:
            raise RuntimeError("eviction from empty cache")
        file_id, age, is_master = victim
        size_kb, _ = cache.remove(file_id)
        self.counters.incr("evictions")
        if not is_master:
            return
        target = self._oldest_peer(node_id, age, size_kb)
        if target is None:
            if self.directory.get(file_id) == node_id:
                del self.directory[file_id]
            return
        self.directory[file_id] = target
        self.counters.incr("forwards")
        self.sim.process(self._forward(node_id, target, file_id, age, size_kb))

    def _oldest_peer(self, node_id: int, age: float,
                     size_kb: float) -> int | None:
        best, best_age = None, age
        for cache in self.caches:
            if cache.node_id == node_id or not cache.fits(size_kb):
                continue
            peer_age = cache.oldest_age()
            if peer_age < best_age:
                best, best_age = cache.node_id, peer_age
        return best

    def _forward(self, src_id: int, dst_id: int, file_id: int,
                 age: float, size_kb: float) -> Generator[Event, object, None]:
        src, dst = self.cluster.nodes[src_id], self.cluster.nodes[dst_id]
        yield from self.cluster.network.transfer(src, dst, size_kb)
        yield dst.cpu.submit(self.params.cpu.evicted_master_ms)
        if self.directory.get(file_id) != dst_id:
            self.counters.incr("forward_stale")
            return
        cache = self.caches[dst_id]
        if file_id in cache:
            if not cache.is_master(file_id):
                size, _ = cache.remove(file_id)
                cache.insert(file_id, size, master=True, age=age)
            return
        if cache.oldest_age() >= age:
            self.counters.incr("forward_dropped")
            del self.directory[file_id]
            return
        # Make room by dropping the destination's oldest files (no
        # cascaded forwarding, as in the block protocol).
        while cache.used_kb + size_kb > cache.capacity_kb:
            victim = cache.select_victim()
            if victim is None:  # pragma: no cover - fits() guards this
                del self.directory[file_id]
                return
            vf, _va, v_master = victim
            cache.remove(vf)
            self.counters.incr("forward_displaced")
            if v_master and self.directory.get(vf) == dst_id:
                del self.directory[vf]
        cache.insert(file_id, size_kb, master=True, age=age)
        self.counters.incr("forward_installed")

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Discard warm-up counters."""
        self.counters.reset()

    def hit_rates(self) -> dict[str, float]:
        """Block-weighted hit fractions (same denominator as the others)."""
        c = self.counters
        total = c.get("local_hit") + c.get("remote_hit") + c.get("disk_read")
        if total == 0:
            return {"local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0}
        return {
            "local": c.get("local_hit") / total,
            "remote": c.get("remote_hit") / total,
            "disk": c.get("disk_read") / total,
            "total": (c.get("local_hit") + c.get("remote_hit")) / total,
        }
