"""Experiment harness (system S10 in DESIGN.md).

One function per paper table/figure (:mod:`~repro.experiments.tables`,
:mod:`~repro.experiments.figures`), ablations beyond the paper
(:mod:`~repro.experiments.ablations`), the point runner
(:mod:`~repro.experiments.runner`) and sweep helpers
(:mod:`~repro.experiments.sweep`).

Scaling: by default workloads run at ``SCALE`` (see
:mod:`~repro.experiments.defaults`); set ``REPRO_FULL=1`` for full-size
traces.
"""

from .defaults import NUM_CLIENTS, NUM_REQUESTS, PAPER_MEMORY_MB, SCALE, workload
from .figures import (
    ALL_SYSTEMS,
    CC_VARIANTS,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6a,
    fig6b,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6a,
    render_fig6b,
)
from .report import banner, format_kv, format_table
from .runner import SYSTEMS, ExperimentConfig, ExperimentResult, run_experiment
from .sweep import memory_sweep, node_sweep, system_label
from .tables import render_table1, render_table2, table1, table2

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "SYSTEMS",
    "ALL_SYSTEMS",
    "CC_VARIANTS",
    "memory_sweep",
    "node_sweep",
    "system_label",
    "table1",
    "table2",
    "render_table1",
    "render_table2",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b",
    "render_fig1", "render_fig2", "render_fig3", "render_fig4",
    "render_fig5", "render_fig6a", "render_fig6b",
    "format_table", "format_kv", "banner",
    "SCALE", "NUM_REQUESTS", "NUM_CLIENTS", "PAPER_MEMORY_MB", "workload",
]
