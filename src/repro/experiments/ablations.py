"""Ablations and extensions beyond the paper's published curves (A1-A9).

Each function mirrors the figure API: run → structured data, plus a
``render_*`` printer.  DESIGN.md §3 motivates each study.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..cache.block import FileLayout
from ..cache.directory import HomeMap
from ..cluster.cluster import Cluster
from ..core.config import CoopCacheConfig
from ..core.wholefile import WholeFileCoopServer
from ..params import DEFAULT_PARAMS, HARDWARE_CONFIGS
from ..sim.engine import Simulator
from ..sim.faults import FaultPlan
from ..web.client import ClosedLoopDriver
from . import defaults
from .report import format_table
from .runner import ExperimentConfig, run_experiment
from .sweep import system_label

__all__ = [
    "a1_hints", "render_a1",
    "a2_hotspot", "render_a2",
    "a3_wholefile", "render_a3",
    "a4_disksched", "render_a4",
    "a5_lan", "render_a5",
    "a6_replacement", "render_a6",
    "a7_writes", "render_a7",
    "a8_temporal", "render_a8",
    "a9_policies", "render_a9",
    "a10_faults", "render_a10",
]


def _std_point(trace, system, mem_mb, num_nodes=8, params=DEFAULT_PARAMS,
               home_strategy="round_robin"):
    return run_experiment(
        ExperimentConfig(
            system=system,
            trace=trace,
            num_nodes=num_nodes,
            mem_mb_per_node=mem_mb,
            num_clients=defaults.NUM_CLIENTS,
            params=params,
            home_strategy=home_strategy,
        )
    )


def _default_mem() -> float:
    """The mid-axis point the ablations anchor on (32 MB/node scaled)."""
    return 32.0 * defaults.SCALE


# ---------------------------------------------------------------------------
# A1: hint-based directory vs the paper's perfect directory
# ---------------------------------------------------------------------------
def a1_hints(
    accuracies: Sequence[float] = (1.0, 0.98, 0.95, 0.9, 0.7),
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
) -> dict:
    """Does the perfect-directory assumption matter?  Sarkar & Hartman's
    hint accuracy (~98%) should cost almost nothing."""
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    perfect = _std_point(trace, "cc-kmc", mem)
    rows = []
    for acc in accuracies:
        cfg = CoopCacheConfig(directory="hints", hint_accuracy=acc)
        res = _std_point(trace, cfg, mem)
        rows.append(
            {
                "accuracy": acc,
                "throughput_rps": res.throughput_rps,
                "vs_perfect": (
                    res.throughput_rps / perfect.throughput_rps
                    if perfect.throughput_rps else 0.0
                ),
                "hit_total": res.hit_rates["total"],
                "peer_misses": res.counters.get("peer_miss", 0),
            }
        )
    return {
        "trace": trace_name,
        "mem_mb": mem,
        "perfect_rps": perfect.throughput_rps,
        "points": rows,
    }


def render_a1(data: dict | None = None, **kw) -> str:
    """Print-ready A1."""
    data = data or a1_hints(**kw)
    rows = [
        [p["accuracy"], p["throughput_rps"], p["vs_perfect"],
         p["hit_total"], p["peer_misses"]]
        for p in data["points"]
    ]
    return format_table(
        ["Hint accuracy", "Throughput (req/s)", "vs perfect dir",
         "Hit rate", "Bounced requests"],
        rows,
        title=(
            f"A1: hint-based directory, {data['trace']}, "
            f"{data['mem_mb']:g} MB/node "
            f"(perfect dir: {data['perfect_rps']:.0f} req/s)"
        ),
    )


# ---------------------------------------------------------------------------
# A2: hot files concentrated on one home node
# ---------------------------------------------------------------------------
def a2_hotspot(
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
    hot_fraction: float = 0.05,
    num_nodes: int = 8,
) -> dict:
    """Paper Section 5: "It would be interesting to observe [the
    middleware's] performance under a forced concentration of hot files
    on a single node."  We re-home the hottest ``hot_fraction`` of files
    onto node 0 and compare against the round-robin spread."""
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    spread = _std_point(trace, "cc-kmc", mem, num_nodes=num_nodes)

    # Build the concentrated home map by hand.
    counts = trace.request_counts()
    hot = np.argsort(-counts)[: max(1, int(len(counts) * hot_fraction))]
    from ..web.server import CoopCacheWebServer
    from ..core.middleware import CoopCacheLayer
    from ..core.api import blocks_for_mb
    from ..core.config import variant

    sim = Simulator()
    cluster = Cluster(sim, DEFAULT_PARAMS, num_nodes)
    layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
    homes = HomeMap(layout.num_files, num_nodes)
    homes.concentrate((int(f) for f in hot), node_id=0)
    layer = CoopCacheLayer(
        cluster, layout, homes, blocks_for_mb(mem), config=variant("cc-kmc")
    )
    driver = ClosedLoopDriver(
        sim, cluster, CoopCacheWebServer(layer), trace,
        num_clients=defaults.NUM_CLIENTS,
    )
    conc = driver.run()
    return {
        "trace": trace_name,
        "mem_mb": mem,
        "hot_fraction": hot_fraction,
        "spread_rps": spread.throughput_rps,
        "concentrated_rps": conc.throughput_rps,
        "ratio": (
            conc.throughput_rps / spread.throughput_rps
            if spread.throughput_rps else 0.0
        ),
        "concentrated_disk_max": conc.max_utilization["disk"],
        "spread_disk_max": spread.workload.max_utilization["disk"],
    }


def render_a2(data: dict | None = None, **kw) -> str:
    """Print-ready A2."""
    data = data or a2_hotspot(**kw)
    rows = [
        ["round-robin homes", data["spread_rps"], data["spread_disk_max"]],
        [f"hottest {data['hot_fraction']:.0%} on node 0",
         data["concentrated_rps"], data["concentrated_disk_max"]],
    ]
    table = format_table(
        ["Home placement", "Throughput (req/s)", "Max disk util"],
        rows,
        title=f"A2: hot-file concentration, {data['trace']}",
    )
    return table + f"\nconcentrated/spread = {data['ratio']:.2f}"


# ---------------------------------------------------------------------------
# A3: whole-file adaptation vs block granularity
# ---------------------------------------------------------------------------
def a3_wholefile(
    trace_name: str = "rutgers",
    memories_mb: Sequence[float] | None = None,
    num_nodes: int = 8,
) -> dict:
    """Paper Section 6: is a whole-file adaptation of the middleware
    better for a server that always reads whole files?"""
    trace = defaults.workload(trace_name)
    mems = list(memories_mb if memories_mb is not None
                else defaults.memory_points_mb([8, 32, 128]))
    rows = []
    for mem in mems:
        block = _std_point(trace, "cc-kmc", mem, num_nodes=num_nodes)

        sim = Simulator()
        cluster = Cluster(sim, DEFAULT_PARAMS, num_nodes)
        layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
        homes = HomeMap(layout.num_files, num_nodes)
        server = WholeFileCoopServer(
            cluster, layout, homes, capacity_kb=mem * 1024.0
        )
        driver = ClosedLoopDriver(
            sim, cluster, server, trace, num_clients=defaults.NUM_CLIENTS
        )
        whole = driver.run()
        rows.append(
            {
                "mem_mb": mem,
                "block_rps": block.throughput_rps,
                "wholefile_rps": whole.throughput_rps,
                "block_hit": block.hit_rates["total"],
                "wholefile_hit": server.hit_rates()["total"],
            }
        )
    return {"trace": trace_name, "points": rows}


def render_a3(data: dict | None = None, **kw) -> str:
    """Print-ready A3."""
    data = data or a3_wholefile(**kw)
    rows = [
        [p["mem_mb"], p["block_rps"], p["wholefile_rps"],
         p["block_hit"], p["wholefile_hit"]]
        for p in data["points"]
    ]
    return format_table(
        ["Mem/node (MB)", "block req/s", "whole-file req/s",
         "block hit", "whole-file hit"],
        rows,
        title=f"A3: caching granularity, {data['trace']}, 8 nodes",
    )


# ---------------------------------------------------------------------------
# A4: disk scheduling ablation
# ---------------------------------------------------------------------------
def a4_disksched(
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
) -> dict:
    """Isolate the CC-Basic -> CC-Sched step: FIFO vs SCAN disk queues
    for both replacement policies."""
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    rows = []
    for policy in ("basic", "kmc"):
        for disk in ("fifo", "scan"):
            cfg = CoopCacheConfig(policy=policy, disk_discipline=disk)
            res = _std_point(trace, cfg, mem)
            rows.append(
                {
                    "policy": policy,
                    "disk": disk,
                    "throughput_rps": res.throughput_rps,
                    "hit_total": res.hit_rates["total"],
                    "mean_response_ms": res.mean_response_ms,
                }
            )
    return {"trace": trace_name, "mem_mb": mem, "points": rows}


def render_a4(data: dict | None = None, **kw) -> str:
    """Print-ready A4."""
    data = data or a4_disksched(**kw)
    rows = [
        [p["policy"], p["disk"], p["throughput_rps"], p["hit_total"],
         p["mean_response_ms"]]
        for p in data["points"]
    ]
    return format_table(
        ["Policy", "Disk queue", "Throughput (req/s)", "Hit rate",
         "Mean resp (ms)"],
        rows,
        title=f"A4: disk scheduling, {data['trace']}, {data['mem_mb']:g} MB/node",
    )


# ---------------------------------------------------------------------------
# A5: LAN speed sensitivity
# ---------------------------------------------------------------------------
def a5_lan(
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
    configs: Sequence[str] = ("lan-100mb", "lan-1gb", "lan-10gb"),
) -> dict:
    """Paper Section 6: "this paper assumes a very specific set of
    hardware characteristics" — how does the CC-vs-PRESS comparison move
    with LAN speed?  (The whole CC argument rests on fast LANs.)"""
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    rows = []
    for name in configs:
        params = HARDWARE_CONFIGS[name]
        press = _std_point(trace, "press", mem, params=params)
        kmc = _std_point(trace, "cc-kmc", mem, params=params)
        rows.append(
            {
                "config": name,
                "press_rps": press.throughput_rps,
                "kmc_rps": kmc.throughput_rps,
                "ratio": (
                    kmc.throughput_rps / press.throughput_rps
                    if press.throughput_rps else 0.0
                ),
            }
        )
    return {"trace": trace_name, "mem_mb": mem, "points": rows}


def render_a5(data: dict | None = None, **kw) -> str:
    """Print-ready A5."""
    data = data or a5_lan(**kw)
    rows = [
        [p["config"], p["press_rps"], p["kmc_rps"], p["ratio"]]
        for p in data["points"]
    ]
    return format_table(
        ["LAN", "PRESS req/s", "CC-KMC req/s", "KMC/PRESS"],
        rows,
        title=f"A5: LAN sensitivity, {data['trace']}, {data['mem_mb']:g} MB/node",
    )


# ---------------------------------------------------------------------------
# A6: replacement-policy component ablation
# ---------------------------------------------------------------------------
def a6_replacement(
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
) -> dict:
    """Which ingredient buys what: policy (basic vs KMC) x forwarding
    (second chance on/off)."""
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    rows = []
    for policy in ("basic", "kmc"):
        for forward in (True, False):
            cfg = CoopCacheConfig(policy=policy, forward_on_evict=forward)
            res = _std_point(trace, cfg, mem)
            rows.append(
                {
                    "label": system_label(cfg),
                    "policy": policy,
                    "forward": forward,
                    "throughput_rps": res.throughput_rps,
                    "hit_total": res.hit_rates["total"],
                    "forwards": res.counters.get("forwards", 0),
                }
            )
    return {"trace": trace_name, "mem_mb": mem, "points": rows}


def render_a6(data: dict | None = None, **kw) -> str:
    """Print-ready A6."""
    data = data or a6_replacement(**kw)
    rows = [
        [p["policy"], "on" if p["forward"] else "off",
         p["throughput_rps"], p["hit_total"], p["forwards"]]
        for p in data["points"]
    ]
    return format_table(
        ["Policy", "Forwarding", "Throughput (req/s)", "Hit rate",
         "Masters forwarded"],
        rows,
        title=(
            f"A6: replacement components, {data['trace']}, "
            f"{data['mem_mb']:g} MB/node"
        ),
    )


# ---------------------------------------------------------------------------
# A7: read/write workloads (the paper's "writes as well as reads")
# ---------------------------------------------------------------------------
def a7_writes(
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
    write_ratios: Sequence[float] = (0.0, 0.1, 0.3),
    num_nodes: int = 8,
) -> dict:
    """Paper Section 6: "we plan to investigate how to support writes as
    well as reads".  Every request is a write with probability
    ``write_ratio``; compares write-back against write-through."""
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    rows = []
    for ratio in write_ratios:
        row = {"write_ratio": ratio}
        for policy in ("write-back", "write-through"):
            res = _run_rw_point(trace, mem, ratio, policy, num_nodes)
            key = policy.replace("write-", "")
            row[f"{key}_rps"] = res["throughput_rps"]
            row[f"{key}_flushes"] = res["flushed_blocks"]
            row[f"{key}_invalidations"] = res["invalidations"]
        rows.append(row)
    return {"trace": trace_name, "mem_mb": mem, "points": rows}


def _run_rw_point(trace, mem_mb, write_ratio, write_policy, num_nodes):
    """One closed-loop run where a fraction of requests are writes."""
    from ..core.api import blocks_for_mb
    from ..core.middleware import CoopCacheLayer
    from ..sim.rng import stream
    from ..web.client import ClosedLoopDriver
    from ..web.server import CoopCacheWebServer

    cfg = CoopCacheConfig(write_policy=write_policy)
    sim = Simulator()
    cluster = Cluster(sim, DEFAULT_PARAMS, num_nodes,
                      disk_discipline=cfg.disk_discipline)
    layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
    homes = HomeMap(layout.num_files, num_nodes)
    layer = CoopCacheLayer(cluster, layout, homes, blocks_for_mb(mem_mb),
                           config=cfg)
    web = CoopCacheWebServer(layer)
    rng = stream(17, "a7", write_policy, int(write_ratio * 1000))

    class ReadWriteService:
        """Web service where some GETs are PUTs."""

        def handle(self, node, file_id):
            """GET or (with probability write_ratio) PUT one file."""
            if rng.random() < write_ratio:
                yield node.cpu.submit(layer.params.cpu.parse_ms)
                yield from layer.write(node, file_id)
                size_kb = layout.size_kb(file_id)
                yield node.nic.submit(
                    layer.params.network.transfer_ms(0.3)  # small ACK
                )
            else:
                yield from web.handle(node, file_id)

        def reset_stats(self):
            """Discard warm-up counters."""
            web.reset_stats()

    driver = ClosedLoopDriver(sim, cluster, ReadWriteService(), trace,
                              num_clients=defaults.NUM_CLIENTS)
    result = driver.run()
    return {
        "throughput_rps": result.throughput_rps,
        "flushed_blocks": layer.counters.get("flushed_blocks"),
        "invalidations": layer.counters.get("invalidations"),
    }


def render_a7(data: dict | None = None, **kw) -> str:
    """Print-ready A7."""
    data = data or a7_writes(**kw)
    rows = [
        [f"{p['write_ratio']:.0%}", p["back_rps"], p["through_rps"],
         p["back_flushes"], p["through_flushes"], p["back_invalidations"]]
        for p in data["points"]
    ]
    return format_table(
        ["Write ratio", "write-back req/s", "write-through req/s",
         "wb flushes", "wt flushes", "wb invalidations"],
        rows,
        title=(
            f"A7: read/write workloads, {data['trace']}, "
            f"{data['mem_mb']:g} MB/node"
        ),
    )


# ---------------------------------------------------------------------------
# A8: temporal locality sensitivity
# ---------------------------------------------------------------------------
def a8_temporal(
    trace_name: str = "rutgers",
    mem_mb: float | None = None,
    alphas: Sequence[float] = (0.0, 0.2, 0.4),
    num_nodes: int = 8,
) -> dict:
    """How much does the i.i.d.-Zipf simplification matter?

    The synthetic traces draw requests i.i.d. from the popularity
    distribution (DESIGN.md §4.5); real logs add short-term temporal
    locality on top.  This study regenerates the workload with
    increasing re-reference probability and checks that (a) all systems'
    hit rates rise and (b) the CC-vs-PRESS comparison is stable — i.e.
    the paper's conclusion does not hinge on the simplification.
    """
    from dataclasses import replace as dc_replace

    from ..traces.analysis import recency_reference_fraction
    from ..traces.synthetic import generate

    base = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    rows = []
    for alpha in alphas:
        trace = (
            base
            if alpha == 0.0
            else generate(dc_replace(base.spec, temporal_alpha=alpha))
        )
        press = _std_point(trace, "press", mem, num_nodes=num_nodes)
        kmc = _std_point(trace, "cc-kmc", mem, num_nodes=num_nodes)
        rows.append(
            {
                "alpha": alpha,
                "recency": recency_reference_fraction(trace),
                "press_rps": press.throughput_rps,
                "kmc_rps": kmc.throughput_rps,
                "ratio": (
                    kmc.throughput_rps / press.throughput_rps
                    if press.throughput_rps else 0.0
                ),
                "kmc_hit": kmc.hit_rates["total"],
                "press_hit": press.hit_rates["total"],
            }
        )
    return {"trace": trace_name, "mem_mb": mem, "points": rows}


def render_a8(data: dict | None = None, **kw) -> str:
    """Print-ready A8."""
    data = data or a8_temporal(**kw)
    rows = [
        [p["alpha"], p["recency"], p["press_rps"], p["kmc_rps"],
         p["ratio"], p["press_hit"], p["kmc_hit"]]
        for p in data["points"]
    ]
    return format_table(
        ["alpha", "recency frac", "PRESS req/s", "CC-KMC req/s",
         "KMC/PRESS", "PRESS hit", "KMC hit"],
        rows,
        title=(
            f"A8: temporal locality, {data['trace']}, "
            f"{data['mem_mb']:g} MB/node"
        ),
    )


# ---------------------------------------------------------------------------
# A9: improving on KMC (the paper: "can likely be improved")
# ---------------------------------------------------------------------------
def a9_policies(
    trace_name: str = "rutgers",
    memories_mb: Sequence[float] | None = None,
    num_nodes: int = 8,
) -> dict:
    """Paper Section 3/5: "the replacement policy of our current
    best-performing algorithm can likely be improved" and KMC "does not
    necessarily lead to best performance".  Evaluates the ``hybrid``
    policy (KMC with an escape hatch for extremely cold masters) against
    plain KMC and basic."""
    trace = defaults.workload(trace_name)
    mems = list(memories_mb if memories_mb is not None
                else defaults.memory_points_mb([8, 32, 128]))
    rows = []
    for mem in mems:
        row = {"mem_mb": mem}
        for policy in ("basic", "kmc", "hybrid"):
            cfg = CoopCacheConfig(policy=policy)
            res = _std_point(trace, cfg, mem, num_nodes=num_nodes)
            row[f"{policy}_rps"] = res.throughput_rps
            row[f"{policy}_hit"] = res.hit_rates["total"]
            row[f"{policy}_local"] = res.hit_rates["local"]
            row[f"{policy}_resp"] = res.mean_response_ms
        rows.append(row)
    return {"trace": trace_name, "points": rows}


def render_a9(data: dict | None = None, **kw) -> str:
    """Print-ready A9."""
    data = data or a9_policies(**kw)
    rows = [
        [p["mem_mb"],
         p["basic_rps"], p["kmc_rps"], p["hybrid_rps"],
         p["kmc_local"], p["hybrid_local"],
         p["kmc_resp"], p["hybrid_resp"]]
        for p in data["points"]
    ]
    return format_table(
        ["Mem/node MB", "basic req/s", "kmc req/s", "hybrid req/s",
         "kmc local", "hybrid local", "kmc resp ms", "hybrid resp ms"],
        rows,
        title=f"A9: replacement-policy improvement, {data['trace']}, 8 nodes",
    )


# ---------------------------------------------------------------------------
# A10: availability and graceful degradation under injected crashes
# ---------------------------------------------------------------------------
def a10_faults(
    trace_name: str = "rutgers",
    crash_rates: Sequence[float] = (0.0, 1.0, 3.0),
    mem_mb: float | None = None,
    num_nodes: int = 8,
    plan_seed: int = 1,
) -> dict:
    """Throughput/response degradation vs crash rate (DESIGN.md S14).

    The paper evaluates a perfect cluster; this ablation asks what each
    system's protocol does when nodes fail-stop and return.  For every
    system a fault-free baseline run sizes the fault-plan horizon, then
    seeded :class:`~repro.sim.FaultPlan`\\ s with ``crashes_per_node``
    expected crashes are replayed over the *same* trace.  Every request
    must terminate — degraded or "failed", never hung — so the sweep
    doubles as an availability check on all four systems.
    """
    trace = defaults.workload(trace_name)
    mem = mem_mb if mem_mb is not None else _default_mem()
    systems = []
    for system in ("press", "cc-basic", "cc-sched", "cc-kmc"):
        base = _std_point(trace, system, mem, num_nodes=num_nodes)
        horizon = base.workload.total_ms
        points = []
        for rate in crash_rates:
            if rate <= 0.0:
                res = base
            else:
                plan = FaultPlan.random(
                    plan_seed, horizon, num_nodes, crashes_per_node=rate
                )
                res = run_experiment(
                    ExperimentConfig(
                        system=system,
                        trace=trace,
                        num_nodes=num_nodes,
                        mem_mb_per_node=mem,
                        num_clients=defaults.NUM_CLIENTS,
                        faults=plan,
                    )
                )
            w = res.workload
            points.append(
                {
                    "crashes_per_node": rate,
                    "throughput_rps": w.throughput_rps,
                    "vs_fault_free": (
                        w.throughput_rps / base.throughput_rps
                        if base.throughput_rps else 0.0
                    ),
                    "mean_response_ms": w.mean_response_ms,
                    "failed_requests": w.failed_requests,
                    "node_crashes": res.fault_counters.get("node_crashes", 0),
                }
            )
        systems.append({"system": system, "points": points})
    return {
        "trace": trace_name,
        "mem_mb": mem,
        "num_nodes": num_nodes,
        "crash_rates": list(crash_rates),
        "systems": systems,
    }


def render_a10(data: dict | None = None, **kw) -> str:
    """Print-ready A10."""
    data = data or a10_faults(**kw)
    rows = []
    for sysrow in data["systems"]:
        for p in sysrow["points"]:
            rows.append(
                [sysrow["system"], p["crashes_per_node"], p["node_crashes"],
                 p["throughput_rps"], p["vs_fault_free"],
                 p["mean_response_ms"], p["failed_requests"]]
            )
    return format_table(
        ["System", "Crash rate", "Crashes", "Throughput (req/s)",
         "vs fault-free", "Mean resp ms", "Failed"],
        rows,
        title=(
            f"A10: graceful degradation under crashes, {data['trace']}, "
            f"{data['num_nodes']} nodes, {data['mem_mb']:g} MB/node"
        ),
    )
