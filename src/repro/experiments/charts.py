"""Terminal line charts for the figure renderers.

The paper's figures are line plots; the harness reproduces the numbers
as tables (exact) plus these Unicode charts (shape at a glance).  Pure
text, no plotting dependency — suitable for logs and CI output.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["line_chart", "bar_chart", "sparkline"]

#: Plot glyph per series, cycled.
_GLYPHS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(frac * (steps - 1)))))


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named series over a shared x axis as a text chart.

    X positions are spread by *index* (the paper's memory axis is
    log-spaced, and index spacing matches how its figures read).
    """
    if not x:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length != x length")
    all_y = [y for ys in series.values() for y in ys]
    if not all_y:
        raise ValueError("need at least one series")
    y_lo = min(0.0, min(all_y))
    y_hi = max(all_y) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        prev = None
        for i, yv in enumerate(ys):
            cx = _scale(i, 0, max(1, len(x) - 1), width)
            cy = height - 1 - _scale(yv, y_lo, y_hi, height)
            if prev is not None:
                # Sparse interpolation so lines read as lines.
                px, py = prev
                steps = max(abs(cx - px), abs(cy - py))
                for s in range(1, steps):
                    ix = px + (cx - px) * s // steps
                    iy = py + (cy - py) * s // steps
                    if grid[iy][ix] == " ":
                        grid[iy][ix] = "."
            grid[cy][cx] = glyph
            prev = (cx, cy)

    lines: list[str] = []
    if title:
        lines.append(title)
    top = f"{y_hi:,.4g}"
    bottom = f"{y_lo:,.4g}"
    margin = max(len(top), len(bottom), len(y_label)) + 1
    if y_label:
        lines.append(y_label.rjust(margin))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = top
        elif row_idx == height - 1:
            label = bottom
        else:
            label = ""
        lines.append(label.rjust(margin) + " |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    ticks = " " * (margin + 2)
    first, last = f"{x[0]:g}", f"{x[-1]:g}"
    pad = max(0, width - len(first) - len(last))
    lines.append(ticks + first + " " * pad + last)
    if x_label:
        lines.append(" " * (margin + 2) + x_label)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


#: Block glyphs for sparklines, lowest to highest.
_SPARKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], hi: float | None = None) -> str:
    """One-line block-glyph series (for per-window time-series tables).

    ``hi`` fixes the scale top (so multiple sparklines compare); default
    is the series maximum.
    """
    if not values:
        return ""
    top = hi if hi is not None else max(values)
    if top <= 0:
        return _SPARKS[0] * len(values)
    out = []
    for v in values:
        idx = _scale(v, 0.0, top, len(_SPARKS))
        if v > 0 and idx == 0:
            idx = 1
        out.append(_SPARKS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bars, one per label (for Figure-4-style comparisons)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("need at least one bar")
    hi = max(values) or 1.0
    name_w = max(len(str(l)) for l in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, _scale(value, 0.0, hi, width) + (1 if value > 0 else 0))
        lines.append(f"{str(label).rjust(name_w)} | {bar} {value:,.4g}")
    return "\n".join(lines)
