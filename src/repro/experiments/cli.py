"""Command-line entry point for the reproduction harness.

Usage::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli table1 table2
    python -m repro.experiments.cli fig3 fig4
    python -m repro.experiments.cli a4 a6
    python -m repro.experiments.cli all          # everything (minutes)

    # One observable experiment: trace + metrics + sampled invariants.
    python -m repro.experiments.cli run --system cc-kmc --workload rutgers \\
        --trace trace.jsonl --metrics-out metrics.json --invariant-every 1000

    # Same, with critical-path profiling and an inline bottleneck report.
    python -m repro.experiments.cli run --profile --trace trace.jsonl

    # Chaos run: fault-free baseline, then the same workload under a
    # seeded fault plan (crashes/link drops/disk stalls), side by side.
    python -m repro.experiments.cli chaos --system cc-kmc \\
        --crashes-per-node 2 --plan-out plan.json --trace chaos.jsonl

    # Offline analysis of a dumped run: attribution report, Perfetto
    # export, windowed time series, slowest requests, and the
    # cluster-wide critical-path profile.
    python -m repro.experiments.cli analyze trace.jsonl metrics.json \\
        --report --perfetto perfetto.json --timeseries --top 10
    python -m repro.experiments.cli analyze trace.jsonl --critical

    # Differential attribution: explain what changed between two runs
    # (inputs are `analyze --json` summaries or raw trace JSONL).
    python -m repro.experiments.cli analyze diff base.json current.json

    # Windowed SLO evaluation over a run (alerts are deterministic
    # `alert` point spans in the trace; works under chaos too).
    python -m repro.experiments.cli run --slo slo.json --trace trace.jsonl
    python -m repro.experiments.cli chaos --slo slo.json --slo-out report.json

    # Cache-behavior telemetry (CacheScope): record during a run, then
    # render tables/sparklines offline; --json emits the attribution
    # summary machine-readably.
    python -m repro.experiments.cli run --system cc-basic \\
        --cachestats cachescope.jsonl
    python -m repro.experiments.cli analyze --cache cachescope.jsonl
    python -m repro.experiments.cli analyze trace.jsonl metrics.json --json -

    # Sharded figure sweep: run the fig2 (trace x system x memory) cell
    # matrix across 4 worker processes and emit the provenance-wrapped
    # trajectory record — byte-identical to a serial (--workers 1) run.
    python -m repro.experiments.cli sweep --workers 4 \\
        --bench-out BENCH_fig2.json

    # Fleet observability: the same sweep with a run ledger (per-cell
    # manifests + artifacts) and live progress telemetry, then the
    # cross-cell rollup (conservation check, binding-resource frequency,
    # throughput heatmaps) over the ledger slice.
    python -m repro.experiments.cli sweep --workers 4 \\
        --ledger ledger.jsonl --progress progress.jsonl \\
        --bench-out BENCH_fig2.json
    python -m repro.obs.ledger list ledger.jsonl
    python -m repro.experiments.cli analyze fleet ledger.jsonl

Pass ``-v`` / ``--verbose`` (repeatable) anywhere for INFO/DEBUG
logging.  Workload scale is controlled by the usual environment knobs
(``REPRO_SCALE`` / ``REPRO_REQUESTS`` / ``REPRO_CLIENTS`` /
``REPRO_FULL``).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Callable

from . import ablations, defaults, figures, tables
from .report import banner

__all__ = [
    "ARTIFACTS", "main", "run_command", "analyze_command",
    "analyze_diff_command", "analyze_fleet_command", "chaos_command",
    "sweep_command",
]

#: artifact name -> zero-argument renderer.
ARTIFACTS: dict[str, Callable[[], str]] = {
    "table1": tables.render_table1,
    "table2": tables.render_table2,
    "fig1": figures.render_fig1,
    "fig2": figures.render_fig2,
    "fig3": figures.render_fig3,
    "fig4": figures.render_fig4,
    "fig5": figures.render_fig5,
    "fig6a": figures.render_fig6a,
    "fig6b": figures.render_fig6b,
    "fig_ring": figures.render_fig_ring,
    "a1": ablations.render_a1,
    "a2": ablations.render_a2,
    "a3": ablations.render_a3,
    "a4": ablations.render_a4,
    "a5": ablations.render_a5,
    "a6": ablations.render_a6,
    "a7": ablations.render_a7,
    "a8": ablations.render_a8,
    "a9": ablations.render_a9,
    "a10": ablations.render_a10,
}


def _positive(convert):
    def parse(text: str):
        value = convert(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be positive, got {text}")
        return value

    return parse


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _add_ledger_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ledger", metavar="FILE", default=None,
                   help="append a provenance-stamped manifest record "
                        "(git sha, seed, knobs, wall-clock, exit status, "
                        "artifact paths) to this run-ledger JSONL; inspect "
                        "with `python -m repro.obs.ledger list/show`")


def _run_artifacts(opts, extra=()) -> dict:
    """Artifact paths this invocation wrote, for the ledger record."""
    artifacts = {}
    for name in ("trace", "metrics_out", "cachestats", "slo_out",
                 "plan_out") + tuple(extra):
        path = getattr(opts, name, None)
        if path:
            artifacts[name.replace("_out", "")] = path
    return artifacts


def _open_ledger(opts):
    """The run ledger for ``--ledger FILE``, or None."""
    if getattr(opts, "ledger", None) is None:
        return None
    from ..obs.ledger import Ledger

    return Ledger(opts.ledger)


def _ledger_run_record(ledger, kind, opts, cfg, *, status, wall_s,
                       result=None, error=None) -> None:
    """Append one run/chaos manifest record for a CLI invocation."""
    from ..bench.schema import params_digest

    coords = {
        "system": cfg.system_name(),
        "workload": cfg.trace.spec.name,
        "num_nodes": cfg.num_nodes,
        "mem_mb_per_node": cfg.mem_mb_per_node,
        "num_clients": cfg.num_clients,
        "seed": cfg.seed,
    }
    fields = dict(
        coords,
        params_digest=params_digest(coords),
        wall_s=round(wall_s, 6),
        artifacts=_run_artifacts(opts),
    )
    if result is not None:
        fields["summary"] = {
            "throughput_rps": result.throughput_rps,
            "mean_response_ms": result.mean_response_ms,
            "hit_rate_total": result.hit_rates.get("total", 0.0),
        }
    if error is not None:
        fields["error"] = error
    record = ledger.append(kind, status=status, **fields)
    print(f"ledger            -> {ledger.path} (run id {record['run_id']})")


def _add_slo_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--slo", metavar="FILE", default=None,
                   help="evaluate this SLO spec (JSON: window_ms, latency "
                        "p95/p99 targets, availability, burn rate) over "
                        "every measured completion; breaches emit "
                        "deterministic `alert` point spans in the trace")
    p.add_argument("--slo-out", metavar="FILE", default=None,
                   help="write the SLO evaluation report JSON to FILE "
                        "(implies --slo is required)")


def _load_slo_spec(opts):
    """Parse --slo/--slo-out into an SloSpec (or None); raises SystemExit
    with code 2 on a bad spec."""
    if opts.slo is None:
        if opts.slo_out:
            print("--slo-out requires --slo SPEC", file=sys.stderr)
            raise SystemExit(2)
        return None
    from ..obs.slo import SloSpec

    try:
        return SloSpec.load(opts.slo)
    except (OSError, json.JSONDecodeError, KeyError, TypeError,
            ValueError) as exc:
        print(f"cannot load SLO spec {opts.slo}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _print_slo(report, opts) -> None:
    """Print an SLO evaluation report and honour --slo-out.

    ``report`` must come from ``obs.slo.finalize()`` called *before* the
    trace is dumped — finalize closes the last window, and its alerts
    must land in the dumped JSONL.
    """
    if report is None:
        return
    from ..obs.reports import render_slo_report

    print()
    print(banner(f"SLO evaluation: {opts.slo}"))
    print(render_slo_report(report))
    if opts.slo_out:
        with open(opts.slo_out, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=2, sort_keys=True, default=float)
            fp.write("\n")
        print(f"slo report        -> {opts.slo_out}")


def _run_parser() -> argparse.ArgumentParser:
    from ..traces.datasets import TRACE_NAMES
    from .runner import SYSTEMS

    p = argparse.ArgumentParser(
        prog="repro-experiments run",
        description="Run one observable experiment point.",
    )
    p.add_argument("--system", default="cc-kmc",
                   choices=list(SYSTEMS), help="server variant")
    p.add_argument("--workload", default="rutgers", choices=list(TRACE_NAMES),
                   help="trace name (scaled per REPRO_SCALE)")
    p.add_argument("--mem-mb", type=_positive(float), default=None,
                   help="per-node memory MB (default: 32 x scale)")
    p.add_argument("--nodes", type=_positive(int), default=8,
                   help="cluster size")
    p.add_argument("--clients", type=_positive(int), default=None,
                   help="closed-loop clients (default: REPRO_CLIENTS)")
    p.add_argument("--seed", type=int, default=0, help="root RNG seed")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="write per-request span trace as JSONL to FILE")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="write the metrics-registry snapshot (JSON) to FILE")
    p.add_argument("--invariant-every", type=_non_negative_int, default=0,
                   metavar="N",
                   help="sample check_invariants every N kernel events "
                        "(middleware systems; 0 = off)")
    p.add_argument("--profile", action="store_true",
                   help="wrap every blocking wait in a phase span and "
                        "print the critical-path bottleneck report")
    p.add_argument("--cachestats", metavar="FILE", default=None,
                   help="record cache-behavior telemetry (duplicate share, "
                        "eviction provenance, forwarding hops) and dump it "
                        "as JSONL to FILE; render with `analyze --cache`")
    _add_slo_args(p)
    _add_ledger_arg(p)
    return p


def run_command(argv) -> int:
    """``run`` subcommand: one experiment with observability attached."""
    import time

    from ..obs import Observability
    from .runner import ExperimentConfig, run_experiment

    opts = _run_parser().parse_args(argv)
    slo_spec = _load_slo_spec(opts)
    trace = defaults.workload(opts.workload)
    cfg = ExperimentConfig(
        system=opts.system,
        trace=trace,
        num_nodes=opts.nodes,
        mem_mb_per_node=(
            opts.mem_mb if opts.mem_mb is not None else 32.0 * defaults.SCALE
        ),
        num_clients=opts.clients or defaults.NUM_CLIENTS,
        seed=opts.seed,
    )
    obs = Observability(
        trace=opts.trace is not None,
        invariant_every=opts.invariant_every,
        profile=opts.profile,
        cachestats=opts.cachestats is not None,
        slo=slo_spec,
    )
    ledger = _open_ledger(opts)
    t0 = time.perf_counter()  # simlint: disable=SL02 -- ledger wall-clock provenance, not sim state
    try:
        result = run_experiment(cfg, obs=obs)
    except Exception as exc:
        if ledger is not None:
            _ledger_run_record(
                ledger, "run", opts, cfg,
                status="failed",
                wall_s=time.perf_counter() - t0,  # simlint: disable=SL02 -- ledger wall-clock provenance, not sim state
                error=f"{type(exc).__name__}: {exc}",
            )
        raise
    wall_s = time.perf_counter() - t0  # simlint: disable=SL02 -- ledger wall-clock provenance, not sim state
    # Close the last SLO window before the trace is dumped so its alerts
    # are part of the JSONL (and the golden digest, when pinned).
    slo_report = obs.slo.finalize() if obs.slo is not None else None

    print(banner(f"run {cfg.system_name()} / {opts.workload}"))
    print(f"throughput        {result.throughput_rps:.1f} req/s")
    print(f"mean response     {result.mean_response_ms:.2f} ms")
    for cls in sorted(result.workload.response_by_class_ms):
        print(f"  {cls:<10} {result.workload.response_by_class_ms[cls]:8.2f} ms"
              f"  x{result.workload.requests_by_class[cls]}")
    hr = result.hit_rates
    print(f"hit rates         local={hr['local']:.3f} remote={hr['remote']:.3f} "
          f"disk={hr['disk']:.3f}")
    if obs.sampler is not None:
        print(f"invariant checks  {obs.sampler.checks_run} "
              f"(every {obs.sampler.every} of {obs.sampler.events_seen} events)")
    elif opts.invariant_every:
        print("invariant checks  n/a (no middleware layer in this system)")
    if opts.trace:
        obs.tracer.dump_jsonl(opts.trace)
        print(f"trace             {len(obs.tracer.records)} spans -> "
              f"{opts.trace} (sha256 {obs.tracer.digest()[:16]}...)")
    if opts.metrics_out:
        obs.registry.dump(opts.metrics_out)
        print(f"metrics           -> {opts.metrics_out}")
    if opts.cachestats:
        scope = obs.cachescope
        scope.dump_jsonl(opts.cachestats)
        snap_totals = scope.snapshot()["totals"]
        print(f"cachestats        -> {opts.cachestats}")
        print(f"  duplicate share {snap_totals['duplicate_share']:.4f} "
              f"({snap_totals['duplicate_kb']:.0f} of "
              f"{snap_totals['resident_kb']:.0f} KB resident)")
        print(f"  evictions       master={snap_totals['master_evictions']} "
              f"nonmaster={snap_totals['nonmaster_evictions']} "
              f"violations={snap_totals['violations']}")
        print(f"  forwards        {snap_totals['forwards']} "
              f"stale lookups {snap_totals['stale_lookups']}")
    if opts.profile:
        from ..obs.analyze import attribute
        from ..obs.reports import render_profile_report

        print()
        print(banner("critical-path profile"))
        print(render_profile_report(
            attribute(obs.tracer.records),
            metrics=obs.registry.snapshot(),
        ))
    _print_slo(slo_report, opts)
    if ledger is not None:
        _ledger_run_record(ledger, "run", opts, cfg, status="ok",
                           wall_s=wall_s, result=result)
    return 0


def _sweep_parser() -> argparse.ArgumentParser:
    from ..traces.datasets import TRACE_NAMES

    p = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Run a figure's (trace x system x memory) cell matrix, "
                    "optionally sharded across worker processes, and emit "
                    "a provenance-wrapped BENCH trajectory record.  Output "
                    "is byte-identical at any worker count.",
    )
    p.add_argument("--figure", default="fig2", choices=["fig2"],
                   help="which figure's sweep to run (currently: fig2)")
    p.add_argument("--workload", action="append", dest="workloads",
                   choices=list(TRACE_NAMES), default=None,
                   help="restrict to this trace (repeatable; default: all)")
    p.add_argument("--nodes", type=_positive(int), default=8,
                   help="cluster size")
    p.add_argument("--workers", type=_positive(int), default=None,
                   help="worker processes to shard cells across "
                        "(default: REPRO_WORKERS or 1 = serial)")
    p.add_argument("--memory-axis", default="bench",
                   choices=["bench", "paper"],
                   help="memory points: the 4-point benchmark axis "
                        "(baseline-compatible) or the paper's full 8-point "
                        "axis")
    p.add_argument("--bench-out", metavar="FILE", default=None,
                   help="write the provenance-wrapped trajectory record "
                        "(JSON, repro.bench schema) to FILE")
    p.add_argument("--render", action="store_true",
                   help="print the rendered figure tables as well")
    p.add_argument("--progress", metavar="FILE", default=None,
                   help="stream live per-cell heartbeat events (done, "
                        "cells/s, ETA, stragglers, failures) as JSONL to "
                        "FILE and print the completion timeline afterwards")
    p.add_argument("--artifacts", metavar="DIR", default=None,
                   help="per-cell artifact directory for --ledger "
                        "(attribution + trace per cell; default: "
                        "<ledger>.d)")
    _add_ledger_arg(p)
    return p


def _ledger_sweep_records(ledger, opts, outcomes, progress_summary,
                          workers, n_cells) -> None:
    """Append the sweep manifest + one cell record per outcome."""
    from ..obs.ledger import measure_observability_overhead

    artifacts = {}
    if opts.bench_out:
        artifacts["bench"] = opts.bench_out
    if opts.progress:
        artifacts["progress"] = opts.progress
    sweep_rec = ledger.append(
        "sweep",
        status="failed" if any(not o.ok for o in outcomes) else "ok",
        figure=opts.figure,
        cells=n_cells,
        workers=workers,
        progress=progress_summary,
        # Self-measured instrumentation cost: events/s through the
        # kernel with the tracer on vs off, so observability overhead
        # is a tracked number in the ledger, not folklore.
        obs_overhead=measure_observability_overhead(num_events=5_000),
        artifacts=artifacts,
    )
    for out in outcomes:
        fields = dict(
            cell_index=out.info.index,
            system=out.info.system,
            workload=out.info.workload,
            num_nodes=out.info.num_nodes,
            mem_mb_per_node=out.info.mem_mb_per_node,
            num_clients=out.info.num_clients,
            seed=out.info.seed,
            params_digest=out.info.params_digest,
            wall_s=round(out.wall_s, 6),
            worker=out.worker,
            summary=out.summary,
            artifacts=out.artifacts,
        )
        if out.error is not None:
            fields["error"] = out.error
        ledger.append(
            "cell",
            status="ok" if out.ok else "failed",
            parent=sweep_rec["run_id"],
            **fields,
        )
    print(f"ledger            -> {ledger.path} "
          f"(sweep run id {sweep_rec['run_id']}, {len(outcomes)} cell "
          f"records)")


def sweep_command(argv) -> int:
    """``sweep`` subcommand: sharded figure sweep + BENCH record.

    ``--ledger``/``--progress`` switch to the *observed* runner: same
    cells, same merged results (telemetry is passive — BENCH records
    stay byte-identical), plus per-cell manifests, artifacts and live
    heartbeat events.  A failing cell no longer surfaces as a bare
    multiprocessing traceback: it is named (system/trace/params digest),
    recorded in the ledger, and the exit code is 1.
    """
    import time

    from ..bench.schema import dump_record, wrap_result
    from ..traces.datasets import TRACE_NAMES
    from .figures import fig2_cells, fig2_collect, render_fig2
    from .parallel import (
        SweepCellError,
        SweepProgress,
        default_workers,
        run_cells,
        run_cells_observed,
    )

    opts = _sweep_parser().parse_args(argv)
    workers = opts.workers if opts.workers is not None else default_workers()
    memories = defaults.memory_points_mb(
        defaults.BENCH_MEMORY_MB if opts.memory_axis == "bench" else None
    )
    trace_names = opts.workloads or list(TRACE_NAMES)
    names, memories, cells = fig2_cells(
        trace_names=trace_names, num_nodes=opts.nodes, memories_mb=memories
    )
    n_systems = len(figures.ALL_SYSTEMS)
    n_cells = len(cells)
    print(banner(f"sweep {opts.figure}"))
    print(f"cells             {n_cells} "
          f"({len(trace_names)} traces x {n_systems} systems x "
          f"{len(memories)} memory points)")
    print(f"workers           {workers}")
    observed = opts.ledger is not None or opts.progress is not None
    ledger = _open_ledger(opts)
    failures = []
    outcomes = []
    # Wall-clock is operator-facing progress reporting only; it never
    # feeds simulation state (results are a pure function of the cells).
    t0 = time.perf_counter()  # simlint: disable=SL02 -- elapsed-time report, not sim state
    if observed:
        artifacts_dir = opts.artifacts
        if artifacts_dir is None and opts.ledger is not None:
            artifacts_dir = opts.ledger + ".d"
        progress = SweepProgress(
            total=n_cells,
            path=opts.progress,
            stream=sys.stderr if opts.progress else None,
        )
        results, outcomes = run_cells_observed(
            cells, workers=workers,
            progress=progress,
            artifacts_dir=artifacts_dir if ledger is not None else None,
            profile=ledger is not None,
            failures=failures,
        )
        progress_summary = progress.summary()
    else:
        try:
            results = run_cells(cells, workers=workers)
        except SweepCellError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 1
        progress_summary = None
    elapsed = time.perf_counter() - t0  # simlint: disable=SL02 -- elapsed-time report, not sim state
    print(f"elapsed           {elapsed:.1f} s wall "
          f"({n_cells / elapsed:.2f} cells/s)")
    if ledger is not None:
        _ledger_sweep_records(ledger, opts, outcomes, progress_summary,
                              workers, n_cells)
    if opts.progress:
        from ..obs.ledger import load_ledger as _load_jsonl
        from ..obs.reports import render_progress_report

        print()
        print(banner("sweep progress"))
        print(render_progress_report(_load_jsonl(opts.progress)))
        print(f"progress events   -> {opts.progress}")
    if failures:
        print(f"sweep: {len(failures)} cell(s) failed:", file=sys.stderr)
        for out in failures:
            print(f"  cell {out.info.index} [{out.info.coords()}] "
                  f"params {out.info.params_digest}: {out.error}",
                  file=sys.stderr)
        print("sweep: skipping BENCH record/render (incomplete matrix)",
              file=sys.stderr)
        return 1
    data = fig2_collect(names, memories, results)
    if opts.bench_out:
        record = wrap_result(
            opts.figure, data, seed=0, params=defaults.bench_params()
        )
        dump_record(record, opts.bench_out)
        print(f"trajectory record -> {opts.bench_out} "
              f"(params digest {record['params_digest']})")
    if opts.render:
        print()
        print(render_fig2(data))
    return 0


def _chaos_parser() -> argparse.ArgumentParser:
    from ..traces.datasets import TRACE_NAMES
    from .runner import SYSTEMS

    p = argparse.ArgumentParser(
        prog="repro-experiments chaos",
        description="Run a workload under a deterministic fault plan and "
                    "compare it with the fault-free baseline.",
    )
    p.add_argument("--system", default="cc-kmc",
                   choices=list(SYSTEMS), help="server variant")
    p.add_argument("--workload", default="rutgers", choices=list(TRACE_NAMES),
                   help="trace name (scaled per REPRO_SCALE)")
    p.add_argument("--mem-mb", type=_positive(float), default=None,
                   help="per-node memory MB (default: 32 x scale)")
    p.add_argument("--nodes", type=_positive(int), default=8,
                   help="cluster size")
    p.add_argument("--clients", type=_positive(int), default=None,
                   help="closed-loop clients (default: REPRO_CLIENTS)")
    p.add_argument("--seed", type=int, default=0, help="root RNG seed")
    p.add_argument("--plan-seed", type=int, default=1,
                   help="fault-plan RNG seed (independent of --seed)")
    p.add_argument("--crashes-per-node", type=float, default=1.0,
                   help="expected crashes per node over the run")
    p.add_argument("--link-drops", type=_non_negative_int, default=0,
                   help="number of transient link failures")
    p.add_argument("--disk-stalls", type=_non_negative_int, default=0,
                   help="number of disk stalls")
    p.add_argument("--plan", metavar="FILE", default=None,
                   help="replay this fault plan JSON instead of generating "
                        "one (skips the baseline sizing run)")
    p.add_argument("--plan-out", metavar="FILE", default=None,
                   help="archive the fault plan as JSON to FILE")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="write the chaotic run's span trace JSONL to FILE")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="write the metrics-registry snapshot (JSON) to FILE")
    p.add_argument("--profile", action="store_true",
                   help="phase spans + critical-path report (fault waits "
                        "show up as fault.detect / retry.backoff)")
    _add_slo_args(p)
    _add_ledger_arg(p)
    return p


def chaos_command(argv) -> int:
    """``chaos`` subcommand: baseline vs faulted run of one workload."""
    import time
    from dataclasses import replace

    from ..obs import Observability
    from ..sim.faults import FaultPlan
    from .runner import ExperimentConfig, run_experiment

    opts = _chaos_parser().parse_args(argv)
    slo_spec = _load_slo_spec(opts)
    trace = defaults.workload(opts.workload)
    base_cfg = ExperimentConfig(
        system=opts.system,
        trace=trace,
        num_nodes=opts.nodes,
        mem_mb_per_node=(
            opts.mem_mb if opts.mem_mb is not None else 32.0 * defaults.SCALE
        ),
        num_clients=opts.clients or defaults.NUM_CLIENTS,
        seed=opts.seed,
    )
    baseline = None
    if opts.plan:
        try:
            plan = FaultPlan.load(opts.plan)
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            print(f"chaos: cannot load plan: {exc}", file=sys.stderr)
            return 2
    else:
        # Fault-free baseline sizes the plan horizon to this workload —
        # and is the comparison row printed below.
        baseline = run_experiment(base_cfg)
        plan = FaultPlan.random(
            opts.plan_seed,
            baseline.workload.total_ms,
            opts.nodes,
            crashes_per_node=opts.crashes_per_node,
            link_drops=opts.link_drops,
            disk_stalls=opts.disk_stalls,
        )
    if opts.plan_out:
        plan.dump(opts.plan_out)
    obs = Observability(
        trace=opts.trace is not None, profile=opts.profile, slo=slo_spec
    )
    ledger = _open_ledger(opts)
    t0 = time.perf_counter()  # simlint: disable=SL02 -- ledger wall-clock provenance, not sim state
    try:
        result = run_experiment(replace(base_cfg, faults=plan), obs=obs)
    except Exception as exc:
        if ledger is not None:
            _ledger_run_record(
                ledger, "chaos", opts, base_cfg,
                status="failed",
                wall_s=time.perf_counter() - t0,  # simlint: disable=SL02 -- ledger wall-clock provenance, not sim state
                error=f"{type(exc).__name__}: {exc}",
            )
        raise
    wall_s = time.perf_counter() - t0  # simlint: disable=SL02 -- ledger wall-clock provenance, not sim state
    slo_report = obs.slo.finalize() if obs.slo is not None else None

    print(banner(f"chaos {base_cfg.system_name()} / {opts.workload}"))
    print(f"fault plan        {len(plan)} events over "
          f"{plan.horizon_ms:.0f} ms"
          + (f" (replaying {opts.plan})" if opts.plan else "")
          + (f" -> {opts.plan_out}" if opts.plan_out else ""))
    w = result.workload
    if baseline is not None:
        b = baseline.workload
        ratio = (w.throughput_rps / b.throughput_rps
                 if b.throughput_rps else 0.0)
        print(f"throughput        {w.throughput_rps:.1f} req/s "
              f"(fault-free {b.throughput_rps:.1f}, x{ratio:.2f})")
        print(f"mean response     {w.mean_response_ms:.2f} ms "
              f"(fault-free {b.mean_response_ms:.2f})")
    else:
        print(f"throughput        {w.throughput_rps:.1f} req/s")
        print(f"mean response     {w.mean_response_ms:.2f} ms")
    print(f"failed requests   {w.failed_requests} of "
          f"{w.measured_requests + w.failed_requests} measured")
    for cls in sorted(w.response_by_class_ms):
        print(f"  {cls:<10} {w.response_by_class_ms[cls]:8.2f} ms"
              f"  x{w.requests_by_class[cls]}")
    if result.fault_counters:
        print("fault counters    "
              + " ".join(f"{k}={v}"
                         for k, v in sorted(result.fault_counters.items())))
    if opts.trace:
        obs.tracer.dump_jsonl(opts.trace)
        print(f"trace             {len(obs.tracer.records)} spans -> "
              f"{opts.trace} (sha256 {obs.tracer.digest()[:16]}...)")
    if opts.metrics_out:
        obs.registry.dump(opts.metrics_out)
        print(f"metrics           -> {opts.metrics_out}")
    if opts.profile:
        from ..obs.analyze import attribute
        from ..obs.reports import render_profile_report

        print()
        print(banner("critical-path profile (chaotic run)"))
        print(render_profile_report(
            attribute(obs.tracer.records),
            metrics=obs.registry.snapshot(),
        ))
    _print_slo(slo_report, opts)
    if ledger is not None:
        _ledger_run_record(ledger, "chaos", opts, base_cfg, status="ok",
                           wall_s=wall_s, result=result)
    return 0


def _analyze_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments analyze",
        description="Offline analysis of a dumped run "
                    "(trace JSONL from `run --profile --trace`).",
    )
    p.add_argument("trace", metavar="TRACE", nargs="?", default=None,
                   help="span trace JSONL (from run --trace); optional "
                        "when only --cache output is requested")
    p.add_argument("metrics", metavar="METRICS", nargs="?", default=None,
                   help="metrics snapshot JSON (from run --metrics-out); "
                        "enables utilization-based bottleneck analysis")
    p.add_argument("--report", action="store_true",
                   help="print the critical-path attribution / bottleneck "
                        "report (default when no other output is requested)")
    p.add_argument("--json", metavar="FILE", default=None, dest="json_out",
                   help="write the attribution/bottleneck summary as JSON "
                        "to FILE ('-' for stdout) for CI consumption")
    p.add_argument("--cache", metavar="FILE", default=None,
                   help="render the cache-behavior report from a CacheScope "
                        "JSONL dump (run --cachestats)")
    p.add_argument("--perfetto", metavar="FILE", default=None,
                   help="write a Chrome trace-event JSON (Perfetto / "
                        "chrome://tracing) to FILE")
    p.add_argument("--timeseries", action="store_true",
                   help="print windowed throughput / utilization charts")
    p.add_argument("--timeseries-out", metavar="FILE", default=None,
                   help="write the windowed time series as JSON to FILE")
    p.add_argument("--window-ms", type=_positive(float), default=None,
                   help="time-series window width (default: run length / 60)")
    p.add_argument("--top", type=_non_negative_int, default=0, metavar="K",
                   help="print the K slowest requests with span trees")
    p.add_argument("--critical", action="store_true",
                   help="print the cluster-wide critical-path profile "
                        "(per-phase critical seconds + top critical edges)")
    p.add_argument("--critical-out", metavar="FILE", default=None,
                   help="write the critical-path profile as JSON to FILE")
    p.add_argument("--all-requests", action="store_true",
                   help="include warm-up requests, not just measured ones")
    return p


def _diff_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments analyze diff",
        description="Differential attribution between two runs: a "
                    "phase-by-phase delta report naming the regressed "
                    "(or improved) phase, with a conservation check "
                    "(phase deltas sum to the mean-response delta).  "
                    "Inputs are `analyze --json` summaries or raw trace "
                    "JSONL dumps (sniffed automatically).",
    )
    p.add_argument("base", metavar="BASE",
                   help="baseline attribution JSON or trace JSONL")
    p.add_argument("current", metavar="CURRENT",
                   help="current attribution JSON or trace JSONL")
    p.add_argument("--json", metavar="FILE", default=None, dest="json_out",
                   help="write the diff report as JSON to FILE "
                        "('-' for stdout)")
    return p


def analyze_diff_command(argv) -> int:
    """``analyze diff`` subcommand: explain what changed between runs."""
    from ..obs.diff import diff_attributions, load_attribution
    from ..obs.reports import render_diff_report

    opts = _diff_parser().parse_args(argv)
    try:
        base = load_attribution(opts.base)
        current = load_attribution(opts.current)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"analyze diff: cannot read input: {exc}", file=sys.stderr)
        return 2
    report = diff_attributions(base, current)
    if opts.json_out:
        text = json.dumps(report, indent=2, sort_keys=True, default=float)
        if opts.json_out == "-":
            print(text)
        else:
            with open(opts.json_out, "w", encoding="utf-8") as fp:
                fp.write(text + "\n")
            print(f"diff json         -> {opts.json_out}")
    if opts.json_out != "-":
        print(banner(f"diff: {opts.base} -> {opts.current}"))
        print(render_diff_report(report))
    return 0


def _fleet_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments analyze fleet",
        description="Cross-cell fleet rollup over a sweep's run-ledger "
                    "slice: per-cell attribution with the exact "
                    "conservation check, binding-resource frequency, "
                    "sweep-wide SLO evaluation, and (memory x system x "
                    "trace) throughput heatmaps.",
    )
    p.add_argument("ledger", metavar="LEDGER",
                   help="run-ledger JSONL (from `sweep --ledger`)")
    p.add_argument("--sweep", metavar="RUN_ID", default=None,
                   help="roll up this sweep record (unique run-id prefix; "
                        "default: the latest sweep in the ledger)")
    p.add_argument("--slo", metavar="FILE", default=None,
                   help="judge every cell's p95/p99/availability against "
                        "this SLO spec JSON (window-level burn rates stay "
                        "per-run)")
    p.add_argument("--json", metavar="FILE", default=None, dest="json_out",
                   help="write the fleet report (schema kind 'fleet') as "
                        "JSON to FILE ('-' for stdout)")
    p.add_argument("--perfetto", metavar="FILE", default=None,
                   help="merge every cell's span trace into one "
                        "multi-process Chrome trace JSON (one process "
                        "lane group per cell) at FILE")
    return p


def analyze_fleet_command(argv) -> int:
    """``analyze fleet`` subcommand: cross-cell rollup over a ledger."""
    import os

    from ..obs.fleet import fleet_report
    from ..obs.ledger import load_ledger
    from ..obs.reports import render_fleet_report

    opts = _fleet_parser().parse_args(argv)
    slo_spec = None
    if opts.slo is not None:
        from ..obs.slo import SloSpec

        try:
            slo_spec = SloSpec.load(opts.slo)
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            print(f"cannot load SLO spec {opts.slo}: {exc}", file=sys.stderr)
            return 2
    base_dir = os.path.dirname(os.path.abspath(opts.ledger))
    try:
        records = load_ledger(opts.ledger)
        report = fleet_report(records, sweep_id=opts.sweep, slo=slo_spec,
                              base_dir=base_dir)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"analyze fleet: {exc}", file=sys.stderr)
        return 2
    if opts.json_out:
        text = json.dumps(report, indent=2, sort_keys=True, default=float)
        if opts.json_out == "-":
            print(text)
        else:
            with open(opts.json_out, "w", encoding="utf-8") as fp:
                fp.write(text + "\n")
            print(f"fleet json        -> {opts.json_out}")
    # Write the perfetto artifact before the chatty render so a reader
    # truncating stdout (`... | head`) can't kill the process between
    # artifact writes.
    if opts.perfetto:
        from ..obs.analyze import load_jsonl as load_trace_jsonl
        from ..obs.export import dump_chrome_trace_multi

        merged = []
        for cell in report.get("cells", []):
            if cell.get("status") != "ok":
                continue
            rec = next(
                (r for r in records if r.get("run_id") == cell["run_id"]),
                None,
            )
            raw = ((rec or {}).get("artifacts") or {}).get("trace")
            if not raw:
                continue
            path = raw if os.path.exists(raw) else os.path.join(base_dir, raw)
            if not os.path.exists(path):
                continue
            label = (f"{cell['workload']}/{cell['system']}/"
                     f"{cell['mem_mb_per_node']:g}MB")
            merged.append((label, load_trace_jsonl(path)))
        dump_chrome_trace_multi(merged, opts.perfetto)
        print(f"fleet chrome trace -> {opts.perfetto} "
              f"({len(merged)} cells merged; open in ui.perfetto.dev)")
    if opts.json_out != "-":
        print(banner(f"fleet: {opts.ledger}"))
        print(render_fleet_report(report))
    return 0


def analyze_command(argv) -> int:
    """``analyze`` subcommand: reports over dumped trace/metrics files."""
    from ..obs.analyze import attribute, load_jsonl

    if argv and argv[0] == "diff":
        return analyze_diff_command(argv[1:])
    if argv and argv[0] == "fleet":
        return analyze_fleet_command(argv[1:])
    opts = _analyze_parser().parse_args(argv)
    if opts.trace is None and not opts.cache:
        print("analyze: a TRACE file is required unless --cache is given",
              file=sys.stderr)
        return 2
    try:
        records = load_jsonl(opts.trace) if opts.trace else []
        metrics = None
        if opts.metrics:
            with open(opts.metrics, "r", encoding="utf-8") as fp:
                metrics = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"analyze: cannot read input: {exc}", file=sys.stderr)
        return 2

    if opts.cache:
        from ..obs.cachestats import load_jsonl as load_cache_jsonl
        from ..obs.reports import render_cache_report

        try:
            snap = load_cache_jsonl(opts.cache)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"analyze: cannot read cache dump: {exc}", file=sys.stderr)
            return 2
        print(banner(f"cache behavior: {opts.cache}"))
        print(render_cache_report(snap))
    if opts.trace is None:
        return 0

    measured_only = not opts.all_requests
    want_report = opts.report or not (
        opts.perfetto or opts.timeseries or opts.timeseries_out or opts.top
        or opts.json_out or opts.cache or opts.critical or opts.critical_out
    )

    if opts.json_out:
        from ..obs.analyze import attribution_to_dict

        summary = attribution_to_dict(
            attribute(records, measured_only=measured_only), metrics=metrics
        )
        text = json.dumps(summary, indent=2, sort_keys=True, default=float)
        if opts.json_out == "-":
            print(text)
        else:
            with open(opts.json_out, "w", encoding="utf-8") as fp:
                fp.write(text + "\n")
            print(f"attribution json  -> {opts.json_out}")
    if want_report:
        from ..obs.reports import render_profile_report

        print(banner(f"profile: {opts.trace}"))
        print(render_profile_report(
            attribute(records, measured_only=measured_only), metrics=metrics
        ))
    if opts.top:
        from ..obs.reports import render_top_requests

        print(banner(f"top {opts.top} slowest"))
        print(render_top_requests(
            records, k=opts.top, measured_only=measured_only
        ))
    if opts.critical or opts.critical_out:
        from ..obs.critical import critical_profile

        profile = critical_profile(records, measured_only=measured_only)
        if opts.critical_out:
            with open(opts.critical_out, "w", encoding="utf-8") as fp:
                json.dump(profile, fp, indent=2, sort_keys=True,
                          default=float)
                fp.write("\n")
            print(f"critical profile  -> {opts.critical_out}")
        if opts.critical:
            from ..obs.reports import render_critical_report

            print(banner(f"critical path: {opts.trace}"))
            print(render_critical_report(profile))
    if opts.timeseries or opts.timeseries_out:
        from ..obs.timeseries import build_timeseries, dump_timeseries

        ts = build_timeseries(records, window_ms=opts.window_ms)
        if opts.timeseries_out:
            dump_timeseries(ts, opts.timeseries_out)
            print(f"time series       -> {opts.timeseries_out}")
        if opts.timeseries:
            from ..obs.reports import render_timeseries

            print(banner("time series"))
            print(render_timeseries(ts))
    if opts.perfetto:
        from ..obs.export import dump_chrome_trace

        dump_chrome_trace(records, opts.perfetto)
        print(f"chrome trace      -> {opts.perfetto} "
              f"(open in ui.perfetto.dev or chrome://tracing)")
    return 0


def _configure_logging(args) -> list:
    """Strip ``-v``/``--verbose`` flags and configure the root logger."""
    level = 0
    kept = []
    for arg in args:
        if arg == "--verbose":
            level += 1
        elif arg.startswith("-") and len(arg) > 1 and set(arg[1:]) == {"v"}:
            level += len(arg) - 1
        else:
            kept.append(arg)
    logging.basicConfig(
        level=(logging.WARNING, logging.INFO)[min(level, 1)]
        if level < 2 else logging.DEBUG,
        format="%(levelname)s %(name)s: %(message)s",
    )
    return kept


def main(argv=None) -> int:
    """Render the requested artifacts to stdout; returns an exit code."""
    args = _configure_logging(list(sys.argv[1:] if argv is None else argv))
    if args and args[0] == "run":
        return run_command(args[1:])
    if args and args[0] == "chaos":
        return chaos_command(args[1:])
    if args and args[0] == "analyze":
        return analyze_command(args[1:])
    if args and args[0] == "sweep":
        return sweep_command(args[1:])
    if not args or args == ["list"]:
        print(__doc__)
        print("artifacts:", " ".join(ARTIFACTS))
        print(f"scale={defaults.SCALE:g} requests={defaults.NUM_REQUESTS} "
              f"clients={defaults.NUM_CLIENTS}")
        return 0
    if args == ["all"]:
        args = list(ARTIFACTS)
    unknown = [a for a in args if a not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {' '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {' '.join(ARTIFACTS)}", file=sys.stderr)
        return 2
    for name in args:
        print(banner(name))
        print(ARTIFACTS[name]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
