"""Command-line entry point for the reproduction harness.

Usage::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli table1 table2
    python -m repro.experiments.cli fig3 fig4
    python -m repro.experiments.cli a4 a6
    python -m repro.experiments.cli all          # everything (minutes)

Workload scale is controlled by the usual environment knobs
(``REPRO_SCALE`` / ``REPRO_REQUESTS`` / ``REPRO_CLIENTS`` /
``REPRO_FULL``).
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from . import ablations, defaults, figures, tables
from .report import banner

__all__ = ["ARTIFACTS", "main"]

#: artifact name -> zero-argument renderer.
ARTIFACTS: Dict[str, Callable[[], str]] = {
    "table1": tables.render_table1,
    "table2": tables.render_table2,
    "fig1": figures.render_fig1,
    "fig2": figures.render_fig2,
    "fig3": figures.render_fig3,
    "fig4": figures.render_fig4,
    "fig5": figures.render_fig5,
    "fig6a": figures.render_fig6a,
    "fig6b": figures.render_fig6b,
    "a1": ablations.render_a1,
    "a2": ablations.render_a2,
    "a3": ablations.render_a3,
    "a4": ablations.render_a4,
    "a5": ablations.render_a5,
    "a6": ablations.render_a6,
    "a7": ablations.render_a7,
    "a8": ablations.render_a8,
    "a9": ablations.render_a9,
}


def main(argv=None) -> int:
    """Render the requested artifacts to stdout; returns an exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args == ["list"]:
        print(__doc__)
        print("artifacts:", " ".join(ARTIFACTS))
        print(f"scale={defaults.SCALE:g} requests={defaults.NUM_REQUESTS} "
              f"clients={defaults.NUM_CLIENTS}")
        return 0
    if args == ["all"]:
        args = list(ARTIFACTS)
    unknown = [a for a in args if a not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {' '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {' '.join(ARTIFACTS)}", file=sys.stderr)
        return 2
    for name in args:
        print(banner(name))
        print(ARTIFACTS[name]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
