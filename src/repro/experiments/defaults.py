"""Shared experiment defaults and the scale-down machinery.

A full-size paper point (a 500k-2.5M request trace over a 140-790 MB file
set) is too slow for a pure-Python event simulator to sweep hundreds of
times, so by default every experiment runs a **scaled** workload: file
count and request count shrink by ``SCALE`` while per-file sizes, the
popularity shape and — crucially — the *memory-to-working-set ratio* stay
fixed (per-node memory shrinks by the same factor).  The paper's x-axis
"4-512 MB per node" therefore maps onto the same cache-pressure regimes.

Environment overrides::

    REPRO_SCALE=0.1        # workload scale factor (default 0.02)
    REPRO_REQUESTS=50000   # trace length (default 10000)
    REPRO_CLIENTS=256      # closed-loop client population (default 96)
    REPRO_FULL=1           # scale 1.0 and full trace lengths (slow!)
"""

from __future__ import annotations

import os

__all__ = [
    "SCALE",
    "NUM_REQUESTS",
    "NUM_CLIENTS",
    "PAPER_MEMORY_MB",
    "BENCH_MEMORY_MB",
    "bench_params",
    "memory_points_mb",
    "workload",
]

#: The paper's per-node memory x-axis (MB), Figure 2.
PAPER_MEMORY_MB: list[float] = [4, 8, 16, 32, 64, 128, 256, 512]

#: The trimmed axis the benchmark harness and the ``sweep`` CLI share
#: (every other point of the paper's 8-point 4-512 MB axis, starting at
#: the 4 MB endpoint).  Both sides must use the same list — it feeds the
#: params digest that the regression gate refuses to compare across, so
#: it cannot change without re-seeding the baselines.
BENCH_MEMORY_MB: list[float] = [4, 16, 64, 256]


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


if os.environ.get("REPRO_FULL"):
    SCALE: float = 1.0
    NUM_REQUESTS: int = 0  # 0 = the spec's full request count
else:
    SCALE = _env_float("REPRO_SCALE", 0.02)
    NUM_REQUESTS = _env_int("REPRO_REQUESTS", 10_000)

NUM_CLIENTS: int = _env_int("REPRO_CLIENTS", 96)


def memory_points_mb(points=None) -> list[float]:
    """The paper's memory axis, scaled to the active workload scale."""
    return [m * SCALE for m in (points or PAPER_MEMORY_MB)]


def bench_params() -> dict:
    """The workload knobs that shape a benchmark run.

    Recorded in every trajectory record (see :mod:`repro.bench.schema`)
    so comparisons refuse mismatched workloads; the pytest benchmark
    harness and the ``sweep`` CLI both record exactly this dict.
    """
    return {
        "scale": SCALE,
        "requests": NUM_REQUESTS,
        "clients": NUM_CLIENTS,
        "memory_mb": list(BENCH_MEMORY_MB),
    }


def workload(name: str):
    """Load trace ``name`` at the active scale."""
    from ..traces.datasets import scaled

    return scaled(name, SCALE, num_requests=NUM_REQUESTS)
