"""Reproduction of every figure in the paper's evaluation section.

Each ``figN`` function runs the simulations and returns structured data;
the matching ``render_figN`` formats it as the rows/series the paper
plots.  Figures index into DESIGN.md §3; paper-vs-measured is recorded in
EXPERIMENTS.md.

All experiments honour the scale-down machinery in
:mod:`repro.experiments.defaults` (``REPRO_SCALE`` / ``REPRO_FULL``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..traces.analysis import popularity_cdf, theoretical_max_hit_rate
from ..traces.datasets import TRACE_NAMES
from . import defaults
from .charts import line_chart
from .report import format_table
from .sweep import memory_sweep, node_sweep

__all__ = [
    "fig1", "render_fig1",
    "fig2", "fig2_cells", "fig2_collect", "render_fig2",
    "fig3", "render_fig3",
    "fig4", "render_fig4",
    "fig5", "render_fig5",
    "fig6a", "render_fig6a",
    "fig6b", "render_fig6b",
    "fig_ring", "render_fig_ring",
    "CC_VARIANTS", "ALL_SYSTEMS",
]

#: The middleware curves of Figure 2, paper order.
CC_VARIANTS = ["cc-basic", "cc-sched", "cc-kmc"]
#: All four curves of Figure 2.
ALL_SYSTEMS = ["press"] + CC_VARIANTS


# ---------------------------------------------------------------------------
# Figure 1: trace popularity/size CDF
# ---------------------------------------------------------------------------
def fig1(trace_name: str = "rutgers", points: int = 20) -> dict[str, list]:
    """Figure 1: cumulative request fraction and cumulative file-set size
    vs files sorted by request frequency (Rutgers in the paper).

    Returns ``points`` samples along the (normalized) file axis plus the
    paper's anchor: the MB needed to cover 99% of requests.
    """
    trace = defaults.workload(trace_name)
    cum_req, cum_mb = popularity_cdf(trace)
    n = len(cum_req)
    idxs = np.unique(
        np.clip((np.linspace(0.0, 1.0, points) * (n - 1)).astype(int), 0, n - 1)
    )
    from ..traces.analysis import bytes_for_request_fraction

    return {
        "trace": trace_name,
        "file_fraction": [float(i / (n - 1) if n > 1 else 1.0) for i in idxs],
        "cum_request_fraction": [float(cum_req[i]) for i in idxs],
        "cum_size_mb": [float(cum_mb[i]) for i in idxs],
        "file_set_mb": trace.file_set_mb,
        "mb_for_99pct": bytes_for_request_fraction(trace, 0.99),
    }


def render_fig1(data: dict | None = None) -> str:
    """Print-ready Figure 1."""
    data = data or fig1()
    rows = [
        [ff, cr, mb]
        for ff, cr, mb in zip(
            data["file_fraction"],
            data["cum_request_fraction"],
            data["cum_size_mb"],
        )
    ]
    table = format_table(
        ["Files (frac, by popularity)", "Cum. requests (frac)", "Cum. size (MB)"],
        rows,
        title=f"Figure 1: {data['trace']} trace CDF",
        ndigits=3,
    )
    anchor = (
        f"\n99% of requests covered by {data['mb_for_99pct']:.1f} MB "
        f"of {data['file_set_mb']:.1f} MB total "
        f"(paper, full scale: 494 of 789 MB)"
    )
    return table + anchor


# ---------------------------------------------------------------------------
# Figure 2: throughput, 8 nodes, all traces, all systems
# ---------------------------------------------------------------------------
def fig2_cells(
    trace_names: Sequence[str] | None = None,
    num_nodes: int = 8,
    memories_mb: Sequence[float] | None = None,
) -> tuple[list[str], list[float], list]:
    """The flat Figure-2 cell matrix: ``(names, memories, cells)``.

    One flat cell list over all panels so a parallel run keeps every
    worker busy across trace boundaries, not just within one panel.
    Split out from :func:`fig2` so callers that need per-cell telemetry
    (``sweep --ledger``) can drive the observed runner over the *same*
    cells and regroup with :func:`fig2_collect`.  Memory points pass
    through unconverted (int stays int) so BENCH params digests remain
    byte-stable against the committed baselines.
    """
    from .runner import ExperimentConfig

    names = list(trace_names or TRACE_NAMES)
    memories = list(memories_mb if memories_mb is not None
                    else defaults.memory_points_mb())
    cells = [
        ExperimentConfig(
            system=system,
            trace=defaults.workload(name),
            num_nodes=num_nodes,
            mem_mb_per_node=mem,
            num_clients=defaults.NUM_CLIENTS,
        )
        for name in names
        for system in ALL_SYSTEMS
        for mem in memories
    ]
    return names, memories, cells


def fig2_collect(
    names: Sequence[str],
    memories: Sequence[float],
    results: Sequence,
) -> dict[str, dict]:
    """Regroup a flat :func:`fig2_cells` result list into fig2 panels."""
    panels = {}
    n = len(memories)
    per_trace = len(ALL_SYSTEMS) * n
    for t, name in enumerate(names):
        block = results[t * per_trace:(t + 1) * per_trace]
        panels[name] = {
            "memories_mb": list(memories),
            "throughput_rps": {
                sys_name: [
                    r.throughput_rps for r in block[s * n:(s + 1) * n]
                ]
                for s, sys_name in enumerate(ALL_SYSTEMS)
            },
        }
    return panels


def fig2(
    trace_names: Sequence[str] | None = None,
    num_nodes: int = 8,
    memories_mb: Sequence[float] | None = None,
    workers: int | None = None,
) -> dict[str, dict]:
    """Figure 2 (a-d): throughput of PRESS and the three middleware
    variants vs per-node memory, one panel per trace.

    ``workers`` shards the full (trace × system × memory) cell matrix
    across processes (default: the ``REPRO_WORKERS`` knob); the merged
    panels are byte-identical to a serial run.
    """
    from .parallel import run_cells

    names, memories, cells = fig2_cells(trace_names, num_nodes, memories_mb)
    results = run_cells(cells, workers=workers)
    return fig2_collect(names, memories, results)


def render_fig2(data: dict | None = None, **kw) -> str:
    """Print-ready Figure 2."""
    data = data or fig2(**kw)
    parts = []
    for name, panel in data.items():
        rows = []
        for i, mem in enumerate(panel["memories_mb"]):
            rows.append(
                [f"{mem:g}"]
                + [panel["throughput_rps"][s][i] for s in ALL_SYSTEMS]
            )
        parts.append(
            format_table(
                ["Mem/node (MB)"] + [s for s in ALL_SYSTEMS],
                rows,
                title=f"Figure 2: throughput (req/s), {name}, 8 nodes",
                ndigits=0,
            )
        )
        parts.append(
            line_chart(
                panel["memories_mb"],
                {s: panel["throughput_rps"][s] for s in ALL_SYSTEMS},
                y_label="req/s",
                x_label="MB/node",
            )
        )
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Figure 3: CC throughput normalized to PRESS
# ---------------------------------------------------------------------------
#: The paper's two representative panels: (trace, cluster size).
FIG3_PANELS = [("calgary", 4), ("rutgers", 8)]


def fig3(
    panels: Sequence | None = None,
    memories_mb: Sequence[float] | None = None,
) -> dict[str, dict]:
    """Figure 3: middleware throughput normalized against PRESS.

    The headline result: the KMC variant achieves >80% of PRESS almost
    everywhere and >90% or parity in most cases.
    """
    out = {}
    for name, nodes in panels or FIG3_PANELS:
        trace = defaults.workload(name)
        sweep = memory_sweep(
            trace, ALL_SYSTEMS, memories_mb=memories_mb, num_nodes=nodes
        )
        press = [r.throughput_rps for r in sweep["press"]]
        mems = [r.config.mem_mb_per_node for r in sweep["press"]]
        out[f"{name}-{nodes}nodes"] = {
            "memories_mb": mems,
            "normalized": {
                s: [
                    (r.throughput_rps / p if p > 0 else 0.0)
                    for r, p in zip(sweep[s], press)
                ]
                for s in CC_VARIANTS
            },
        }
    return out


def render_fig3(data: dict | None = None) -> str:
    """Print-ready Figure 3."""
    data = data or fig3()
    parts = []
    for panel_name, panel in data.items():
        rows = [
            [mem] + [panel["normalized"][s][i] for s in CC_VARIANTS]
            for i, mem in enumerate(panel["memories_mb"])
        ]
        parts.append(
            format_table(
                ["Mem/node (MB)"] + CC_VARIANTS,
                rows,
                title=f"Figure 3: throughput normalized to PRESS, {panel_name}",
            )
        )
        parts.append(
            line_chart(
                panel["memories_mb"],
                {s: panel["normalized"][s] for s in CC_VARIANTS},
                y_label="x PRESS",
                x_label="MB/node",
            )
        )
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Figure 4: hit rates (Rutgers, 8 nodes)
# ---------------------------------------------------------------------------
def fig4(
    trace_name: str = "rutgers",
    num_nodes: int = 8,
    memories_mb: Sequence[float] | None = None,
) -> dict:
    """Figure 4: total hit rate of CC-Basic, CC-KMC and PRESS, plus the
    local/remote split and the theoretical maximum."""
    trace = defaults.workload(trace_name)
    systems = ["cc-basic", "cc-kmc", "press"]
    sweep = memory_sweep(
        trace, systems, memories_mb=memories_mb, num_nodes=num_nodes
    )
    mems = [r.config.mem_mb_per_node for r in sweep["press"]]
    return {
        "trace": trace_name,
        "memories_mb": mems,
        "hit_rates": {
            s: {
                "total": [r.hit_rates["total"] for r in results],
                "local": [r.hit_rates["local"] for r in results],
                "remote": [r.hit_rates["remote"] for r in results],
            }
            for s, results in sweep.items()
        },
        "theoretical_max": [
            theoretical_max_hit_rate(trace, mem * num_nodes) for mem in mems
        ],
    }


def render_fig4(data: dict | None = None) -> str:
    """Print-ready Figure 4."""
    data = data or fig4()
    rows = []
    hr = data["hit_rates"]
    for i, mem in enumerate(data["memories_mb"]):
        rows.append(
            [
                mem,
                hr["cc-basic"]["total"][i],
                hr["cc-kmc"]["total"][i],
                hr["cc-kmc"]["local"][i],
                hr["cc-kmc"]["remote"][i],
                hr["press"]["total"][i],
                data["theoretical_max"][i],
            ]
        )
    table = format_table(
        ["Mem/node (MB)", "cc-basic", "cc-kmc", "(local)", "(remote)",
         "press", "max possible"],
        rows,
        title=f"Figure 4: hit rates, {data['trace']}, 8 nodes",
    )
    chart = line_chart(
        data["memories_mb"],
        {
            "cc-basic": hr["cc-basic"]["total"],
            "cc-kmc": hr["cc-kmc"]["total"],
            "press": hr["press"]["total"],
            "max": data["theoretical_max"],
        },
        y_label="hit rate",
        x_label="MB/node",
    )
    return table + "\n\n" + chart


# ---------------------------------------------------------------------------
# Figure 5: mean response time normalized to PRESS
# ---------------------------------------------------------------------------
def fig5(
    panels: Sequence | None = None,
    memories_mb: Sequence[float] | None = None,
) -> dict[str, dict]:
    """Figure 5: middleware mean response time normalized against PRESS
    (the paper reports CC 5-10% worse; absolute times 2-3 ms wall)."""
    out = {}
    for name, nodes in panels or FIG3_PANELS:
        trace = defaults.workload(name)
        sweep = memory_sweep(
            trace, ALL_SYSTEMS, memories_mb=memories_mb, num_nodes=nodes
        )
        press = [r.mean_response_ms for r in sweep["press"]]
        mems = [r.config.mem_mb_per_node for r in sweep["press"]]
        out[f"{name}-{nodes}nodes"] = {
            "memories_mb": mems,
            "normalized": {
                s: [
                    (r.mean_response_ms / p if p > 0 else 0.0)
                    for r, p in zip(sweep[s], press)
                ]
                for s in CC_VARIANTS
            },
            "press_ms": press,
        }
    return out


def render_fig5(data: dict | None = None) -> str:
    """Print-ready Figure 5."""
    data = data or fig5()
    parts = []
    for panel_name, panel in data.items():
        rows = [
            [mem]
            + [panel["normalized"][s][i] for s in CC_VARIANTS]
            + [panel["press_ms"][i]]
            for i, mem in enumerate(panel["memories_mb"])
        ]
        parts.append(
            format_table(
                ["Mem/node (MB)"] + CC_VARIANTS + ["press (ms)"],
                rows,
                title=(
                    "Figure 5: mean response time normalized to PRESS, "
                    f"{panel_name}"
                ),
            )
        )
        parts.append(
            line_chart(
                panel["memories_mb"],
                {s: panel["normalized"][s] for s in CC_VARIANTS},
                y_label="x PRESS",
                x_label="MB/node",
            )
        )
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Figure 6a: resource utilization (CC-KMC, Rutgers, 8 nodes)
# ---------------------------------------------------------------------------
def fig6a(
    trace_name: str = "rutgers",
    num_nodes: int = 8,
    memories_mb: Sequence[float] | None = None,
) -> dict:
    """Figure 6a: CC-KMC's disk/CPU/NIC utilization vs per-node memory."""
    trace = defaults.workload(trace_name)
    sweep = memory_sweep(
        trace, ["cc-kmc"], memories_mb=memories_mb, num_nodes=num_nodes
    )
    results = sweep["cc-kmc"]
    return {
        "trace": trace_name,
        "memories_mb": [r.config.mem_mb_per_node for r in results],
        "utilization": {
            res: [r.workload.utilization[res] for r in results]
            for res in ("disk", "cpu", "nic")
        },
        "max_disk": [r.workload.max_utilization["disk"] for r in results],
    }


def render_fig6a(data: dict | None = None) -> str:
    """Print-ready Figure 6a."""
    data = data or fig6a()
    rows = [
        [
            mem,
            data["utilization"]["disk"][i],
            data["max_disk"][i],
            data["utilization"]["cpu"][i],
            data["utilization"]["nic"][i],
        ]
        for i, mem in enumerate(data["memories_mb"])
    ]
    table = format_table(
        ["Mem/node (MB)", "disk", "disk (max node)", "cpu", "nic"],
        rows,
        title=(
            f"Figure 6a: CC-KMC resource utilization, {data['trace']}, 8 nodes"
        ),
    )
    chart = line_chart(
        data["memories_mb"],
        dict(data["utilization"]),
        y_label="utilization",
        x_label="MB/node",
    )
    # Binding-resource narrative: which resource saturates first at each
    # memory point (the paper's argument for why more memory helps —
    # the disk binds at small memory, then the bottleneck migrates).
    util = data["utilization"]
    binding = [
        max(util, key=lambda res: util[res][i])
        for i in range(len(data["memories_mb"]))
    ]
    narrative = [
        "binding resource by memory point: "
        + ", ".join(
            f"{mem:g}MB={res}"
            for mem, res in zip(data["memories_mb"], binding)
        )
    ]
    small_mem = binding[0]
    narrative.append(
        f"at {data['memories_mb'][0]:g} MB/node the {small_mem} is the "
        f"binding resource ({util[small_mem][0]:.0%} utilized, "
        f"{data['max_disk'][0]:.0%} on the hottest node's disk)"
        + (
            f"; by {data['memories_mb'][-1]:g} MB/node the bottleneck "
            f"shifts to the {binding[-1]}"
            if binding[-1] != small_mem
            else ""
        )
    )
    return table + "\n\n" + chart + "\n\n" + "\n".join(narrative)


# ---------------------------------------------------------------------------
# Figure 6b: scalability (CC-KMC, Rutgers, 32 MB/node)
# ---------------------------------------------------------------------------
def fig6b(
    trace_name: str = "rutgers",
    node_counts: Sequence[int] = (4, 8, 16, 32),
    mem_mb_per_node: float | None = None,
) -> dict:
    """Figure 6b: CC-KMC throughput vs cluster size at 32 MB/node
    (scaled).  The paper reports near-linear scaling to 32 nodes."""
    trace = defaults.workload(trace_name)
    mem = (
        mem_mb_per_node
        if mem_mb_per_node is not None
        else 32.0 * defaults.SCALE
    )
    results = node_sweep(trace, "cc-kmc", node_counts, mem)
    return {
        "trace": trace_name,
        "mem_mb_per_node": mem,
        "node_counts": list(node_counts),
        "throughput_rps": [r.throughput_rps for r in results],
        "hit_rates": [r.hit_rates["total"] for r in results],
    }


def render_fig6b(data: dict | None = None) -> str:
    """Print-ready Figure 6b."""
    data = data or fig6b()
    base = data["throughput_rps"][0] or 1.0
    base_nodes = data["node_counts"][0]
    rows = [
        [
            n,
            data["throughput_rps"][i],
            data["throughput_rps"][i] / base * base_nodes,
            data["hit_rates"][i],
        ]
        for i, n in enumerate(data["node_counts"])
    ]
    table = format_table(
        ["Nodes", "Throughput (req/s)", "Speedup x base nodes", "Hit rate"],
        rows,
        title=(
            f"Figure 6b: CC-KMC scalability, {data['trace']}, "
            f"{data['mem_mb_per_node']:g} MB/node"
        ),
    )
    chart = line_chart(
        data["node_counts"],
        {"throughput": data["throughput_rps"]},
        y_label="req/s",
        x_label="nodes",
    )
    return table + "\n\n" + chart


# ---------------------------------------------------------------------------
# Figure R: partitioned-directory miss-ratio convergence
# ---------------------------------------------------------------------------
def fig_ring(
    node_counts: Sequence[int] = (16, 64, 256),
    capacities_per_node: Sequence[int] = (4, 16, 64),
    num_files: int = 60_000,
    num_requests: int = 150_000,
    theta: float = 0.8,
    vnodes: int = 64,
    seed: int = 0,
) -> dict:
    """Companion figure: miss-ratio convergence of the hash-partitioned
    LRU toward a single LRU of the aggregate capacity.

    The PartitionedDirectory homes each block on one ring node; the
    asymptotic-LRU result (PAPERS.md) says this partitioning costs
    nothing in miss ratio as per-node capacity grows, at every cluster
    size.  One panel per node count: partitioned vs single-LRU miss
    ratio over the same seeded Zipf stream, swept over per-node
    capacity.  Analytic (timing-free) — the protocol-level price of the
    partitioned directory (lookup hops, staleness) is measured by the
    golden/ablation machinery instead.
    """
    from ..analytic.ring import convergence_point, zipf_requests

    requests = zipf_requests(num_files, num_requests, theta=theta, seed=seed)
    panels = {}
    for nodes in node_counts:
        points = [
            convergence_point(requests, nodes, cap, vnodes=vnodes, seed=seed)
            for cap in capacities_per_node
        ]
        panels[str(nodes)] = {
            "capacities_per_node": [int(c) for c in capacities_per_node],
            "partitioned_miss": [p["partitioned_miss"] for p in points],
            "single_miss": [p["single_miss"] for p in points],
            "gap": [p["gap"] for p in points],
        }
    return {
        "num_files": num_files,
        "num_requests": num_requests,
        "theta": theta,
        "vnodes": vnodes,
        "seed": seed,
        "node_counts": [int(n) for n in node_counts],
        "panels": panels,
    }


def render_fig_ring(data: dict | None = None) -> str:
    """Print-ready Figure R."""
    data = data or fig_ring()
    parts = []
    for nodes in data["node_counts"]:
        panel = data["panels"][str(nodes)]
        rows = [
            [
                cap,
                panel["partitioned_miss"][i],
                panel["single_miss"][i],
                panel["gap"][i],
            ]
            for i, cap in enumerate(panel["capacities_per_node"])
        ]
        parts.append(
            format_table(
                ["Blocks/node", "Partitioned miss", "Single-LRU miss", "Gap"],
                rows,
                title=(
                    f"Figure R ({nodes} nodes): partitioned vs aggregate "
                    f"LRU, Zipf({data['theta']:g})"
                ),
                ndigits=4,
            )
        )
    largest = str(data["node_counts"][-1])
    panel = data["panels"][largest]
    parts.append(
        line_chart(
            panel["capacities_per_node"],
            {
                "partitioned": panel["partitioned_miss"],
                "single": panel["single_miss"],
            },
            y_label="miss ratio",
            x_label="blocks/node",
        )
    )
    parts.append(
        f"at {largest} nodes the partitioned/single gap falls "
        f"{panel['gap'][0]:.4f} -> {panel['gap'][-1]:.4f} as per-node "
        "capacity grows: hash-partitioning the cache costs ~nothing "
        "asymptotically"
    )
    return "\n\n".join(parts)
