"""Sharded sweep execution: (trace × system × seed) cells across cores.

A *cell* is one :class:`~repro.experiments.runner.ExperimentConfig` —
the unit every figure/table sweep already decomposes into.  Cells are
embarrassingly parallel by construction: each one builds its own
:class:`~repro.sim.Simulator`, derives every random stream from its own
``(seed, key)`` pair (:mod:`repro.sim.rng`), and touches no module
state, so a worker process needs nothing beyond the pickled config.

The determinism argument for the parallel runner, in full:

1. **Worker isolation** — ``run_experiment`` reads only its config; a
   fresh interpreter (spawn) and a forked one produce identical results
   because no ambient state (wall clock, global RNG, environment
   mutation) feeds the simulation (simlint SL02 enforces this).
2. **Seeded cells** — every stochastic input is derived from the cell's
   own seed, so results are a pure function of the cell.
3. **Ordered merge** — completion order is nondeterministic under
   ``imap_unordered``, but every outcome carries its submission index
   and the merge reassembles by index; the merged list is byte-identical
   to a serial loop over the same cells.

Hence ``run_cells(cells, workers=4)`` == ``run_cells(cells, workers=1)``
element-for-element, which ``tests/test_sweep_parallel.py`` pins all the
way down to BENCH-record and golden-digest bytes.

On top of the runner sits the *fleet telemetry* layer (all opt-in, all
passive — wall-clock readings land only in outcome/progress records,
never in simulation state):

* :func:`run_cells_observed` returns, alongside the ordered results, one
  :class:`CellOutcome` per cell: wall-clock, worker identity, exit
  status, a metrics summary (throughput, response percentiles, binding
  resource) and — when an artifacts directory is given — per-cell
  attribution/trace artifact paths for the run ledger
  (:mod:`repro.obs.ledger`) and fleet rollups (:mod:`repro.obs.fleet`).
* :class:`SweepProgress` streams heartbeat events (cells done,
  cells/sec, ETA, stragglers, failures) to a JSONL file as outcomes
  arrive in *completion* order — live visibility without touching the
  merged results.
* A worker exception no longer surfaces as a bare multiprocessing
  traceback: the failing cell's system/trace/params digest is captured
  in its outcome and either collected (``failures=[]``) or raised as one
  :class:`SweepCellError` naming every failed cell.
"""

from __future__ import annotations

import json
import logging
import math
import multiprocessing
import os
import time
import traceback as traceback_mod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable, IO, Optional

from .runner import ExperimentConfig, ExperimentResult, run_experiment

__all__ = [
    "default_workers",
    "run_cells",
    "run_cells_observed",
    "cell_info",
    "CellInfo",
    "CellOutcome",
    "SweepCellError",
    "SweepProgress",
]

logger = logging.getLogger(__name__)

#: Environment knob: default worker count for sweeps (0/unset = serial).
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get(WORKERS_ENV)
    if not raw:
        return 1
    value = int(raw)
    if value < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
    return value


def _run_cell(cfg: ExperimentConfig) -> ExperimentResult:
    """Worker entry point: simulate one cell, fully isolated."""
    return run_experiment(cfg)


# ---------------------------------------------------------------------------
# cell identity & outcomes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CellInfo:
    """Stable identity of one sweep cell (for ledgers and error reports)."""

    index: int
    system: str
    workload: str
    num_nodes: int
    mem_mb_per_node: float
    num_clients: int
    seed: int
    #: Digest over the cell coordinates (same construction as BENCH
    #: records), so a ledger row names *which* point ran.
    params_digest: str

    def coords(self) -> str:
        """Human-readable cell coordinates."""
        return (f"{self.system}/{self.workload}/"
                f"{self.mem_mb_per_node:g}MB/seed{self.seed}")


def cell_info(index: int, cfg: ExperimentConfig) -> CellInfo:
    """Build the ledger-facing identity of cell ``index``."""
    from ..bench.schema import params_digest

    coords = {
        "system": cfg.system_name(),
        "workload": cfg.trace.spec.name,
        "num_nodes": cfg.num_nodes,
        "mem_mb_per_node": cfg.mem_mb_per_node,
        "num_clients": cfg.num_clients,
        "seed": cfg.seed,
    }
    return CellInfo(
        index=index,
        system=cfg.system_name(),
        workload=cfg.trace.spec.name,
        num_nodes=cfg.num_nodes,
        mem_mb_per_node=cfg.mem_mb_per_node,
        num_clients=cfg.num_clients,
        seed=cfg.seed,
        params_digest=params_digest(coords),
    )


@dataclass
class CellOutcome:
    """Everything the fleet layer knows about one executed cell."""

    info: CellInfo
    ok: bool
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: Wall-clock seconds the cell took (worker-measured, ledger-only).
    wall_s: float = 0.0
    worker: str = "main"
    #: Artifact name -> path written by the worker (attr/trace).
    artifacts: dict[str, str] = field(default_factory=dict)
    #: Ledger-ready metric summary (empty for failed cells).
    summary: dict[str, Any] = field(default_factory=dict)


class SweepCellError(RuntimeError):
    """One or more sweep cells failed; names each failing cell."""

    def __init__(self, outcomes: Sequence[CellOutcome]) -> None:
        self.outcomes = list(outcomes)
        lines = [f"{len(self.outcomes)} sweep cell(s) failed:"]
        for out in self.outcomes:
            lines.append(
                f"  cell {out.info.index} [{out.info.coords()}] "
                f"params {out.info.params_digest}: {out.error}"
            )
        super().__init__("\n".join(lines))


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_vals:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return float(sorted_vals[min(rank, len(sorted_vals)) - 1])


@dataclass(frozen=True)
class _CellJob:
    """Pickled unit of work shipped to a pool worker."""

    index: int
    cfg: ExperimentConfig
    artifacts_dir: Optional[str] = None
    profile: bool = False


def _cell_summary(result: ExperimentResult, obs: Any) -> dict[str, Any]:
    """Ledger-facing metric summary of one finished cell."""
    summary: dict[str, Any] = {
        "throughput_rps": result.throughput_rps,
        "mean_response_ms": result.mean_response_ms,
        "hit_rate_total": result.hit_rates.get("total", 0.0),
    }
    if obs is None:
        return summary
    from ..obs.analyze import binding_resource, build_trees, request_roots

    roots, _ = build_trees(obs.tracer.records)
    durs = sorted(r.dur for r in request_roots(roots, measured_only=True))
    summary["requests_measured"] = len(durs)
    summary["p95_ms"] = _percentile(durs, 0.95)
    summary["p99_ms"] = _percentile(durs, 0.99)
    binding = binding_resource(obs.registry.snapshot())
    summary["binding_resource"] = binding["resource"] if binding else None
    return summary


def _run_cell_job(job: _CellJob) -> CellOutcome:
    """Worker entry point for observed sweeps.  Never raises: failures
    come back as ``ok=False`` outcomes carrying the cell's identity."""
    info = cell_info(job.index, job.cfg)
    worker = multiprocessing.current_process().name
    t0 = time.perf_counter()  # simlint: disable=SL02 -- per-cell wall-clock is ledger telemetry, never sim state
    try:
        obs = None
        if job.profile:
            from ..obs import Observability

            obs = Observability(profile=True)
        result = run_experiment(job.cfg, obs=obs)
        wall_s = time.perf_counter() - t0  # simlint: disable=SL02 -- per-cell wall-clock is ledger telemetry, never sim state
        artifacts: dict[str, str] = {}
        if job.artifacts_dir is not None and obs is not None:
            os.makedirs(job.artifacts_dir, exist_ok=True)
            stem = os.path.join(job.artifacts_dir, f"cell-{job.index:04d}")
            from ..obs.analyze import attribute, attribution_to_dict

            attr = attribute(obs.tracer.records, measured_only=True)
            report = attribution_to_dict(attr, obs.registry.snapshot())
            with open(stem + "-attr.json", "w", encoding="utf-8") as fp:
                json.dump(report, fp, indent=2, sort_keys=True, default=float)
                fp.write("\n")
            obs.tracer.dump_jsonl(stem + "-trace.jsonl")
            artifacts = {
                "attribution": stem + "-attr.json",
                "trace": stem + "-trace.jsonl",
            }
        return CellOutcome(
            info=info, ok=True, result=result, wall_s=wall_s, worker=worker,
            artifacts=artifacts, summary=_cell_summary(result, obs),
        )
    except Exception as exc:  # noqa: BLE001 - worker boundary, reported upward
        wall_s = time.perf_counter() - t0  # simlint: disable=SL02 -- per-cell wall-clock is ledger telemetry, never sim state
        return CellOutcome(
            info=info, ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_mod.format_exc(),
            wall_s=wall_s, worker=worker,
        )


# ---------------------------------------------------------------------------
# live progress telemetry
# ---------------------------------------------------------------------------
class SweepProgress:
    """Streams sweep heartbeat events to a JSONL file (and optionally a
    terminal) as cells complete.

    Events are emitted in *completion* order — that is the point: live
    visibility into a sharded sweep without perturbing the merged
    results.  ``clock`` is injectable (monotonic seconds) so tests pin
    the event stream byte-for-byte.  A cell whose wall-clock exceeds
    ``straggler_factor`` × the median is flagged a straggler in the
    ``end`` event and the summary.
    """

    def __init__(
        self,
        total: int,
        path: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        straggler_factor: float = 3.0,
        stream: Optional[IO[str]] = None,
    ) -> None:
        if total < 0:
            raise ValueError("total must be >= 0")
        if straggler_factor <= 1.0:
            raise ValueError("straggler_factor must be > 1")
        self.total = total
        self.path = path
        self.straggler_factor = straggler_factor
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic  # simlint: disable=SL02 -- progress heartbeats are operator telemetry, never sim state
        )
        self._stream = stream
        self._fp: Optional[IO[str]] = None
        self._t0 = 0.0
        self.done = 0
        self.failed: list[CellOutcome] = []
        self._walls: list[tuple[float, CellInfo]] = []
        self._workers: dict[str, int] = {}

    # -- event plumbing -----------------------------------------------------
    def _emit(self, event: dict[str, Any]) -> None:
        if self.path is not None:
            if self._fp is None:
                self._fp = open(self.path, "w", encoding="utf-8")
            self._fp.write(
                json.dumps(event, sort_keys=True, default=float) + "\n"
            )
            self._fp.flush()

    def _rate(self, elapsed: float) -> float:
        return self.done / elapsed if elapsed > 0 else 0.0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Mark the sweep started; emits the ``start`` event."""
        self._t0 = self._clock()
        self._emit({"event": "start", "total": self.total})
        if self._stream is not None:
            print(f"sweep: 0/{self.total} cells", file=self._stream)

    def cell_done(self, outcome: CellOutcome) -> None:
        """Record one completed cell; emits a ``cell`` heartbeat."""
        self.done += 1
        if not outcome.ok:
            self.failed.append(outcome)
        self._walls.append((outcome.wall_s, outcome.info))
        self._workers[outcome.worker] = (
            self._workers.get(outcome.worker, 0) + 1
        )
        elapsed = self._clock() - self._t0
        rate = self._rate(elapsed)
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else 0.0
        self._emit({
            "event": "cell",
            "index": outcome.info.index,
            "system": outcome.info.system,
            "workload": outcome.info.workload,
            "mem_mb_per_node": outcome.info.mem_mb_per_node,
            "status": "ok" if outcome.ok else "failed",
            "worker": outcome.worker,
            "wall_s": round(outcome.wall_s, 6),
            "done": self.done,
            "total": self.total,
            "elapsed_s": round(elapsed, 6),
            "cells_per_s": round(rate, 6),
            "eta_s": round(eta, 6),
        })
        if self._stream is not None:
            status = "" if outcome.ok else "  FAILED"
            print(
                f"sweep: {self.done}/{self.total} cells "
                f"({rate:.2f}/s, eta {eta:.0f}s) "
                f"[{outcome.info.coords()}]{status}",
                file=self._stream,
            )

    def stragglers(self) -> list[dict[str, Any]]:
        """Cells whose wall-clock exceeded factor × median (needs >= 2)."""
        if len(self._walls) < 2:
            return []
        walls = sorted(w for w, _info in self._walls)
        median = walls[len(walls) // 2]
        if median <= 0:
            return []
        return [
            {
                "index": info.index,
                "cell": info.coords(),
                "wall_s": round(wall, 6),
                "x_median": round(wall / median, 3),
            }
            for wall, info in sorted(self._walls,
                                     key=lambda wi: (wi[0], wi[1].index))
            if wall > self.straggler_factor * median
        ]

    def summary(self) -> dict[str, Any]:
        """Ledger/report-ready rollup of the whole sweep."""
        elapsed = (self._clock() - self._t0) if self.done else 0.0
        return {
            "total": self.total,
            "done": self.done,
            "failed": len(self.failed),
            "elapsed_s": round(elapsed, 6),
            "cells_per_s": round(self._rate(elapsed), 6),
            "stragglers": self.stragglers(),
            "workers": dict(sorted(self._workers.items())),
        }

    def finish(self) -> dict[str, Any]:
        """Emit the ``end`` event; returns the summary."""
        summary = self.summary()
        self._emit(dict(summary, event="end"))
        if self._fp is not None:
            self._fp.close()
            self._fp = None
        if self._stream is not None:
            print(
                f"sweep: done — {summary['done']}/{summary['total']} cells, "
                f"{summary['failed']} failed, {summary['elapsed_s']:.1f}s",
                file=self._stream,
            )
        return summary


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------
def _pool_context() -> Any:
    # fork (where available) skips per-worker reimport of the package;
    # spawn is the portable fallback.  Results are identical under
    # either start method — workers only consume their pickled cell.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_cells_observed(
    cells: Sequence[ExperimentConfig],
    workers: Optional[int] = None,
    *,
    progress: Optional[SweepProgress] = None,
    artifacts_dir: Optional[str] = None,
    profile: bool = False,
    failures: Optional[list[CellOutcome]] = None,
) -> tuple[list[Optional[ExperimentResult]], list[CellOutcome]]:
    """Run every cell with fleet telemetry; returns ``(results, outcomes)``.

    ``results`` is in cell order and identical to :func:`run_cells` —
    telemetry is passive.  ``outcomes`` (also cell order) carries
    per-cell wall-clock, worker identity, status, metric summaries and
    artifact paths.  ``profile=True`` runs each cell under
    ``Observability(profile=True)`` (verified passive: simulated results
    are unchanged) so summaries include response percentiles and the
    binding resource; with ``artifacts_dir`` each worker also writes the
    cell's attribution report and span trace there.

    Failures: by default any failed cell raises :class:`SweepCellError`
    (after *all* cells ran — the merge is never aborted mid-flight).
    Passing a ``failures`` list collects them instead; the corresponding
    ``results`` slots are ``None``.
    """
    cells = list(cells)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, len(cells))
    jobs = [
        _CellJob(index=i, cfg=cfg, artifacts_dir=artifacts_dir,
                 profile=profile)
        for i, cfg in enumerate(cells)
    ]
    if progress is not None:
        progress.start()
    outcomes: list[Optional[CellOutcome]] = [None] * len(cells)
    if workers <= 1:
        for job in jobs:
            outcome = _run_cell_job(job)
            outcomes[outcome.info.index] = outcome
            if progress is not None:
                progress.cell_done(outcome)
    else:
        ctx = _pool_context()
        logger.info(
            "sharding %d cells across %d workers (%s)",
            len(cells), workers, ctx.get_start_method(),
        )
        with ctx.Pool(processes=workers) as pool:
            # chunksize=1: cells are coarse (whole simulations), so favor
            # balance over batching.  imap_unordered surfaces outcomes in
            # completion order for live progress; the indexed reassembly
            # below restores submission order exactly.
            for outcome in pool.imap_unordered(_run_cell_job, jobs,
                                               chunksize=1):
                outcomes[outcome.info.index] = outcome
                if progress is not None:
                    progress.cell_done(outcome)
    if progress is not None:
        progress.finish()
    done = [out for out in outcomes if out is not None]
    assert len(done) == len(cells)
    failed = [out for out in done if not out.ok]
    if failed:
        if failures is None:
            raise SweepCellError(failed)
        failures.extend(failed)
    return [out.result for out in done], done


def run_cells(
    cells: Sequence[ExperimentConfig],
    workers: Optional[int] = None,
) -> list[ExperimentResult]:
    """Run every cell; returns results in cell order.

    ``workers > 1`` shards cells across that many processes (capped at
    the cell count).  Output is guaranteed identical to ``workers=1``:
    see the module docstring for the three-step determinism argument.
    A failing cell raises :class:`SweepCellError` naming its
    system/trace/params digest (after the remaining cells finished).
    """
    results, _outcomes = run_cells_observed(cells, workers)
    return [r for r in results if r is not None]
