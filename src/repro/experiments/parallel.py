"""Sharded sweep execution: (trace × system × seed) cells across cores.

A *cell* is one :class:`~repro.experiments.runner.ExperimentConfig` —
the unit every figure/table sweep already decomposes into.  Cells are
embarrassingly parallel by construction: each one builds its own
:class:`~repro.sim.Simulator`, derives every random stream from its own
``(seed, key)`` pair (:mod:`repro.sim.rng`), and touches no module
state, so a worker process needs nothing beyond the pickled config.

The determinism argument for the parallel runner, in full:

1. **Worker isolation** — ``run_experiment`` reads only its config; a
   fresh interpreter (spawn) and a forked one produce identical results
   because no ambient state (wall clock, global RNG, environment
   mutation) feeds the simulation (simlint SL02 enforces this).
2. **Seeded cells** — every stochastic input is derived from the cell's
   own seed, so results are a pure function of the cell.
3. **Ordered merge** — results return in *submission order*
   (``Pool.map`` semantics), not completion order; the merged list is
   byte-identical to a serial loop over the same cells.

Hence ``run_cells(cells, workers=4)`` == ``run_cells(cells, workers=1)``
element-for-element, which ``tests/test_sweep_parallel.py`` pins all the
way down to BENCH-record and golden-digest bytes.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from collections.abc import Sequence

from .runner import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["default_workers", "run_cells"]

logger = logging.getLogger(__name__)

#: Environment knob: default worker count for sweeps (0/unset = serial).
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get(WORKERS_ENV)
    if not raw:
        return 1
    value = int(raw)
    if value < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
    return value


def _run_cell(cfg: ExperimentConfig) -> ExperimentResult:
    """Worker entry point: simulate one cell, fully isolated."""
    return run_experiment(cfg)


def run_cells(
    cells: Sequence[ExperimentConfig],
    workers: int | None = None,
) -> list[ExperimentResult]:
    """Run every cell; returns results in cell order.

    ``workers > 1`` shards cells across that many processes (capped at
    the cell count).  Output is guaranteed identical to ``workers=1``:
    see the module docstring for the three-step determinism argument.
    """
    cells = list(cells)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, len(cells))
    if workers <= 1:
        return [_run_cell(cfg) for cfg in cells]
    # fork (where available) skips per-worker reimport of the package;
    # spawn is the portable fallback.  Results are identical under
    # either start method — workers only consume their pickled cell.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    logger.info(
        "sharding %d cells across %d workers (%s)",
        len(cells), workers, ctx.get_start_method(),
    )
    with ctx.Pool(processes=workers) as pool:
        # chunksize=1: cells are coarse (whole simulations), so favor
        # balance over batching; map() preserves submission order.
        return pool.map(_run_cell, cells, chunksize=1)
