"""Plain-text rendering of experiment results.

The harness prints the same rows/series the paper's tables and figures
report, as aligned ASCII tables — suitable for terminals, logs, and the
EXPERIMENTS.md paper-vs-measured record.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Union

__all__ = ["format_table", "format_kv", "banner"]

Cell = Union[str, int, float, None]


def _fmt(cell: Cell, ndigits: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{ndigits}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str | None = None,
    ndigits: int = 2,
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; floats get ``ndigits``
    decimals; ``None`` prints as ``-``.
    """
    raw_rows = [list(row) for row in rows]
    str_rows: list[list[str]] = [
        [_fmt(c, ndigits) for c in row] for row in raw_rows
    ]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(
                f"row has {len(r)} cells, expected {ncols}: {r!r}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(ncols)
    ]
    # Right-align columns that hold numbers, left-align text columns.
    numeric = [
        str_rows
        and all(
            isinstance(row[i], (int, float)) or row[i] is None
            for row in raw_rows
        )
        for i in range(ncols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    head = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    body = [
        " | ".join(
            r[i].rjust(widths[i]) if numeric[i] else r[i].ljust(widths[i])
            for i in range(ncols)
        )
        for r in str_rows
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(head)
    lines.append(sep)
    lines.extend(body)
    return "\n".join(lines)


def format_kv(pairs, title: str | None = None, ndigits: int = 3) -> str:
    """Render ``name: value`` pairs, aligned."""
    items = list(pairs.items() if hasattr(pairs, "items") else pairs)
    width = max((len(str(k)) for k, _ in items), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for k, v in items:
        lines.append(f"{str(k).ljust(width)} : {_fmt(v, ndigits)}")
    return "\n".join(lines)


def banner(text: str) -> str:
    """A section banner for multi-part reports."""
    bar = "#" * (len(text) + 4)
    return f"{bar}\n# {text} #\n{bar}"
