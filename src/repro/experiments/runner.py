"""Single-experiment runner: one (system, trace, cluster, memory) point.

Everything in :mod:`repro.experiments` boils down to calling
:func:`run_experiment` over a sweep and formatting the results.  A
*system* is one of:

* ``"press"`` — the locality-conscious baseline;
* ``"cc-basic"`` / ``"cc-sched"`` / ``"cc-kmc"`` — the middleware
  variants (paper Figure 2's four curves);
* any :class:`~repro.core.CoopCacheConfig` instance — ablations.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field

from ..cache.block import FileLayout
from ..cache.directory import HomeMap
from ..cache.hashring import PartitionedDirectory
from ..cluster.cluster import Cluster
from ..cluster.disk import SCAN
from ..core.api import blocks_for_mb
from ..core.config import CoopCacheConfig, variant
from ..core.hints import HintDirectory
from ..core.middleware import CoopCacheLayer
from ..params import DEFAULT_PARAMS, SimParams
from ..press.server import PressServer
from ..sim.engine import Simulator
from ..sim.faults import FaultInjector, FaultPlan
from ..sim.rng import stream
from ..traces.model import Trace
from ..web.client import ClosedLoopDriver, WorkloadResult
from ..web.server import CoopCacheWebServer

__all__ = [
    "ExperimentConfig", "ExperimentResult", "run_experiment", "SYSTEMS",
    "DIRECTORY_ENV",
]

logger = logging.getLogger(__name__)

#: Named systems accepted by :class:`ExperimentConfig`.
SYSTEMS = ("press", "cc-basic", "cc-sched", "cc-kmc")

#: Environment knob selecting the middleware's directory implementation
#: (mirrors ``REPRO_SCHEDULER``): ``oracle``/``perfect`` keeps the
#: paper's perfect directory, ``partitioned`` swaps in the
#: consistent-hash :class:`~repro.cache.hashring.PartitionedDirectory`.
#: It only applies to configs that left ``directory`` at the default —
#: an explicit choice ("hints", or a pinned ablation) always wins.
DIRECTORY_ENV = "REPRO_DIRECTORY"


def _apply_directory_env(config: CoopCacheConfig) -> CoopCacheConfig:
    """Resolve the ``REPRO_DIRECTORY`` knob against ``config``."""
    env = os.environ.get(DIRECTORY_ENV)
    if not env:
        return config
    if env not in ("oracle", "perfect", "partitioned"):
        raise ValueError(
            f"unknown {DIRECTORY_ENV} value {env!r}; "
            "choose oracle, perfect or partitioned"
        )
    if config.directory != "perfect":
        return config  # explicit per-config choice beats the env knob
    if env == "partitioned":
        return config.with_overrides(directory="partitioned")
    return config


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation point."""

    system: str | CoopCacheConfig
    trace: Trace
    num_nodes: int = 8
    #: Per-node memory (MB) — the paper's x-axis (4-512 MB).
    mem_mb_per_node: float = 32.0
    num_clients: int = 64
    warmup_frac: float = 0.25
    params: SimParams = field(default_factory=lambda: DEFAULT_PARAMS)
    home_strategy: str = "round_robin"
    seed: int = 0
    #: Fault schedule injected into the run; the empty plan (default)
    #: adds zero kernel events and reproduces the golden traces.
    faults: FaultPlan = field(default_factory=FaultPlan.none)

    def system_name(self) -> str:
        """Printable system label."""
        if isinstance(self.system, str):
            return self.system
        return f"cc[{self.system.policy}]"


@dataclass
class ExperimentResult:
    """Steady-state output of one point."""

    config: ExperimentConfig
    workload: WorkloadResult
    #: Block-weighted local/remote/disk/total hit fractions (Figure 4).
    hit_rates: dict[str, float]
    #: Raw protocol counters for deeper analysis.
    counters: dict[str, int]
    #: Fault/recovery counters (empty for fault-free runs).
    fault_counters: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Requests per second in the measurement window."""
        return self.workload.throughput_rps

    @property
    def mean_response_ms(self) -> float:
        """Mean response time (ms) in the measurement window."""
        return self.workload.mean_response_ms


def _build_cc(
    cfg: ExperimentConfig, sim: Simulator, config: CoopCacheConfig, obs=None,
    faults=None,
):
    config = _apply_directory_env(config)
    cluster = Cluster(
        sim, cfg.params, cfg.num_nodes, disk_discipline=config.disk_discipline
    )
    layout = FileLayout(cfg.trace.sizes_kb, cfg.params)
    homes = HomeMap(layout.num_files, cfg.num_nodes, cfg.home_strategy)
    directory = None
    if config.directory == "hints":
        directory = HintDirectory(
            config.hint_accuracy, cfg.num_nodes, stream(cfg.seed, "hints")
        )
    elif config.directory == "partitioned":
        directory = PartitionedDirectory(
            cfg.num_nodes,
            vnodes=config.dir_vnodes,
            seed=cfg.seed,
            staleness_ms=config.dir_staleness_ms,
        )
        directory.attach(sim)
    layer = CoopCacheLayer(
        cluster,
        layout,
        homes,
        capacity_blocks=blocks_for_mb(cfg.mem_mb_per_node, cfg.params),
        config=config,
        directory=directory,
        obs=obs,
        faults=faults,
    )
    return cluster, CoopCacheWebServer(layer, obs=obs)


def _build_press(cfg: ExperimentConfig, sim: Simulator, obs=None, faults=None):
    # PRESS always schedules its disk queue (it is the tuned baseline).
    cluster = Cluster(sim, cfg.params, cfg.num_nodes, disk_discipline=SCAN)
    layout = FileLayout(cfg.trace.sizes_kb, cfg.params)
    server = PressServer(
        cluster, layout, capacity_kb=cfg.mem_mb_per_node * 1024.0, obs=obs,
        faults=faults,
    )
    return cluster, server


def run_experiment(cfg: ExperimentConfig, obs=None) -> ExperimentResult:
    """Simulate one point and return its steady-state measurements.

    ``obs`` is an optional :class:`~repro.obs.Observability` bundle: its
    tracer records every request as a span tree, its registry collects
    every component's metrics, and — for the middleware systems — a
    positive ``obs.invariant_every`` samples
    :meth:`~repro.core.CoopCacheLayer.check_invariants` every N kernel
    events.  After the call, dump ``obs.tracer`` / ``obs.registry``.
    """
    sim = Simulator()
    if obs is not None:
        obs.attach(sim)
    # A non-empty plan builds a real injector; fault-free runs keep every
    # component on NULL_FAULTS (zero extra kernel events — golden-pinned).
    faults = (
        FaultInjector(cfg.faults, cfg.params, seed=cfg.seed, obs=obs)
        if cfg.faults else None
    )
    if isinstance(cfg.system, CoopCacheConfig):
        cluster, service = _build_cc(cfg, sim, cfg.system, obs=obs,
                                     faults=faults)
    elif cfg.system == "press":
        cluster, service = _build_press(cfg, sim, obs=obs, faults=faults)
    elif cfg.system in SYSTEMS:
        cluster, service = _build_cc(cfg, sim, variant(cfg.system), obs=obs,
                                     faults=faults)
    else:
        raise ValueError(
            f"unknown system {cfg.system!r}; choose from {SYSTEMS} "
            "or pass a CoopCacheConfig"
        )
    if faults is not None:
        faults.install(sim, cluster)
    if obs is not None:
        cluster.bind_metrics(obs.registry)
        if obs.invariant_every and hasattr(service, "layer"):
            from ..obs import InvariantSampler

            obs.sampler = InvariantSampler(
                service.layer.check_invariants, obs.invariant_every
            )
            obs.sampler.attach(sim)

    logger.info(
        "running %s / %s: %d nodes, %g MB/node, %d clients, seed %d",
        cfg.system_name(), cfg.trace.spec.name, cfg.num_nodes,
        cfg.mem_mb_per_node, cfg.num_clients or 0, cfg.seed,
    )
    driver = ClosedLoopDriver(
        sim,
        cluster,
        service,
        cfg.trace,
        num_clients=cfg.num_clients,
        warmup_frac=cfg.warmup_frac,
        obs=obs,
        faults=faults,
    )
    workload = driver.run()
    logger.info(
        "done in %.1f ms simulated: %.1f req/s, %.2f ms mean response",
        sim.now, workload.throughput_rps, workload.mean_response_ms,
    )
    return ExperimentResult(
        config=cfg,
        workload=workload,
        hit_rates=service.hit_rates(),
        counters=(
            service.counters.as_dict()
            if hasattr(service, "counters")
            else service.layer.counters.as_dict()
        ),
        fault_counters=(
            faults.counters.as_dict() if faults is not None else {}
        ),
    )
