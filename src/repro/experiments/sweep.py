"""Parameter sweeps over :func:`repro.experiments.runner.run_experiment`.

Every sweep decomposes into independent (system × point) cells and
executes them through :func:`repro.experiments.parallel.run_cells`, so
``workers > 1`` (or ``REPRO_WORKERS``) shards the same cells across
processes with results merged back in cell order — output is identical
to a serial run by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Union

from ..core.config import CoopCacheConfig
from ..params import DEFAULT_PARAMS, SimParams
from ..traces.model import Trace
from . import defaults
from .parallel import run_cells
from .runner import ExperimentConfig, ExperimentResult

__all__ = ["memory_sweep", "node_sweep"]

System = Union[str, CoopCacheConfig]


def memory_sweep(
    trace: Trace,
    systems: Sequence[System],
    memories_mb: Sequence[float] | None = None,
    num_nodes: int = 8,
    num_clients: int | None = None,
    params: SimParams = DEFAULT_PARAMS,
    home_strategy: str = "round_robin",
    workers: int | None = None,
) -> dict[str, list[ExperimentResult]]:
    """Run every system at every per-node memory size.

    Returns ``{system_label: [result per memory point]}`` with the points
    in the order given (default: the paper's 4-512 MB axis, scaled).
    ``workers`` shards the (system × memory) cells across processes
    (default: the ``REPRO_WORKERS`` environment knob).
    """
    memories = list(memories_mb if memories_mb is not None
                    else defaults.memory_points_mb())
    clients = num_clients if num_clients is not None else defaults.NUM_CLIENTS
    labels = [system if isinstance(system, str) else system_label(system)
              for system in systems]
    cells = [
        ExperimentConfig(
            system=system,
            trace=trace,
            num_nodes=num_nodes,
            mem_mb_per_node=mem,
            num_clients=clients,
            params=params,
            home_strategy=home_strategy,
        )
        for system in systems
        for mem in memories
    ]
    results = run_cells(cells, workers=workers)
    n = len(memories)
    return {
        label: results[i * n:(i + 1) * n]
        for i, label in enumerate(labels)
    }


def node_sweep(
    trace: Trace,
    system: System,
    node_counts: Iterable[int],
    mem_mb_per_node: float,
    num_clients: int | None = None,
    params: SimParams = DEFAULT_PARAMS,
    workers: int | None = None,
) -> list[ExperimentResult]:
    """Run one system across cluster sizes (Figure 6b)."""
    clients = num_clients if num_clients is not None else defaults.NUM_CLIENTS
    cells = [
        ExperimentConfig(
            system=system,
            trace=trace,
            num_nodes=n,
            mem_mb_per_node=mem_mb_per_node,
            num_clients=clients,
            params=params,
        )
        for n in node_counts
    ]
    return run_cells(cells, workers=workers)


def system_label(config: CoopCacheConfig) -> str:
    """A stable display label for an ad-hoc middleware configuration."""
    bits = [config.policy, config.disk_discipline]
    if not config.forward_on_evict:
        bits.append("nofwd")
    if config.directory == "hints":
        bits.append(f"hints{config.hint_accuracy:g}")
    return "cc[" + ",".join(bits) + "]"
