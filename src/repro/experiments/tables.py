"""Table 1 (simulation parameters) and Table 2 (trace characteristics)."""

from __future__ import annotations


from ..params import DEFAULT_PARAMS, SimParams
from ..traces.analysis import table2_row
from ..traces.datasets import TRACE_NAMES
from . import defaults
from .report import format_table

__all__ = ["table1", "render_table1", "table2", "render_table2"]


def table1(params: SimParams = DEFAULT_PARAMS) -> list[list[str]]:
    """Table 1 rows: (event, modeled time) — the reconstructed constants.

    Formulas are printed symbolically the way the paper does ("Size" in
    KB, "NBlocks" in blocks).
    """
    cpu, disk, net, bus = params.cpu, params.disk, params.network, params.bus
    return [
        ["Request processing", ""],
        ["  Parsing time", f"{cpu.parse_ms}ms"],
        ["  Serving time",
         f"{cpu.serve_fixed_ms} + (Size/{1/cpu.serve_per_kb_ms:.0f})ms"],
        ["Block operations", ""],
        ["  Process a file request",
         f"{cpu.file_request_fixed_ms} + (NBlocks*{cpu.file_request_per_block_ms})ms"],
        ["  Serve peer block request", f"{cpu.serve_peer_block_ms}ms"],
        ["  Cache a new block", f"{cpu.cache_block_ms}ms"],
        ["  Process an evicted master block", f"{cpu.evicted_master_ms}ms"],
        ["Disk operations", ""],
        ["  Disk reading time (non-contiguous)",
         f"{disk.seek_ms} + {disk.metadata_seek_ms} + "
         f"(Size/{1/disk.transfer_per_kb_ms:.0f})ms"],
        ["  Disk reading time (contiguous)",
         f"(Size/{1/disk.transfer_per_kb_ms:.0f})ms"],
        ["Bus & network", ""],
        ["  Bus transfer time",
         f"{bus.per_transfer_ms} + (Size/{bus.bandwidth_kb_per_ms:.0f})ms"],
        ["  Network latency", f"{net.latency_ms}ms"],
        ["  NIC transfer time",
         f"{net.per_message_ms} + (Size/{net.bandwidth_kb_per_ms:.0f})ms"],
        ["  Router forwarding", f"{params.router.forward_ms}ms"],
    ]


def render_table1(params: SimParams = DEFAULT_PARAMS) -> str:
    """Print-ready Table 1."""
    return format_table(
        ["Event", "Time (ms, Size in KB)"],
        table1(params),
        title="Table 1: Simulation parameters (reconstructed; see DESIGN.md)",
    )


def table2(names: list[str] | None = None) -> dict[str, dict[str, float]]:
    """Table 2: characteristics of the four workloads at the active scale."""
    rows = {}
    for name in names or TRACE_NAMES:
        rows[name] = table2_row(defaults.workload(name))
    return rows


def render_table2(names: list[str] | None = None) -> str:
    """Print-ready Table 2."""
    data = table2(names)
    rows = [
        [
            name,
            int(row["num_files"]),
            row["avg_file_kb"],
            int(row["num_requests"]),
            row["avg_request_kb"],
            row["file_set_mb"],
        ]
        for name, row in data.items()
    ]
    return format_table(
        ["Trace", "Num files", "Avg file KB", "Num requests",
         "Avg req KB", "File set MB"],
        rows,
        title=(
            f"Table 2: WWW trace characteristics (scale={defaults.SCALE:g})"
        ),
    )
