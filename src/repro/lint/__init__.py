"""simlint — determinism & cache-invariant static analysis for this repo.

An AST-based lint suite whose rules encode the properties the golden
traces, chaos replay, and CC-KMC invariant claims silently rely on.
Per-file rules (v1):

* **SL01** — no unordered set/dict iteration feeding simulation state
* **SL02** — no wall-clock or ambient randomness outside ``repro.sim.rng``
* **SL03** — no float ``==``/``!=`` on simulated time / byte quantities
* **SL04** — cache-state mutations only through the census code path
* **SL05** — no mutable default arguments
* **SL00** — suppression hygiene (pragmas must carry a justification)

Whole-program rules (v2), built on a project-wide call graph
(:mod:`~repro.lint.callgraph`) and a fixed-point taint dataflow engine
(:mod:`~repro.lint.dataflow`, :mod:`~repro.lint.taint`):

* **SL06** — interprocedural nondeterminism taint: unordered iteration,
  ambient randomness, wall-clock, or non-``REPRO_*`` environment values
  flowing into sim state, trace output, or BENCH records — reported
  with the full source→sink witness path, across module boundaries
* **SL07** — units flow: ``*_ms``/``*_s``/``*_bytes``/``*_kb``/``*_mb``/
  ``*_blocks`` naming conventions checked across assignments,
  comparisons, ``+``/``-``, and call arguments
* **SL08** — stale suppressions: pragmas and allow entries must still
  suppress something, so the suppression inventory can only shrink
* **SL09** — no mutation of worker-reachable state after pool creation

Run it with ``python -m repro.lint [paths...]``; configuration lives in
``[tool.simlint]`` in ``pyproject.toml``.  ``--explain SLxx`` prints a
rule's rationale and examples.  See DESIGN.md §16.
"""

from .config import LintConfig, load_config
from .docs import RULE_DOCS, RuleDoc, render_explain, rule_doc
from .engine import Finding, lint_paths, lint_source
from .project import all_project_rules
from .report import (
    JSON_SCHEMA_VERSION, findings_from_json, render_text, to_json_dict,
)
from .rules import all_rules, rule_catalog
from .taint import TaintStep

__all__ = [
    "LintConfig",
    "load_config",
    "Finding",
    "TaintStep",
    "lint_paths",
    "lint_source",
    "render_text",
    "to_json_dict",
    "findings_from_json",
    "JSON_SCHEMA_VERSION",
    "all_rules",
    "all_project_rules",
    "rule_catalog",
    "RuleDoc",
    "RULE_DOCS",
    "rule_doc",
    "render_explain",
]
