"""simlint — determinism & cache-invariant static analysis for this repo.

An AST-based lint suite whose rules encode the properties the golden
traces, chaos replay, and CC-KMC invariant claims silently rely on:

* **SL01** — no unordered set/dict iteration feeding simulation state
* **SL02** — no wall-clock or ambient randomness outside ``repro.sim.rng``
* **SL03** — no float ``==``/``!=`` on simulated time / byte quantities
* **SL04** — cache-state mutations only through the census code path
* **SL05** — no mutable default arguments
* **SL00** — suppression hygiene (pragmas must carry a justification)

Run it with ``python -m repro.lint [paths...]``; configuration lives in
``[tool.simlint]`` in ``pyproject.toml``.  See DESIGN.md §16 for each
rule's rationale.
"""

from .config import LintConfig, load_config
from .engine import Finding, lint_paths, lint_source
from .report import JSON_SCHEMA_VERSION, render_text, to_json_dict
from .rules import all_rules, rule_catalog

__all__ = [
    "LintConfig",
    "load_config",
    "Finding",
    "lint_paths",
    "lint_source",
    "render_text",
    "to_json_dict",
    "JSON_SCHEMA_VERSION",
    "all_rules",
    "rule_catalog",
]
