"""``python -m repro.lint`` — run the simlint suite.

Exit codes: 0 = clean, 1 = findings, 2 = usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from collections.abc import Sequence

from .config import load_config
from .engine import lint_paths
from .report import render_text, to_json_dict
from .rules import all_rules, rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & cache-invariant static analysis",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: [tool.simlint] paths)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format on stdout (default: text)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, doc in rule_catalog():
            head, _, rest = doc.partition("\n")
            print(f"{rule_id}  {head}")
            if rest.strip():
                print(textwrap.indent(textwrap.dedent(rest).strip(), "      "))
            print()
        return 0

    config = load_config()
    rules = list(all_rules())
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        known = {r.id for r in rules} | {"SL00"}
        unknown = wanted - known
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.id in wanted]

    paths: list[str] = list(args.paths) or list(config.paths)
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    findings, files_checked = lint_paths(paths, config, rules)
    if files_checked == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return 2

    doc = to_json_dict(findings, files_checked)
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(doc, indent=2) + "\n",
                                       encoding="utf-8")
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
