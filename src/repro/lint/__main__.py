"""``python -m repro.lint`` — run the simlint suite.

Exit codes: 0 = clean, 1 = findings, 2 = usage/configuration error.

By default both layers run: the per-file rules (SL00–SL05) and the
whole-program rules (SL06–SL09).  The suppression-staleness audit
(SL08) only engages on *full* runs — no explicit paths, or paths
covering the configured default set — because a partial run cannot
prove a suppression dead.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from collections.abc import Sequence

from .config import load_config
from .docs import render_explain, rule_doc
from .engine import lint_paths
from .project import all_project_rules
from .report import render_text, to_json_dict
from .rules import all_rules, rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & cache-invariant static analysis",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: [tool.simlint] paths)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format on stdout (default: text)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default: all; "
                             "disables the SL08 staleness audit)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--explain", metavar="RULE",
                        help="print one rule's rationale, examples, and "
                             "pragma contract, then exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.explain:
        doc = rule_doc(args.explain)
        if doc is None:
            print(f"error: unknown rule id {args.explain!r}", file=sys.stderr)
            return 2
        print(render_explain(doc))
        return 0

    if args.list_rules:
        for rule_id, doc in rule_catalog():
            head, _, rest = doc.partition("\n")
            print(f"{rule_id}  {head}")
            if rest.strip():
                print(textwrap.indent(textwrap.fill(rest.strip(), 72), "      "))
            print()
        return 0

    config = load_config()
    rules = list(all_rules())
    project_rules = list(all_project_rules())
    selected_all = args.select is None
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        known = ({r.id for r in rules} | {r.id for r in project_rules}
                 | {"SL00"})
        unknown = wanted - known
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.id in wanted]
        project_rules = [r for r in project_rules if r.id in wanted]

    paths: list[str] = list(args.paths) or list(config.paths)
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    # SL08 needs every rule to have run over the full configured file
    # set; otherwise an unused pragma proves nothing.
    full_run = selected_all and (not args.paths
                                 or set(paths) >= set(config.paths))

    findings, files_checked = lint_paths(paths, config, rules,
                                         project_rules=project_rules,
                                         full_run=full_run)
    if files_checked == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return 2

    doc_json = to_json_dict(findings, files_checked)
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(doc_json, indent=2) + "\n",
                                       encoding="utf-8")
    if args.format == "json":
        print(json.dumps(doc_json, indent=2))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
