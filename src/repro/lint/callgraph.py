"""Project-wide def/use index and call resolution for simlint v2.

One :class:`Program` is built per lint run from every parsed file.  It
indexes, per module: top-level functions, classes and their methods,
import aliases, and module-level string constants (so an
``os.environ.get(WORKERS_ENV)`` read can be judged against the literal
behind the constant).  On top of the index it resolves call expressions
to :class:`FunctionInfo` targets:

* ``name(...)`` — a function defined in the same module, or imported
  via ``from pkg.mod import name``;
* ``alias.attr(...)`` — ``attr`` in the module bound to ``alias`` by
  ``import pkg.mod as alias``;
* ``Cls(...)`` — the class's ``__init__`` (and the call site is known
  to produce a ``Cls`` instance, which seeds method resolution);
* ``obj.meth(...)`` — resolved through a lightweight local type
  environment (parameter annotations, ``x = Cls(...)`` constructor
  assignments, annotated ``self.attr`` class attributes, ``self`` in a
  method body) via class-attribute lookup, following program-local base
  classes;
* calls *through a function-valued parameter* — resolved conservatively
  to every function reference ever passed for that parameter at any
  call site of the enclosing function (collected in a pre-pass).

Resolution is deliberately partial: an unresolvable call contributes no
call edge (the dataflow layer falls back to arg-taint union), which
keeps the analysis sound-for-self-hosting rather than drowning the
report in speculative edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "Program", "module_name_for"]


def module_name_for(path: str) -> str:
    """Dotted module name for a project-relative file path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``benchmarks/bench_sched.py`` -> ``benchmarks.bench_sched``;
    package ``__init__.py`` files name the package itself.
    """
    parts = path.replace("\\", "/").strip("/").split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the program."""

    qualname: str  # module.func or module.Cls.func
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: "ClassInfo | None" = None
    #: Positional-or-keyword parameter names in order (incl. self/cls).
    params: tuple[str, ...] = ()
    #: Parameter name -> annotation text (best effort).
    annotations: dict[str, str] = field(default_factory=dict)
    #: Parameter indices that are invoked as callables in the body.
    callable_params: frozenset[int] = frozenset()
    #: Conservative targets for calls through each callable param.
    param_targets: dict[int, "set[str]"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def arg_param_index(self, call: ast.Call, pos: int | None = None,
                        keyword: str | None = None) -> int | None:
        """Map a call-site argument position/keyword to a param index.

        Skips the implicit ``self`` slot for bound-method calls (the
        caller passes one fewer positional than the def declares).
        """
        offset = 1 if self.cls is not None and self.params[:1] in (("self",), ("cls",)) else 0
        if keyword is not None:
            idx = self.param_index(keyword)
            return idx
        if pos is None:
            return None
        idx = pos + offset
        return idx if idx < len(self.params) else None


@dataclass
class ClassInfo:
    """One class definition: methods, bases, annotated attribute types."""

    qualname: str  # module.Cls
    module: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: tuple[str, ...] = ()  # unresolved textual base names
    #: Attribute name -> class qualname (from annotations/ctor assigns).
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """Index of one parsed source file."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool = False
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> module name ("np" -> "numpy")
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> "module.attr" origin (from-imports)
    from_imports: dict[str, str] = field(default_factory=dict)
    #: module-level NAME = "literal" string constants
    str_constants: dict[str, str] = field(default_factory=dict)


def _annotation_text(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return None
    # Normalize the common wrappers: Optional[X], "X", X | None.
    text = text.strip().strip("'\"")
    for prefix in ("Optional[", "optional["):
        if text.startswith(prefix) and text.endswith("]"):
            text = text[len(prefix):-1]
    if text.endswith("| None"):
        text = text[: -len("| None")].strip()
    return text or None


def _index_function(node: ast.FunctionDef | ast.AsyncFunctionDef, module: ModuleInfo,
                    cls: ClassInfo | None) -> FunctionInfo:
    owner = f"{cls.qualname}." if cls is not None else f"{module.name}."
    args = node.args
    ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    params = tuple(a.arg for a in ordered)
    annotations = {a.arg: text for a in ordered
                   if (text := _annotation_text(a.annotation)) is not None}
    info = FunctionInfo(qualname=owner + node.name, module=module.name,
                        path=module.path, node=node, cls=cls,
                        params=params, annotations=annotations)
    called: set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            idx = info.param_index(sub.func.id)
            if idx is not None:
                called.add(idx)
    info.callable_params = frozenset(called)
    return info


class Program:
    """The whole-program index over every linted file."""

    def __init__(self, files: Iterable[tuple[str, ast.Module]]):
        self.modules: dict[str, ModuleInfo] = {}
        #: class simple name -> ClassInfo list (for unique-name fallback)
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        #: method simple name -> FunctionInfo list
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        for path, tree in files:
            self._index_module(path, tree)
        self._link_param_targets()

    # -- indexing -----------------------------------------------------------
    def _index_module(self, path: str, tree: ast.Module) -> None:
        is_package = path.replace("\\", "/").endswith("/__init__.py")
        mod = ModuleInfo(name=module_name_for(path), path=path, tree=tree,
                         is_package=is_package)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = ""
                if node.level:
                    # level 1 is the containing package (the module itself
                    # for __init__.py); each extra level climbs one parent.
                    up = node.level - (1 if mod.is_package else 0)
                    base = mod.name.rsplit(".", up)[0] if up > 0 else mod.name
                origin = f"{base}.{node.module}" if base else node.module
                for alias in node.names:
                    mod.from_imports[alias.asname or alias.name] = f"{origin}.{alias.name}"
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _index_function(stmt, mod, None)
                mod.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, mod)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, str):
                mod.str_constants[stmt.targets[0].id] = stmt.value.value
        self.modules[mod.name] = mod

    def _index_class(self, node: ast.ClassDef, mod: ModuleInfo) -> None:
        cls = ClassInfo(qualname=f"{mod.name}.{node.name}", module=mod.name,
                        node=node,
                        base_names=tuple(b for base in node.bases
                                         if (b := _annotation_text(base))))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _index_function(stmt, mod, cls)
                cls.methods[stmt.name] = info
                self._methods_by_name.setdefault(stmt.name, []).append(info)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                text = _annotation_text(stmt.annotation)
                if text:
                    cls.attr_types[stmt.target.id] = text
        # self.<attr>: Cls annotations / self.<attr> = <param with annotation>
        init = cls.methods.get("__init__")
        if init is not None:
            for sub in ast.walk(init.node):
                if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Attribute) \
                        and isinstance(sub.target.value, ast.Name) \
                        and sub.target.value.id == "self":
                    text = _annotation_text(sub.annotation)
                    if text:
                        cls.attr_types.setdefault(sub.target.attr, text)
                elif isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                        and isinstance(sub.targets[0], ast.Attribute) \
                        and isinstance(sub.targets[0].value, ast.Name) \
                        and sub.targets[0].value.id == "self" \
                        and isinstance(sub.value, ast.Name):
                    ann = init.annotations.get(sub.value.id)
                    if ann:
                        cls.attr_types.setdefault(sub.targets[0].attr, ann)
        mod.classes[node.name] = cls
        self._classes_by_name.setdefault(node.name, []).append(cls)

    def _link_param_targets(self) -> None:
        """Pre-pass: record functions passed for callable-valued params."""
        for mod in self.modules.values():
            for fn in self.iter_functions(mod):
                for sub in ast.walk(fn.node):
                    if not isinstance(sub, ast.Call):
                        continue
                    targets = self.resolve_call(mod, sub, env=None, enclosing=fn)
                    for target in targets:
                        if not target.callable_params:
                            continue
                        for pos, arg in enumerate(sub.args):
                            idx = target.arg_param_index(sub, pos=pos)
                            if idx in target.callable_params:
                                passed = self._function_ref(mod, arg)
                                if passed is not None:
                                    target.param_targets.setdefault(
                                        idx, set()).add(passed.qualname)
                        for kw in sub.keywords:
                            if kw.arg is None:
                                continue
                            idx = target.arg_param_index(sub, keyword=kw.arg)
                            if idx in target.callable_params:
                                passed = self._function_ref(mod, kw.value)
                                if passed is not None:
                                    target.param_targets.setdefault(
                                        idx, set()).add(passed.qualname)

    # -- lookup -------------------------------------------------------------
    def iter_functions(self, mod: ModuleInfo | None = None) -> "list[FunctionInfo]":
        mods: Sequence[ModuleInfo] = (
            [mod] if mod is not None else list(self.modules.values()))
        out: list[FunctionInfo] = []
        for m in mods:
            out.extend(m.functions.values())
            for cls in m.classes.values():
                out.extend(cls.methods.values())
        return out

    def function(self, qualname: str) -> FunctionInfo | None:
        """Resolve ``module.func`` or ``module.Cls.meth`` against the index."""
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            m = self.modules.get(".".join(parts[:cut]))
            if m is None:
                continue
            tail = parts[cut:]
            if len(tail) == 1:
                return m.functions.get(tail[0])
            if len(tail) == 2:
                c = m.classes.get(tail[0])
                return c.methods.get(tail[1]) if c else None
        return None

    def class_info(self, name: str, mod: ModuleInfo | None = None) -> ClassInfo | None:
        """Resolve a class by local name (module scope, imports, unique name)."""
        if mod is not None:
            if name in mod.classes:
                return mod.classes[name]
            origin = mod.from_imports.get(name)
            if origin:
                owner, _, cls_name = origin.rpartition(".")
                owner_mod = self.modules.get(owner)
                if owner_mod and cls_name in owner_mod.classes:
                    return owner_mod.classes[cls_name]
        candidates = self._classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def method_of(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Look a method up on a class, following program-local bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop()
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if name in cur.methods:
                return cur.methods[name]
            owner = self.modules.get(cur.module)
            for base in cur.base_names:
                resolved = self.class_info(base.split("[")[0], owner)
                if resolved is not None:
                    stack.append(resolved)
        return None

    #: Method names shared with builtin containers / file objects: a
    #: unique program-local definition of one of these is almost never
    #: the target of an unresolved ``obj.append(...)``-style call, so
    #: the unique-name fallback must not claim it.
    _COMMON_METHOD_NAMES = frozenset({
        "append", "add", "extend", "insert", "update", "pop", "popitem",
        "get", "setdefault", "clear", "copy", "remove", "discard", "sort",
        "keys", "values", "items", "count", "index",
        "write", "read", "readline", "close", "flush", "seek",
        "join", "split", "strip", "encode", "decode", "format",
        "put", "send", "recv", "acquire", "release",
    })

    def unique_method(self, name: str) -> FunctionInfo | None:
        """The only method with this name anywhere in the program, if unique.

        Names that collide with builtin container/file methods are never
        resolved this way — a false edge through ``list.append`` or
        ``io.write`` fabricates interprocedural flows out of thin air.
        """
        if name in self._COMMON_METHOD_NAMES:
            return None
        candidates = self._methods_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def function_ref(self, mod: ModuleInfo, expr: ast.expr) -> FunctionInfo | None:
        """Resolve a *reference* (not call) to a function, if possible."""
        return self._function_ref(mod, expr)

    def _function_ref(self, mod: ModuleInfo, expr: ast.expr) -> FunctionInfo | None:
        if isinstance(expr, ast.Name):
            if expr.id in mod.functions:
                return mod.functions[expr.id]
            origin = mod.from_imports.get(expr.id)
            if origin:
                return self.function(origin)
        elif isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = mod.module_aliases.get(expr.value.id)
            if owner:
                owner_mod = self.modules.get(owner)
                if owner_mod:
                    return owner_mod.functions.get(expr.attr)
        return None

    def resolve_call(self, mod: ModuleInfo, call: ast.Call,
                     env: "dict[str, str] | None" = None,
                     enclosing: FunctionInfo | None = None) -> "list[FunctionInfo]":
        """Targets of a call expression (possibly empty; rarely > 1).

        ``env`` maps local variable names to class qualnames (the caller's
        type environment); ``enclosing`` enables ``self`` resolution and
        calls through function-valued parameters.
        """
        func = call.func
        env = env or {}
        if isinstance(func, ast.Name):
            # call through a function-valued parameter
            if enclosing is not None:
                idx = enclosing.param_index(func.id)
                if idx is not None and idx in enclosing.callable_params:
                    out = []
                    for qual in sorted(enclosing.param_targets.get(idx, ())):
                        target = self.function(qual)
                        if target is not None:
                            out.append(target)
                    return out
            direct = self._function_ref(mod, func)
            if direct is not None:
                return [direct]
            cls = self.class_info(func.id, mod) if func.id not in mod.functions else None
            if cls is not None and (func.id in mod.classes
                                    or func.id in mod.from_imports):
                init = self.method_of(cls, "__init__")
                return [init] if init is not None else []
            return []
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # module alias call: np.foo(...)
            direct = self._function_ref(mod, func)
            if direct is not None:
                return [direct]
            cls_qual: str | None = None
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls") and enclosing is not None \
                        and enclosing.cls is not None:
                    cls_qual = enclosing.cls.qualname
                else:
                    cls_qual = env.get(receiver.id)
            elif isinstance(receiver, ast.Attribute) \
                    and isinstance(receiver.value, ast.Name) \
                    and receiver.value.id in ("self", "cls") \
                    and enclosing is not None and enclosing.cls is not None:
                attr_type = enclosing.cls.attr_types.get(receiver.attr)
                if attr_type:
                    resolved = self.class_info(attr_type.split("[")[0], mod)
                    cls_qual = resolved.qualname if resolved else None
            if cls_qual is not None:
                cls = self._class_by_qualname(cls_qual)
                if cls is not None:
                    target = self.method_of(cls, func.attr)
                    return [target] if target is not None else []
            unique = self.unique_method(func.attr)
            if unique is not None:
                return [unique]
        return []

    def _class_by_qualname(self, qualname: str) -> ClassInfo | None:
        mod_name, _, cls_name = qualname.rpartition(".")
        mod = self.modules.get(mod_name)
        if mod is not None:
            return mod.classes.get(cls_name)
        candidates = self._classes_by_name.get(qualname, [])
        return candidates[0] if len(candidates) == 1 else None
