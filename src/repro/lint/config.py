"""simlint configuration: defaults, pyproject loading, path scoping.

Every rule is *scoped*: it only applies to files whose project-relative
path matches one of its configured prefixes, minus any explicit
allowlist entries.  The defaults below encode the determinism contract
of this repository (see DESIGN.md §16); ``[tool.simlint]`` in
``pyproject.toml`` can override any field so the contract lives next to
the rest of the project's tool configuration.

TOML loading uses :mod:`tomllib` where available (Python 3.11+) and
falls back to a minimal line-oriented parser that understands exactly
the subset ``[tool.simlint]`` uses (string lists and tables of string
lists) — this package must run on Python 3.9 without third-party
dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from collections.abc import Mapping, Sequence

__all__ = ["LintConfig", "load_config", "path_matches"]


# Rule id -> path prefixes (project-relative, posix) where the rule is
# enforced.  "repro" means the whole package.
_DEFAULT_RULE_PATHS: dict[str, tuple[str, ...]] = {
    # Unordered-iteration hygiene only matters where iteration order can
    # feed simulation state: the kernel, the protocol, the caches, the
    # cluster model and the PRESS baseline.
    "SL01": ("repro/sim", "repro/core", "repro/cache", "repro/cluster", "repro/press"),
    "SL02": ("repro", "benchmarks"),
    "SL03": ("repro/sim", "repro/core", "repro/cache", "repro/cluster", "repro/press",
             "repro/obs"),
    "SL04": ("repro", "benchmarks"),
    "SL05": ("repro", "benchmarks"),
    # v2 whole-program rules.  SL06/SL07 findings attach at the *sink* /
    # mixing site, so they are scoped wherever code can consume a
    # nondeterministic value or mix units; sources are tracked globally.
    "SL06": ("repro", "benchmarks"),
    "SL07": ("repro", "benchmarks"),
    "SL08": ("repro", "benchmarks"),
    # Cross-process mutation hazards live where pools are created.
    "SL09": ("repro/experiments", "benchmarks"),
}

# Rule id -> path prefixes exempt from the rule even inside its scope.
# Empty by default: SL08 treats an allow entry that suppresses nothing
# as stale, so entries exist only while they actually silence findings.
_DEFAULT_ALLOW_PATHS: dict[str, tuple[str, ...]] = {}

# Protected cache internals (SL04): attribute name -> file suffixes that
# own it.  A non-``self`` access to one of these attributes anywhere
# else is a reach-in that bypasses the single census code path.
_DEFAULT_PROTECTED_ATTRS: dict[str, tuple[str, ...]] = {
    "_masters": ("repro/cache/blockcache.py", "repro/cache/directory.py",
                 "repro/core/wholefile.py"),
    "_nonmasters": ("repro/cache/blockcache.py",),
    "_replicas": ("repro/core/wholefile.py",),
    "_dirty": ("repro/cache/blockcache.py",),
    "_ages": ("repro/cache/lru.py",),
    "_where": ("repro/press/filecache.py",),
    "_lru": ("repro/press/filecache.py",),
}

# Identifier regexes that mark an operand as a simulated-time or byte
# quantity for SL03 (float == / != is the census-drift bug class).
_DEFAULT_QUANTITY_PATTERNS: tuple[str, ...] = (
    r"(^|_)(time|now|age|ages|when|deadline|latency|elapsed|duration)($|_)",
    r"(^|_)(kb|ms|bytes|size_kb|sizes_kb)($|s?_|s?$)",
    r"_kb$",
    r"_ms$",
)

# SL06 taint sinks: callables whose arguments become simulation state,
# trace output, or BENCH records.  Entries are matched against resolved
# call targets by qualname suffix; a bare "Cls" entry designates the
# class's constructor; "Cls.meth" entries also match unresolved
# attribute calls by method name (receiver unknown -> conservative).
_DEFAULT_SL06_SINKS: tuple[str, ...] = (
    # event scheduling: a tainted delay/value perturbs the event order
    "Simulator.call_at", "Simulator.call_after", "Simulator.run",
    "Event.succeed", "Event.fail", "Timeout", "Process",
    # trace output: tainted attrs land in the golden digests
    "Tracer.start", "Tracer.point", "Span.finish",
    # BENCH records: tainted metrics corrupt the gated trajectory
    "wrap_result", "params_digest",
)

# SL06 state zone: an assignment into any object attribute/subscript in
# these packages stores the value into simulation state.
_DEFAULT_SL06_STATE_PATHS: tuple[str, ...] = (
    "repro/sim", "repro/core", "repro/cache", "repro/cluster", "repro/press",
)

# Environment keys under these prefixes are sanctioned runner knobs
# (REPRO_SCHEDULER, REPRO_WORKERS, ...): explicitly designed so any
# value yields a valid deterministic run, and stamped into provenance.
_DEFAULT_SL06_ENV_OK_PREFIXES: tuple[str, ...] = ("REPRO_",)

# SL07 units lattice: unit -> identifier regexes that bind a name to it.
# Matched in declaration order ("per_s" must win over the bare "_s"
# seconds suffix), case-insensitively, against the last identifier
# component of a name/attribute/call target.
_DEFAULT_UNIT_PATTERNS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("per_s", (r"_per_s$", r"_rps$", r"^rps$", r"_per_sec$")),
    ("ms", (r"_ms$", r"^ms$", r"_msec$")),
    ("s", (r"_s$", r"_secs?$", r"^seconds$", r"^secs$")),
    ("bytes", (r"_bytes$", r"^bytes$", r"^nbytes$")),
    ("kb", (r"_kb$", r"^kb$")),
    ("mb", (r"_mb$", r"^mb$")),
    ("blocks", (r"_blocks$", r"^blocks$", r"^nblocks$")),
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved simlint configuration."""

    #: Default lint roots when the CLI is given no paths.
    paths: tuple[str, ...] = ("src/repro", "benchmarks")
    rule_paths: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_RULE_PATHS))
    allow_paths: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_ALLOW_PATHS))
    protected_attrs: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_PROTECTED_ATTRS))
    quantity_patterns: tuple[str, ...] = _DEFAULT_QUANTITY_PATTERNS
    sl06_sinks: tuple[str, ...] = _DEFAULT_SL06_SINKS
    sl06_state_paths: tuple[str, ...] = _DEFAULT_SL06_STATE_PATHS
    sl06_env_ok_prefixes: tuple[str, ...] = _DEFAULT_SL06_ENV_OK_PREFIXES
    unit_patterns: tuple[tuple[str, tuple[str, ...]], ...] = _DEFAULT_UNIT_PATTERNS

    def rule_applies(self, rule_id: str, path: str) -> bool:
        """True when ``rule_id`` is enforced for the file at ``path``.

        SL00 (suppression hygiene) is unconditional: a malformed pragma
        is a defect wherever it appears.
        """
        return (self.rule_in_scope(rule_id, path)
                and self.allow_entry_for(rule_id, path) is None)

    def rule_in_scope(self, rule_id: str, path: str) -> bool:
        """Scope check only, ignoring the allowlist (the engine applies
        allow entries at finding time so it can credit the entries that
        actually suppress something — SL08's staleness signal)."""
        if rule_id == "SL00":
            return True
        scopes = self.rule_paths.get(rule_id, ())
        return any(path_matches(path, scope) for scope in scopes)

    def allow_entry_for(self, rule_id: str, path: str) -> str | None:
        """The allowlist prefix exempting ``path`` from ``rule_id``, if any."""
        for ex in self.allow_paths.get(rule_id, ()):
            if path_matches(path, ex):
                return ex
        return None

    def quantity_regex(self) -> "re.Pattern[str]":
        return re.compile("|".join(f"(?:{p})" for p in self.quantity_patterns))

    def unit_matchers(self) -> tuple[tuple[str, "re.Pattern[str]"], ...]:
        """SL07 ``(unit, regex)`` pairs, in declaration (priority) order."""
        return tuple((unit, re.compile("|".join(f"(?:{p})" for p in pats),
                                       re.IGNORECASE))
                     for unit, pats in self.unit_patterns)


def path_matches(path: str, prefix: str) -> bool:
    """True when posix ``path`` contains ``prefix`` as a path prefix
    anchored at some directory boundary (``repro/cache`` matches
    ``src/repro/cache/lru.py`` but not ``src/repro/cache2/x.py``)."""
    hay = "/" + path.replace("\\", "/").strip("/") + "/"
    needle = "/" + prefix.replace("\\", "/").strip("/")
    return needle + "/" in hay or hay.endswith(needle + "/")


# -- pyproject loading --------------------------------------------------------

def _load_toml_table(pyproject: Path) -> dict[str, object]:
    """The ``[tool.simlint]`` table of ``pyproject.toml`` (may be empty)."""
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - exercised only on py<3.11
        return _fallback_parse(pyproject.read_text(encoding="utf-8"))
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    tool = data.get("tool", {})
    table = tool.get("simlint", {}) if isinstance(tool, dict) else {}
    return table if isinstance(table, dict) else {}


def _fallback_parse(text: str) -> dict[str, object]:
    """Parse the ``[tool.simlint]`` subset on interpreters without tomllib.

    Understands ``[tool.simlint]`` / ``[tool.simlint.<sub>]`` headers and
    ``key = ["a", "b"]`` / ``key = "a"`` entries, which is the entire
    grammar this project's configuration uses.  Multi-line arrays are
    joined before parsing.
    """
    table: dict[str, object] = {}
    section: str | None = None
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if '"' not in raw else raw.strip()
        if not line:
            continue
        header = re.match(r"^\[(.+?)\]$", line)
        if header:
            name = header.group(1).strip()
            if name == "tool.simlint":
                section = ""
            elif name.startswith("tool.simlint."):
                section = name[len("tool.simlint."):]
            else:
                section = None
            pending = ""
            continue
        if section is None:
            continue
        pending += " " + line
        if pending.count("[") > pending.count("]"):
            continue  # unterminated multi-line array
        entry = re.match(r'^\s*([\w.\-]+)\s*=\s*(.+)$', pending.strip())
        pending = ""
        if not entry:
            continue
        key, value = entry.group(1), entry.group(2).strip()
        parsed: object
        if value.startswith("["):
            parsed = re.findall(r'"((?:[^"\\]|\\.)*)"', value)
        else:
            literal = re.match(r'^"((?:[^"\\]|\\.)*)"', value)
            parsed = literal.group(1) if literal else value
        target = table
        if section:
            target = table.setdefault(section, {})  # type: ignore[assignment]
            if not isinstance(target, dict):  # pragma: no cover - defensive
                continue
        target[key] = parsed
    return table


def _as_tuple(value: object) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, Sequence):
        return tuple(str(v) for v in value)
    raise TypeError(f"expected string or list of strings, got {value!r}")


def _as_table(value: object, label: str) -> dict[str, tuple[str, ...]]:
    if not isinstance(value, dict):
        raise TypeError(f"[tool.simlint.{label}] must be a table")
    return {str(k): _as_tuple(v) for k, v in value.items()}


def load_config(root: Path | None = None) -> LintConfig:
    """Resolve configuration: code defaults overlaid by ``pyproject.toml``.

    ``root`` is the directory searched for ``pyproject.toml`` (defaults
    to the current working directory, then its parents).
    """
    base = (root or Path.cwd()).resolve()
    pyproject: Path | None = None
    for candidate in (base, *base.parents):
        if (candidate / "pyproject.toml").is_file():
            pyproject = candidate / "pyproject.toml"
            break
    if pyproject is None:
        return LintConfig()
    table = _load_toml_table(pyproject)
    kwargs: dict[str, object] = {}
    if "paths" in table:
        kwargs["paths"] = _as_tuple(table["paths"])
    if "rules" in table:
        merged = dict(_DEFAULT_RULE_PATHS)
        merged.update(_as_table(table["rules"], "rules"))
        kwargs["rule_paths"] = merged
    if "allow" in table:
        merged = dict(_DEFAULT_ALLOW_PATHS)
        merged.update(_as_table(table["allow"], "allow"))
        kwargs["allow_paths"] = merged
    if "protected" in table:
        merged = dict(_DEFAULT_PROTECTED_ATTRS)
        merged.update(_as_table(table["protected"], "protected"))
        kwargs["protected_attrs"] = merged
    if "quantity_patterns" in table:
        kwargs["quantity_patterns"] = _as_tuple(table["quantity_patterns"])
    if "sl06_sinks" in table:
        kwargs["sl06_sinks"] = _as_tuple(table["sl06_sinks"])
    if "sl06_state_paths" in table:
        kwargs["sl06_state_paths"] = _as_tuple(table["sl06_state_paths"])
    if "sl06_env_ok_prefixes" in table:
        kwargs["sl06_env_ok_prefixes"] = _as_tuple(table["sl06_env_ok_prefixes"])
    if "units" in table:
        # [tool.simlint.units] — unit name -> list of identifier regexes.
        # Declaration order in TOML is preserved by both parsers.
        kwargs["unit_patterns"] = tuple(
            _as_table(table["units"], "units").items())
    known = {f.name for f in fields(LintConfig)}
    return LintConfig(**{k: v for k, v in kwargs.items() if k in known})  # type: ignore[arg-type]
