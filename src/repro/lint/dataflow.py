"""Fixed-point interprocedural taint propagation for simlint v2 (SL06).

The engine computes, over the :class:`~repro.lint.callgraph.Program`, a
*summary* per function — the taint its return value generates, which
parameters flow to the return, which parameters reach a determinism sink
inside it, and which parameters it stores into object attributes — and
iterates the whole set to a fixed point (the lattice is finite and every
update is a monotone join, so iteration terminates; a pass cap guards
the degenerate case).  A final *report* pass re-walks every function
with the converged summaries and emits one finding per source→sink
flow, carrying the full witness path.

Sources (see :mod:`repro.lint.taint`): wall-clock reads, ambient
randomness, ``os.environ`` outside the sanctioned ``REPRO_*`` namespace,
and values whose *order* was born from a set.  Sinks: the configured
sink callables (event scheduling, trace emission, BENCH wrapping) plus
any assignment into simulation state (attribute/subscript stores inside
the state-bearing packages, and module globals there).

Iterating an unordered container additionally opens an *order context*:
every sink reached inside the loop body executes in nondeterministic
sequence even if its arguments are clean, so those sinks are tainted
too.  ``sorted()`` — or the same ``# simlint: ordered -- reason`` proof
comment SL01 honours — closes the context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from .callgraph import FunctionInfo, ModuleInfo, Program
from .config import LintConfig, path_matches
from .engine import FilePragmas
from .taint import (
    AMBIENT, CLEAN, EMPTY, ENVIRON, Taint, TaintStep, TaintValue, UNORDERED,
    WALLCLOCK,
)
from .rules import _DATETIME_AMBIENT, _NP_RANDOM_OK, _WALL_CLOCK

__all__ = ["FunctionSummary", "TaintAnalysis", "FlowFinding"]

_MAX_PASSES = 10

#: Builtins whose result does not depend on argument *order* or carry
#: the argument's taint onward (order-insensitive consumers).
_ORDER_INSENSITIVE = {
    "len", "min", "max", "any", "all", "bool", "isinstance", "issubclass",
    "hasattr", "getattr", "id", "type", "repr",
}
#: Callables that cleanse UNORDERED (they impose a deterministic order).
_ORDER_CLEANSERS = {"sorted"}
#: repro.sim.rng entry points: seeded by construction, outputs are clean.
_SEEDED_SOURCES = {"repro.sim.rng.stream", "repro.sim.rng.derive_seed"}


@dataclass
class SinkHit:
    """A parameter of a function reaching a sink inside it."""

    steps: tuple[TaintStep, ...]
    description: str


@dataclass
class FunctionSummary:
    """Converged dataflow facts about one function."""

    ret: TaintValue = field(default_factory=TaintValue)
    #: param index -> first-witness path from the param to a sink.
    param_sinks: dict[int, SinkHit] = field(default_factory=dict)


@dataclass(frozen=True)
class FlowFinding:
    """One source→sink flow, ready for the SL06 rule to report."""

    path: str
    line: int
    col: int
    label: str
    sink: str
    trace: tuple[TaintStep, ...]


def _qualname(node: ast.AST, mod: ModuleInfo) -> str | None:
    """Resolve a Name/Attribute chain against the module's imports."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = cur.id
    if base in mod.module_aliases:
        root = mod.module_aliases[base]
    elif base in mod.from_imports:
        root = mod.from_imports[base]
    else:
        return None
    return ".".join([root, *reversed(parts)]) if parts else root


class TaintAnalysis:
    """Whole-program taint propagation with per-function summaries."""

    def __init__(self, program: Program, config: LintConfig,
                 pragmas: Mapping[str, FilePragmas]):
        self.program = program
        self.config = config
        self.pragmas = pragmas
        self.summaries: dict[str, FunctionSummary] = {}
        #: (class qualname, attr) -> taint stored into it anywhere.
        self.attr_taint: dict[tuple[str, str], Taint] = {}
        #: (module, global name) -> taint stored at module level.
        self.global_taint: dict[tuple[str, str], Taint] = {}
        self.findings: list[FlowFinding] = []
        self._changed = False
        self._emit = False
        self._seen: set[tuple[str, int, str, str]] = set()
        #: (fn qualname, param idx) -> (literal strings seen, all literal?)
        self._param_literals: dict[tuple[str, int],
                                   tuple[frozenset[str], bool]] = {}

    # -- public entry -------------------------------------------------------
    def run(self) -> list[FlowFinding]:
        for _ in range(_MAX_PASSES):
            self._changed = False
            self._walk_program()
            if not self._changed:
                break
        self._emit = True
        self._walk_program()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.label))
        return self.findings

    def _walk_program(self) -> None:
        for name in sorted(self.program.modules):
            mod = self.program.modules[name]
            _FunctionWalk(self, mod, None).run_module_body()
            for fn in self.program.iter_functions(mod):
                _FunctionWalk(self, mod, fn).run()

    # -- shared state updates (monotone joins) ------------------------------
    def summary(self, fn: FunctionInfo) -> FunctionSummary:
        return self.summaries.setdefault(fn.qualname, FunctionSummary())

    def join_ret(self, fn: FunctionInfo, value: TaintValue) -> None:
        summ = self.summary(fn)
        joined = summ.ret.join(value)
        if joined != summ.ret:
            summ.ret = joined
            self._changed = True

    def join_param_sink(self, fn: FunctionInfo, idx: int, hit: SinkHit) -> None:
        summ = self.summary(fn)
        if idx not in summ.param_sinks:
            summ.param_sinks[idx] = hit
            self._changed = True

    def join_attr(self, cls_qual: str, attr: str, taint: Taint) -> None:
        key = (cls_qual, attr)
        cur = self.attr_taint.get(key, EMPTY)
        joined = cur.join(taint)
        if joined != cur:
            self.attr_taint[key] = joined
            self._changed = True

    def join_global(self, module: str, name: str, taint: Taint) -> None:
        key = (module, name)
        cur = self.global_taint.get(key, EMPTY)
        joined = cur.join(taint)
        if joined != cur:
            self.global_taint[key] = joined
            self._changed = True

    # -- findings -----------------------------------------------------------
    def report_flow(self, path: str, node: ast.AST, taint: Taint,
                    sink: str, tail: tuple[TaintStep, ...] = ()) -> None:
        if not self._emit or not taint:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        for label in sorted(taint.labels):
            key = (path, line, label, sink)
            if key in self._seen:
                continue
            self._seen.add(key)
            self.findings.append(FlowFinding(
                path=path, line=line, col=col, label=label, sink=sink,
                trace=taint.path(label) + tail,
            ))

    def param_literals(self, fn: FunctionInfo,
                       idx: int) -> tuple[frozenset[str], bool]:
        """Every string literal passed for ``fn``'s parameter ``idx``
        across the whole program, plus whether *all* observed arguments
        were literals.  Lets ``os.environ.get(name)`` with a parameter
        key be judged against the actual keys callers pass."""
        cache_key = (fn.qualname, idx)
        cached = self._param_literals.get(cache_key)
        if cached is not None:
            return cached
        literals: set[str] = set()
        all_literal = True

        def collect(mod: ModuleInfo, arg: ast.expr) -> None:
            nonlocal all_literal
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                literals.add(arg.value)
                return
            if isinstance(arg, ast.Name):
                lit = mod.str_constants.get(arg.id)
                if lit is not None:
                    literals.add(lit)
                    return
            all_literal = False

        for mod in self.program.modules.values():
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                ref = self.program.function_ref(mod, node.func)
                if ref is None or ref.qualname != fn.qualname:
                    continue
                for pos, arg in enumerate(node.args):
                    if ref.arg_param_index(node, pos=pos) == idx:
                        collect(mod, arg)
                for kw in node.keywords:
                    if kw.arg is not None \
                            and ref.arg_param_index(node, keyword=kw.arg) == idx:
                        collect(mod, kw.value)
        result = (frozenset(literals), all_literal)
        self._param_literals[cache_key] = result
        return result

    # -- configuration probes ----------------------------------------------
    def in_state_scope(self, path: str) -> bool:
        return any(path_matches(path, p) for p in self.config.sl06_state_paths)

    def sink_for_call(self, mod: ModuleInfo, call: ast.Call,
                      targets: list[FunctionInfo]) -> str | None:
        """The sink description if this call is a configured sink."""
        entries = self.config.sl06_sinks
        for target in targets:
            qual = target.qualname
            for entry in entries:
                if qual == entry or qual.endswith("." + entry):
                    return f"sink callable {entry}"
                # "Cls" entries designate constructors.
                if "." not in entry and qual.endswith(f".{entry}.__init__"):
                    return f"sink constructor {entry}()"
        if targets:
            return None  # resolved to a non-sink: trust the resolution
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name is not None:
            for entry in entries:
                head, _, meth = entry.rpartition(".")
                if meth == name and (head or isinstance(func, ast.Name)):
                    return f"sink callable {entry}"
        return None


class _FunctionWalk:
    """One intraprocedural pass over a function (or a module body)."""

    def __init__(self, analysis: TaintAnalysis, mod: ModuleInfo,
                 fn: FunctionInfo | None):
        self.a = analysis
        self.mod = mod
        self.fn = fn
        self.env: dict[str, TaintValue] = {}
        self.type_env: dict[str, str] = {}
        #: Taint of the enclosing unordered-iteration context (loop body
        #: executes in nondeterministic order).
        self.order_ctx: Taint = EMPTY
        if fn is not None:
            for i, name in enumerate(fn.params):
                self.env[name] = TaintValue.param(i)
                ann = fn.annotations.get(name)
                if ann:
                    cls = analysis.program.class_info(ann.split("[")[0], mod)
                    if cls is not None:
                        self.type_env[name] = cls.qualname

    # -- entry points -------------------------------------------------------
    def run(self) -> None:
        assert self.fn is not None
        body = getattr(self.fn.node, "body", [])
        self._exec_block(body)

    def run_module_body(self) -> None:
        stmts = [s for s in self.mod.tree.body
                 if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef, ast.Import, ast.ImportFrom))]
        self._exec_block(stmts)
        # Module-level names become global taint.
        for name, value in self.env.items():
            if value.taint:
                self.a.join_global(self.mod.name, name, value.taint)

    # -- statement execution ------------------------------------------------
    def _exec_block(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt)
            self._track_constructed(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt)
            if isinstance(stmt.target, ast.Name):
                ann = _ann_text(stmt.annotation)
                if ann:
                    cls = self.a.program.class_info(ann.split("[")[0], self.mod)
                    if cls is not None:
                        self.type_env[stmt.target.id] = cls.qualname
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value).join(self._eval(stmt.target))
            self._assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and self.fn is not None:
                value = self._eval(stmt.value)
                if value:
                    step = TaintStep(self.mod.path, stmt.lineno,
                                     f"returned from {self.fn.name}()")
                    self.a.join_ret(self.fn, value.with_step(step))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            # Two passes propagate loop-carried taint one level.
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, stmt)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Top-level functions and methods are indexed and walked
            # separately; a *nested* def is a closure over this scope,
            # so walk its body inline (params unknown → clean), keeping
            # writes to enclosing variables.
            if self.fn is not None:
                self._exec_nested_def(stmt)
        elif isinstance(stmt, ast.ClassDef):
            pass  # class bodies are indexed and walked separately
        # remaining statement kinds carry no dataflow we track

    def _exec_nested_def(self, stmt: "ast.FunctionDef | ast.AsyncFunctionDef",
                         ) -> None:
        args = stmt.args
        inner_params = [a.arg for a in (*args.posonlyargs, *args.args,
                                        *args.kwonlyargs)]
        shadowed = {p: self.env.get(p) for p in inner_params}
        for p in inner_params:
            self.env[p] = CLEAN
        try:
            self._exec_block(stmt.body)
        finally:
            for p, old in shadowed.items():
                if old is None:
                    self.env.pop(p, None)
                else:
                    self.env[p] = old

    def _exec_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        iterable = self._eval(stmt.iter)
        element = iterable
        opened_ctx = EMPTY
        # Only consult the pragma once the iterable is known unordered:
        # a successful lookup marks the pragma live for SL08.
        if UNORDERED in iterable.taint.labels:
            if self._has_ordered_pragma(stmt):
                element = iterable.without((UNORDERED,))
            else:
                step = TaintStep(self.mod.path, stmt.lineno,
                                 "iterated in nondeterministic order")
                opened_ctx = iterable.taint.only((UNORDERED,)).with_step(step)
        self._assign(stmt.target, element, stmt)
        saved = self.order_ctx
        self.order_ctx = self.order_ctx.join(opened_ctx)
        try:
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
        finally:
            self.order_ctx = saved
        self._exec_block(stmt.orelse)

    def _track_constructed(self, targets: list[ast.expr],
                           value: ast.expr) -> None:
        """``x = Cls(...)`` records x's class for method resolution."""
        if not (isinstance(value, ast.Call) and len(targets) == 1
                and isinstance(targets[0], ast.Name)):
            return
        resolved = self.a.program.resolve_call(self.mod, value,
                                               self.type_env, self.fn)
        for target_fn in resolved:
            if target_fn.name == "__init__" and target_fn.cls is not None:
                self.type_env[targets[0].id] = target_fn.cls.qualname
                return

    def _has_ordered_pragma(self, node: ast.AST) -> bool:
        pragmas = self.a.pragmas.get(self.mod.path)
        if pragmas is None:
            return False
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        return pragmas.ordered((first, last))

    # -- assignment targets -------------------------------------------------
    def _assign(self, target: ast.expr, value: TaintValue,
                stmt: ast.stmt) -> None:
        value = value.join(TaintValue(self.order_ctx))
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            if self.fn is None and value.taint:
                self.a.join_global(self.mod.name, target.id, value.taint)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._assign(inner, value, stmt)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, value, stmt)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._store_into_object(target, value, stmt)

    def _store_into_object(self, target: ast.Attribute | ast.Subscript,
                           value: TaintValue, stmt: ast.stmt) -> None:
        # Record attribute taint for self.<attr> stores.
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id in ("self", "cls") \
                and self.fn is not None and self.fn.cls is not None:
            if value.taint:
                step = TaintStep(self.mod.path, stmt.lineno,
                                 f"stored in {self.fn.cls.name}.{target.attr}")
                self.a.join_attr(self.fn.cls.qualname, target.attr,
                                 value.taint.with_step(step))
        # Any store into an object inside the state-bearing packages is a
        # sink: the value (or its ordering) becomes simulation state.
        if not self.a.in_state_scope(self.mod.path):
            return
        # Storing a directly-born set *as a set* is fine — membership
        # structures carry no order.  The hazard is materialized order
        # (list(set), iteration), which keeps the UNORDERED label.
        rhs = getattr(stmt, "value", None)
        if rhs is not None and _is_direct_set_expr(rhs):
            value = value.without((UNORDERED,))
        if not value or self._suppressed(stmt):
            return
        desc = "assignment into simulation state"
        if value.taint:
            self.a.report_flow(self.mod.path, stmt, value.taint, desc)
        if self.fn is not None:
            for idx, steps in value.param_deps.items():
                hit = SinkHit(
                    steps + (TaintStep(self.mod.path, stmt.lineno, desc),),
                    desc)
                self.a.join_param_sink(self.fn, idx, hit)

    def _suppressed(self, node: ast.AST) -> bool:
        """SL06 disable pragmas are honoured at the sink site."""
        pragmas = self.a.pragmas.get(self.mod.path)
        if pragmas is None:
            return False
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        return pragmas.disabled("SL06", (first, last))

    # -- expression evaluation ----------------------------------------------
    def _eval(self, expr: ast.expr | None) -> TaintValue:
        if expr is None:
            return CLEAN
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            taint = self.a.global_taint.get((self.mod.name, expr.id))
            if taint is not None:
                return TaintValue(taint)
            origin = self.mod.from_imports.get(expr.id)
            if origin is not None:
                owner, _, name = origin.rpartition(".")
                taint = self.a.global_taint.get((owner, name))
                if taint is not None:
                    return TaintValue(taint)
            return CLEAN
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Subscript):
            if self._is_environ(expr.value):
                return self._environ_taint(expr, expr.slice)
            return self._eval(expr.value).join(self._eval(expr.slice))
        if isinstance(expr, (ast.Set, ast.SetComp)):
            value = CLEAN
            if isinstance(expr, ast.Set):
                for elt in expr.elts:
                    value = value.join(self._eval(elt))
            else:
                value = self._eval_comprehension(expr)
            step = TaintStep(self.mod.path, expr.lineno, "set born here")
            return value.join(TaintValue(Taint.source(UNORDERED, step)))
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(expr)
        if isinstance(expr, (ast.List, ast.Tuple)):
            value = CLEAN
            for elt in expr.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                value = value.join(self._eval(inner))
            return value
        if isinstance(expr, ast.Dict):
            value = CLEAN
            for part in [*expr.keys, *expr.values]:
                if part is not None:
                    value = value.join(self._eval(part))
            return value
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left).join(self._eval(expr.right))
        if isinstance(expr, ast.BoolOp):
            value = CLEAN
            for operand in expr.values:
                value = value.join(self._eval(operand))
            return value
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Compare):
            value = self._eval(expr.left)
            for comparator in expr.comparators:
                value = value.join(self._eval(comparator))
            # Membership / equality against a set is order-insensitive.
            return value.without((UNORDERED,))
        if isinstance(expr, ast.IfExp):
            return (self._eval(expr.body).join(self._eval(expr.orelse))
                    .join(self._eval(expr.test)))
        if isinstance(expr, ast.JoinedStr):
            value = CLEAN
            for part in expr.values:
                if isinstance(part, ast.FormattedValue):
                    value = value.join(self._eval(part.value))
            return value
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value)
        if isinstance(expr, ast.Yield):
            return self._eval(expr.value) if expr.value else CLEAN
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value)
            self._assign(expr.target, value, ast.Expr(value=expr))
            return value
        return CLEAN  # constants, lambdas, ellipsis, ...

    def _eval_comprehension(self, expr: ast.AST) -> TaintValue:
        value = CLEAN
        unordered_iter = False
        src = CLEAN
        for gen in getattr(expr, "generators", []):
            it = self._eval(gen.iter)
            if UNORDERED in it.taint.labels:
                unordered_iter = True
                src = it
            self._assign(gen.target, it, ast.Expr(value=gen.iter))
            value = value.join(it)
        for attr in ("elt", "key", "value"):
            sub = getattr(expr, attr, None)
            if isinstance(sub, ast.expr):
                value = value.join(self._eval(sub))
        if unordered_iter and not isinstance(expr, (ast.SetComp, ast.DictComp)):
            step = TaintStep(self.mod.path, getattr(expr, "lineno", 1),
                             "materialized in set order")
            value = value.join(src.with_step(step))
        return value

    def _eval_attribute(self, expr: ast.Attribute) -> TaintValue:
        qual = _qualname(expr, self.mod)
        if qual is not None:
            source = self._source_for_qual(expr, qual, is_call=False)
            if source is not None:
                return source
        # self.<attr> loads pick up recorded attribute taint.
        if isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls") \
                and self.fn is not None and self.fn.cls is not None:
            taint = self.a.attr_taint.get((self.fn.cls.qualname, expr.attr))
            base = TaintValue(taint) if taint is not None else CLEAN
            return base
        return self._eval(expr.value)

    # -- calls ---------------------------------------------------------------
    def _eval_call(self, call: ast.Call) -> TaintValue:
        func = call.func
        # Builtin cleansers / order-insensitive consumers.
        if isinstance(func, ast.Name) and func.id not in self.mod.from_imports:
            if func.id in _ORDER_INSENSITIVE:
                for arg in call.args:
                    self._eval(arg)
                return CLEAN
            if func.id in _ORDER_CLEANSERS:
                value = CLEAN
                for arg in call.args:
                    value = value.join(self._eval(arg))
                return value.without((UNORDERED,))
            if func.id in ("set", "frozenset"):
                value = CLEAN
                for arg in call.args:
                    value = value.join(self._eval(arg))
                step = TaintStep(self.mod.path, call.lineno,
                                 f"{func.id}() born here")
                return value.join(TaintValue(Taint.source(UNORDERED, step)))

        qual = _qualname(func, self.mod)
        if qual is not None:
            source = self._source_for_qual(call, qual, is_call=True)
            if source is not None:
                return source
            if qual in _SEEDED_SOURCES:
                for arg in call.args:
                    self._eval(arg)
                return CLEAN
            if self._is_environ_qual(qual):
                key = call.args[0] if call.args else None
                return self._environ_taint(call, key)

        targets = self.a.program.resolve_call(self.mod, call, self.type_env,
                                              self.fn)
        arg_values = self._call_arg_values(call)
        self._check_call_sinks(call, targets, arg_values)

        result = CLEAN
        if targets:
            for target in targets:
                result = result.join(self._apply_summary(call, target,
                                                         arg_values))
        else:
            # Unknown callable: conservatively pass argument taint through.
            for _pos, _kw, value in arg_values:
                result = result.join(value)
            # A method call on a receiver keeps the receiver's taint too.
            if isinstance(func, ast.Attribute):
                result = result.join(self._eval(func.value))
        return result

    def _call_arg_values(self, call: ast.Call) \
            -> list[tuple[int | None, str | None, TaintValue]]:
        out: list[tuple[int | None, str | None, TaintValue]] = []
        for pos, arg in enumerate(call.args):
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            out.append((pos, None, self._eval(inner)))
        for kw in call.keywords:
            out.append((None, kw.arg, self._eval(kw.value)))
        return out

    def _check_call_sinks(self, call: ast.Call, targets: list[FunctionInfo],
                          arg_values: list[tuple[int | None, str | None,
                                                 TaintValue]]) -> None:
        sink = self.a.sink_for_call(self.mod, call, targets)
        if sink is not None:
            for _pos, _kw, value in arg_values:
                value = value.join(TaintValue(self.order_ctx))
                if not value or self._suppressed(call):
                    continue
                if value.taint:
                    step = TaintStep(self.mod.path, call.lineno,
                                     f"flows into {sink}")
                    self.a.report_flow(self.mod.path, call,
                                       value.taint.with_step(step), sink)
                if self.fn is not None:
                    for idx, steps in value.param_deps.items():
                        hit = SinkHit(
                            steps + (TaintStep(self.mod.path, call.lineno,
                                               f"flows into {sink}"),),
                            sink)
                        self.a.join_param_sink(self.fn, idx, hit)
            if not arg_values and self.order_ctx and not self._suppressed(call):
                step = TaintStep(self.mod.path, call.lineno,
                                 f"reaches {sink} in loop order")
                self.a.report_flow(self.mod.path, call,
                                   self.order_ctx.with_step(step), sink)
        # Summary-recorded sinks inside resolved callees.
        for target in targets:
            summ = self.a.summaries.get(target.qualname)
            if summ is None or not summ.param_sinks:
                continue
            for pos, kw, value in arg_values:
                value = value.join(TaintValue(self.order_ctx))
                idx = target.arg_param_index(call, pos=pos, keyword=kw)
                if idx is None or idx not in summ.param_sinks:
                    continue
                if not value or self._suppressed(call):
                    continue
                hit = summ.param_sinks[idx]
                if value.taint:
                    step = TaintStep(self.mod.path, call.lineno,
                                     f"passed to {target.name}()")
                    self.a.report_flow(self.mod.path, call, value.taint,
                                       hit.description,
                                       tail=(step, *hit.steps))
                if self.fn is not None:
                    for pidx, steps in value.param_deps.items():
                        chained = SinkHit(
                            steps + (TaintStep(self.mod.path, call.lineno,
                                               f"passed to {target.name}()"),)
                            + hit.steps,
                            hit.description)
                        self.a.join_param_sink(self.fn, pidx, chained)

    def _apply_summary(self, call: ast.Call, target: FunctionInfo,
                       arg_values: list[tuple[int | None, str | None,
                                              TaintValue]]) -> TaintValue:
        summ = self.a.summaries.get(target.qualname)
        if summ is None or not summ.ret:
            return CLEAN
        step = TaintStep(self.mod.path, call.lineno,
                         f"via call to {target.name}()")
        result = TaintValue(summ.ret.taint).with_step(step)
        for idx, ret_steps in summ.ret.param_deps.items():
            for pos, kw, value in arg_values:
                if target.arg_param_index(call, pos=pos, keyword=kw) == idx:
                    carried = value
                    for extra in ret_steps:
                        carried = carried.with_step(extra)
                    result = result.join(carried.with_step(step))
        return result

    # -- sources -------------------------------------------------------------
    def _source_for_qual(self, node: ast.AST, qual: str,
                         is_call: bool) -> TaintValue | None:
        line = getattr(node, "lineno", 1)
        if qual in _WALL_CLOCK or qual in _DATETIME_AMBIENT:
            step = TaintStep(self.mod.path, line, f"wall-clock read ({qual})")
            return TaintValue(Taint.source(WALLCLOCK, step))
        if qual.startswith("random.") and qual.count(".") == 1:
            if qual == "random.Random" and is_call:
                call = node if isinstance(node, ast.Call) else None
                if call is not None and call.args:
                    return CLEAN  # seeded local instance: deterministic
            step = TaintStep(self.mod.path, line,
                             f"ambient randomness ({qual})")
            return TaintValue(Taint.source(AMBIENT, step))
        if qual.startswith("numpy.random."):
            suffix = qual[len("numpy.random."):]
            if suffix == "default_rng" and is_call:
                call = node if isinstance(node, ast.Call) else None
                if call is not None and not call.args and not call.keywords:
                    step = TaintStep(self.mod.path, line,
                                     "unseeded default_rng()")
                    return TaintValue(Taint.source(AMBIENT, step))
                return CLEAN  # seeded generator: clean by construction
            if suffix and "." not in suffix and suffix not in _NP_RANDOM_OK:
                step = TaintStep(self.mod.path, line,
                                 f"ambient randomness ({qual})")
                return TaintValue(Taint.source(AMBIENT, step))
        if self._is_environ_qual(qual) and not is_call:
            # bare `os.environ` reference (e.g. passed around)
            return None
        return None

    def _is_environ_qual(self, qual: str) -> bool:
        return qual in ("os.environ.get", "os.getenv", "os.environb.get")

    def _is_environ(self, expr: ast.expr) -> bool:
        qual = _qualname(expr, self.mod)
        return qual in ("os.environ", "os.environb")

    def _environ_taint(self, node: ast.AST, key: ast.expr | None) -> TaintValue:
        prefixes = self.a.config.sl06_env_ok_prefixes
        literal: str | None = None
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            literal = key.value
        elif isinstance(key, ast.Name):
            literal = self.mod.str_constants.get(key.id)
            if literal is None:
                origin = self.mod.from_imports.get(key.id)
                if origin is not None:
                    owner, _, name = origin.rpartition(".")
                    owner_mod = self.a.program.modules.get(owner)
                    if owner_mod is not None:
                        literal = owner_mod.str_constants.get(name)
            if literal is None and self.fn is not None:
                # Key is this function's parameter: judge the literal
                # keys every caller actually passes.
                idx = self.fn.param_index(key.id)
                if idx is not None:
                    literals, all_literal = self.a.param_literals(self.fn, idx)
                    if all_literal and literals and all(
                            any(lit.startswith(p) for p in prefixes)
                            for lit in literals):
                        return CLEAN
        if literal is not None and any(
                literal.startswith(p) for p in prefixes):
            return CLEAN
        shown = literal if literal is not None else "<dynamic key>"
        step = TaintStep(self.mod.path, getattr(node, "lineno", 1),
                         f"environment read ({shown})")
        return TaintValue(Taint.source(ENVIRON, step))


def _is_direct_set_expr(expr: ast.expr) -> bool:
    """True for expressions that *are* a set: ``{...}``, a set
    comprehension, ``set(...)``/``frozenset(...)``, or a set-algebra
    combination of such."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("set", "frozenset"):
        return True
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_direct_set_expr(expr.left) or _is_direct_set_expr(expr.right)
    return False


def _ann_text(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        return ast.unparse(node).strip().strip("'\"")
    except Exception:  # pragma: no cover
        return None
