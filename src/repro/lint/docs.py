"""The simlint rule-doc table: one source of truth for rule docs.

``python -m repro.lint --explain SLxx`` renders an entry from this
table; ``--list-rules`` prints the id/title lines; DESIGN.md §16 and the
README rule table mirror it (a test asserts every id documented here
appears in both, so the docs cannot drift silently).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuleDoc", "RULE_DOCS", "rule_doc", "render_explain"]


@dataclass(frozen=True)
class RuleDoc:
    """Documentation for one rule: rationale, examples, pragma contract."""

    id: str
    title: str
    rationale: str
    good: str
    bad: str
    pragma: str


RULE_DOCS: tuple[RuleDoc, ...] = (
    RuleDoc(
        id="SL00",
        title="suppression hygiene: every pragma is well-formed and justified",
        rationale=(
            "A suppression is a hole in the determinism contract; an "
            "unexplained one is a hole nobody can audit.  Every "
            "`# simlint:` pragma must parse and carry `-- <reason>`."),
        good='x = now()  # simlint: disable=SL02 -- wall-clock ok: log label only',
        bad="x = now()  # simlint: disable=SL02",
        pragma="not suppressible — fix or delete the broken pragma",
    ),
    RuleDoc(
        id="SL01",
        title="no unordered set/dict-view iteration feeding simulation state",
        rationale=(
            "Set iteration order is hash order (randomized per process for "
            "str); dict views are insertion order.  One unordered loop in a "
            "repair or eviction path invalidates every pinned golden digest."),
        good="for node in sorted(ring.nodes()): repair(node)",
        bad="for node in ring.nodes(): repair(node)   # a set",
        pragma=("`# simlint: ordered -- <why the order is deterministic>` "
                "records a proof obligation; `disable=SL01` is the last resort"),
    ),
    RuleDoc(
        id="SL02",
        title="no wall-clock or ambient randomness outside repro.sim.rng",
        rationale=(
            "time.time()/random.random() make runs unrepeatable.  All "
            "stochastic inputs must come from seeded repro.sim.rng streams; "
            "all time must be simulated time."),
        good='rng = stream(seed, "arrivals"); dt = rng.exponential(mean)',
        bad="dt = random.expovariate(rate)",
        pragma=("`disable=SL02 -- <reason>` for sanctioned host-timing sites "
                "(benchmark harness wall timing, log timestamps)"),
    ),
    RuleDoc(
        id="SL03",
        title="no float ==/!= on simulated-time or byte quantities",
        rationale=(
            "Float equality on accumulated quantities (ages, deadlines, "
            "sizes) flips with summation order — the census-drift bug class.  "
            "Compare with tolerances or restructure to integers."),
        good="if abs(age - deadline) < 1e-9: ...",
        bad="if age == deadline: ...",
        pragma="`disable=SL03 -- <why exact equality is sound here>`",
    ),
    RuleDoc(
        id="SL04",
        title="no reach-ins to protected cache internals",
        rationale=(
            "The global census (paper §3.1) is correct only while every "
            "mutation of _masters/_nonmasters/_replicas goes through the "
            "owning module's API.  External attribute access bypasses the "
            "single code path the invariant checker audits."),
        good="cache.forget(block)",
        bad="cache._masters.pop(block)",
        pragma="`disable=SL04 -- <reason>` (tests that assert on internals)",
    ),
    RuleDoc(
        id="SL05",
        title="no mutable default arguments",
        rationale=(
            "A mutable default is shared across calls: state leaks between "
            "independent simulation runs, breaking run-to-run isolation."),
        good="def run(self, hooks=None): hooks = hooks or []",
        bad="def run(self, hooks=[]): ...",
        pragma="`disable=SL05 -- <reason>` (rarely justified)",
    ),
    RuleDoc(
        id="SL06",
        title="interprocedural nondeterminism taint into sim state or records",
        rationale=(
            "The whole-program layer tracks values born from unordered "
            "iteration, ambient randomness, wall-clock reads, or os.environ "
            "outside the REPRO_* knobs, through assignments, returns, and "
            "call edges.  Any such value reaching simulation state, trace "
            "output, or a BENCH record is an error even when the source and "
            "sink live in different modules; the report prints the full "
            "source→sink witness path."),
        good="self.order = sorted(node_ids(nodes))",
        bad="self.order = list(node_ids(nodes))   # node_ids returns a set",
        pragma=("`disable=SL06 -- <reason>` at the *sink* line; prefer "
                "fixing the source (sorted(), seeded rng, REPRO_* knob)"),
    ),
    RuleDoc(
        id="SL07",
        title="units-flow checking on *_ms/*_s/*_bytes/*_kb/*_mb/*_blocks names",
        rationale=(
            "A units lattice is inferred from naming conventions and checked "
            "across assignments, comparisons, +/- arithmetic, and call "
            "arguments (keyword names and resolved parameter names).  "
            "Mixing ms with s or bytes with blocks without an explicit "
            "conversion (* or /) is the config-knob bug class SL03 only "
            "catches at float-compare sites."),
        good="deadline_ms = now_ms + timeout_s * 1000.0",
        bad="deadline_ms = now_ms + timeout_s",
        pragma="`disable=SL07 -- <why the units agree>`",
    ),
    RuleDoc(
        id="SL08",
        title="stale suppressions: pragmas and allow entries must stay live",
        rationale=(
            "A pragma or [tool.simlint.allow] entry that no longer "
            "suppresses any finding is a hole that outlived its bug.  "
            "Flagging stale suppressions means the inventory can only "
            "shrink as the code improves."),
        good="(delete the pragma once the flagged code is gone)",
        bad="x = simulated_now()  # simlint: disable=SL02 -- leftover",
        pragma="not suppressible — delete the stale suppression instead",
    ),
    RuleDoc(
        id="SL09",
        title="no mutation of worker-reachable state after pool creation",
        rationale=(
            "Module globals reachable from a multiprocessing worker are "
            "snapshotted at an OS-dependent instant (fork time / pickle "
            "time).  Mutating one after the pool exists makes the sharded "
            "sweep's byte-identity depend on that instant."),
        good="CONFIG.update(opts)\nwith _pool_context(n) as pool: ...",
        bad="with _pool_context(n) as pool:\n    CONFIG.update(opts)",
        pragma="`disable=SL09 -- <why workers cannot observe the mutation>`",
    ),
)


def rule_doc(rule_id: str) -> RuleDoc | None:
    for doc in RULE_DOCS:
        if doc.id == rule_id.upper():
            return doc
    return None


def render_explain(doc: RuleDoc) -> str:
    """The ``--explain`` text for one rule."""
    return "\n".join([
        f"{doc.id}: {doc.title}",
        "",
        doc.rationale,
        "",
        "  good:",
        *(f"    {line}" for line in doc.good.splitlines()),
        "  bad:",
        *(f"    {line}" for line in doc.bad.splitlines()),
        "",
        f"  suppression: {doc.pragma}",
    ])
