"""simlint rule engine: pragma parsing, visitor dispatch, file walking.

The engine parses each file once (AST + token stream), builds a single
node-type -> handlers dispatch table from the registered rules, and
walks the tree once regardless of how many rules are active.  Rules
never see files outside their configured path scope.

Suppression contract (enforced — see :class:`~repro.lint.rules.SL00`):

``# simlint: disable=SL01 -- reason``
    Suppress the named rule(s) on this line.  The ``-- reason`` text is
    mandatory; a bare suppression is itself a finding.

``# simlint: ordered -- reason``
    Assert that the iteration flagged by SL01 on this line visits a
    container whose order is deterministic by construction (and say
    why).  This is deliberately distinct from ``disable=SL01``: it
    records a *proof obligation*, not an opt-out.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence

from .callgraph import Program
from .config import LintConfig
from .taint import TaintStep

__all__ = ["Finding", "FilePragmas", "LintContext", "ProjectContext",
           "ProjectRule", "Rule", "lint_source", "lint_paths"]

_PRAGMA_RE = re.compile(r"#\s*simlint\s*:\s*(?P<body>[^#]*)")
_RULE_ID_RE = re.compile(r"^SL\d{2}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``trace`` is the interprocedural witness path for whole-program
    findings (SL06): the ordered source→sink hops, rendered under the
    finding by the text reporter and serialized by the schema-2 JSON
    reporter.  Per-file findings leave it empty.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    trace: tuple[TaintStep, ...] = ()

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class _Pragma:
    line: int  # line the pragma governs (next code line for own-line comments)
    src_line: int  # line the comment physically sits on (for SL00 reports)
    kind: str  # "disable" | "ordered"
    rules: tuple[str, ...]  # empty for "ordered"
    justified: bool
    malformed: str | None = None  # message when unparsable


class FilePragmas:
    """Per-line suppression / ordering pragmas for one file.

    Every successful suppression is recorded in ``used`` (indices into
    ``raw``): SL08 reports any well-formed, justified pragma that never
    suppressed anything as stale.  Callers must therefore only consult
    :meth:`disabled` / :meth:`ordered` when a finding would otherwise be
    emitted, never speculatively.
    """

    def __init__(self, pragmas: Iterable[_Pragma]):
        self._disable: dict[int, list[tuple[int, frozenset[str]]]] = {}
        self._ordered: dict[int, list[int]] = {}
        self.raw: list[_Pragma] = list(pragmas)
        self.used: set[int] = set()
        for idx, p in enumerate(self.raw):
            if p.malformed or not p.justified:
                continue  # unusable pragmas never suppress anything
            if p.kind == "disable":
                self._disable.setdefault(p.line, []).append(
                    (idx, frozenset(p.rules)))
            elif p.kind == "ordered":
                self._ordered.setdefault(p.line, []).append(idx)

    def disabled(self, rule_id: str, lines: Iterable[int]) -> bool:
        hit = False
        for ln in lines:
            for idx, rules in self._disable.get(ln, ()):
                if rule_id in rules:
                    self.used.add(idx)
                    hit = True
        return hit

    def ordered(self, lines: Iterable[int]) -> bool:
        hit = False
        for ln in lines:
            for idx in self._ordered.get(ln, ()):
                self.used.add(idx)
                hit = True
        return hit


def _parse_pragmas(source: str) -> list[_Pragma]:
    """Extract pragmas; an own-line pragma governs the next code line.

    A pragma in a trailing comment applies to its own (logical start)
    line.  A pragma on a comment-only line applies to the first
    following line that holds code — the natural reading of a comment
    placed above the construct it justifies, and the only ergonomic
    option when the flagged line is already at the line-length limit.
    """
    src_lines = source.splitlines()

    def _effective_line(line: int) -> int:
        text = src_lines[line - 1].lstrip() if line <= len(src_lines) else ""
        if not text.startswith("#"):
            return line  # trailing comment: governs its own line
        nxt = line + 1
        while nxt <= len(src_lines):
            following = src_lines[nxt - 1].strip()
            if following and not following.startswith("#"):
                return nxt
            nxt += 1
        return line

    pragmas: list[_Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse fails first
        return pragmas
    for raw_line, text in comments:
        line = _effective_line(raw_line)
        m = _PRAGMA_RE.search(text)
        if m is None:
            continue
        body = m.group("body").strip()
        directive, sep, reason = body.partition("--")
        directive = directive.strip()
        justified = bool(sep) and bool(reason.strip())
        if directive.startswith("disable"):
            _, eq, spec = directive.partition("=")
            rules = tuple(r.strip() for r in spec.split(",") if r.strip())
            bad = [r for r in rules if not _RULE_ID_RE.match(r)]
            if not eq or not rules or bad:
                pragmas.append(_Pragma(line, raw_line, "disable", rules, justified,
                                       malformed="disable pragma must name rules, "
                                       "e.g. `# simlint: disable=SL01 -- reason`"))
            else:
                pragmas.append(_Pragma(line, raw_line, "disable", rules, justified))
        elif directive == "ordered":
            pragmas.append(_Pragma(line, raw_line, "ordered", (), justified))
        else:
            pragmas.append(_Pragma(line, raw_line, directive or "?", (), justified,
                                   malformed=f"unknown simlint pragma {directive!r}"))
    return pragmas


class LintContext:
    """Everything a rule needs about the file being checked."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: LintConfig, pragmas: FilePragmas):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.pragmas = pragmas
        self.findings: list[Finding] = []
        #: local alias -> imported module name ("np" -> "numpy")
        self.module_aliases: dict[str, str] = {}
        #: local name -> fully qualified origin ("now" -> "datetime.datetime.now")
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def node_lines(self, node: ast.AST) -> tuple[int, ...]:
        """Lines a pragma may sit on to govern ``node``: its first line
        and (for multi-line constructs) its last."""
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        return (first, last) if last != first else (first,)

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        """Record a finding unless a justified disable pragma covers it."""
        if self.pragmas.disabled(rule_id, self.node_lines(node)):
            return
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        ))


class Rule:
    """Base class for simlint rules.

    Subclasses set ``id``, write the rationale in the class docstring
    (surfaced by ``--list-rules``), and implement handlers named
    ``visit_<NodeType>``; the engine dispatches on AST node type.
    """

    id: str = "SL??"

    def handlers(self) -> Mapping[type[ast.AST], "list[object]"]:
        out: dict[type[ast.AST], list[object]] = {}
        for name in dir(self):
            if not name.startswith("visit_"):
                continue
            node_type = getattr(ast, name[len("visit_"):], None)
            if isinstance(node_type, type) and issubclass(node_type, ast.AST):
                out.setdefault(node_type, []).append(getattr(self, name))
        return out

    def begin_file(self, ctx: LintContext) -> None:
        """Hook called once per file before the walk (optional)."""


def _lint_file(path: str, source: str, config: LintConfig,
               rules: Sequence[Rule],
               credits: "set[tuple[str, str]] | None" = None,
               ) -> tuple[list[Finding], ast.Module | None, FilePragmas | None]:
    """Lint one file; returns (findings, tree, pragmas).

    Rules run on every file *in scope*; allowlist entries are applied to
    the resulting findings instead of skipping the file up front, so an
    entry that suppresses something earns a credit in ``credits`` (the
    signal SL08 uses to flag stale entries).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        return ([Finding(path, line, (exc.offset or 0) + 1, "SL00",
                         f"file does not parse: {exc.msg}")], None, None)
    except ValueError as exc:  # e.g. null bytes in the source text
        return ([Finding(path, 1, 1, "SL00",
                         f"file does not parse: {exc}")], None, None)
    pragmas = FilePragmas(_parse_pragmas(source))
    ctx = LintContext(path, source, tree, config, pragmas)

    active = [r for r in rules if config.rule_in_scope(r.id, path)]
    dispatch: dict[type[ast.AST], list[object]] = {}
    for rule in active:
        rule.begin_file(ctx)
        for node_type, fns in rule.handlers().items():
            dispatch.setdefault(node_type, []).extend(fns)

    if dispatch:
        for node in ast.walk(tree):
            for fn in dispatch.get(type(node), ()):
                fn(node, ctx)  # type: ignore[operator]

    # Suppression hygiene (SL00) runs last so it also covers pragmas
    # attached to lines no rule visited.
    for p in pragmas.raw:
        if p.malformed:
            ctx.findings.append(Finding(path, p.src_line, 1, "SL00", p.malformed))
        elif not p.justified:
            ctx.findings.append(Finding(
                path, p.src_line, 1, "SL00",
                "suppression lacks a justification: append `-- <reason>`"))

    kept: list[Finding] = []
    for f in ctx.findings:
        entry = config.allow_entry_for(f.rule, f.path)
        if entry is not None:
            if credits is not None:
                credits.add((f.rule, entry))
            continue
        kept.append(f)
    return sorted(kept, key=Finding.sort_key), tree, pragmas


def lint_source(path: str, source: str, config: LintConfig,
                rules: Sequence[Rule]) -> list[Finding]:
    """Lint one file's source text; returns sorted findings."""
    findings, _tree, _pragmas = _lint_file(path, source, config, rules)
    return findings


class ProjectContext:
    """Everything a whole-program rule needs about the lint run.

    ``requested`` is the set of files the user asked to lint; the
    program index may be wider (it always covers the configured default
    paths so cross-module taint is complete even on partial runs), but
    findings are only emitted for requested files.
    """

    def __init__(self, program: Program, config: LintConfig,
                 trees: Mapping[str, ast.Module],
                 pragmas: Mapping[str, FilePragmas],
                 requested: "set[str]", full_run: bool,
                 allow_credits: "set[tuple[str, str]]"):
        self.program = program
        self.config = config
        self.trees = dict(trees)
        self.pragmas = dict(pragmas)
        self.requested = requested
        self.full_run = full_run
        self.allow_credits = allow_credits
        self.findings: list[Finding] = []

    def report(self, rule_id: str, path: str, line: int, col: int,
               message: str, trace: tuple[TaintStep, ...] = (),
               pragma_lines: "tuple[int, ...] | None" = None) -> None:
        """Record a finding, honouring scope, allowlist, and pragmas."""
        if path not in self.requested:
            return
        if not self.config.rule_in_scope(rule_id, path):
            return
        entry = self.config.allow_entry_for(rule_id, path)
        if entry is not None:
            self.allow_credits.add((rule_id, entry))
            return
        prag = self.pragmas.get(path)
        if prag is not None and prag.disabled(rule_id, pragma_lines or (line,)):
            return
        self.findings.append(Finding(path, line, col, rule_id, message,
                                     trace=trace))


class ProjectRule:
    """Base class for whole-program rules (SL06–SL09).

    Unlike :class:`Rule`, a project rule sees the entire
    :class:`~repro.lint.callgraph.Program` at once and reports through
    :meth:`ProjectContext.report`.  Rules run in list order; SL08 must
    run last because it audits the suppression usage the others record.
    """

    id: str = "SL??"

    def check(self, ctx: ProjectContext) -> None:
        raise NotImplementedError


def iter_python_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for p in paths:
        path = Path(p)
        if path.is_dir():
            for f in sorted(path.rglob("*.py")):
                seen.setdefault(f, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def lint_paths(paths: Iterable[str], config: LintConfig,
               rules: Sequence[Rule],
               project_rules: Sequence[ProjectRule] = (),
               full_run: bool = False) -> tuple[list[Finding], int]:
    """Lint every ``*.py`` under ``paths``; returns (findings, files_checked).

    When ``project_rules`` are given, a whole-program index is built
    over the union of the requested files and the configured default
    paths (so cross-module flows resolve even when linting a subset)
    and each project rule runs once.  ``full_run`` additionally enables
    the suppression-staleness audit (SL08), which is only meaningful
    when every rule ran over the full configured file set.
    """
    files = iter_python_files(paths)
    findings: list[Finding] = []
    credits: set[tuple[str, str]] = set()
    trees: dict[str, ast.Module] = {}
    pragma_map: dict[str, FilePragmas] = {}
    requested: set[str] = set()
    for f in files:
        rel = f.as_posix()
        requested.add(rel)
        fnd, tree, pragmas = _lint_file(rel, f.read_text(encoding="utf-8"),
                                        config, rules, credits)
        findings.extend(fnd)
        if tree is not None and pragmas is not None:
            trees[rel] = tree
            pragma_map[rel] = pragmas
    if project_rules:
        for extra in iter_python_files(config.paths):
            rel = extra.as_posix()
            if rel in requested or not extra.is_file():
                continue
            try:
                tree = ast.parse(extra.read_text(encoding="utf-8"),
                                 filename=rel)
            except (SyntaxError, OSError):  # pragma: no cover - defensive
                continue
            trees[rel] = tree
            pragma_map[rel] = FilePragmas(_parse_pragmas(
                extra.read_text(encoding="utf-8")))
        program = Program(sorted(trees.items()))
        ctx = ProjectContext(program, config, trees, pragma_map,
                             requested, full_run, credits)
        for rule in project_rules:
            rule.check(ctx)
        findings.extend(ctx.findings)
    return sorted(findings, key=Finding.sort_key), len(files)
