"""Whole-program simlint rules SL06–SL09 (the v2 layer).

These rules run once per lint run over the
:class:`~repro.lint.callgraph.Program` index rather than once per file:

* **SL06** — interprocedural nondeterminism taint: delegates to the
  fixed-point engine in :mod:`repro.lint.dataflow` and turns each
  source→sink flow into a finding carrying the full witness path.
* **SL07** — units flow: infers a unit (ms, s, bytes, kb, mb, blocks,
  per_s) for names/attributes/call results from naming conventions and
  flags assignments, comparisons, ``+``/``-`` arithmetic, and call
  arguments that mix incompatible units.  Multiplication and division
  count as explicit conversions and reset the unit.
* **SL08** — stale suppressions: any well-formed, justified pragma that
  suppressed nothing this run, and any ``[tool.simlint.allow]`` entry
  that exempted nothing, is itself a finding.  Runs last (it audits the
  usage the other rules record) and only on full runs.
* **SL09** — cross-process mutation: module globals reachable from a
  ``multiprocessing`` worker function that are mutated lexically after
  the pool is created — workers snapshot state at an OS-dependent
  instant, so such mutations break sharded-sweep byte-identity.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from .callgraph import FunctionInfo, ModuleInfo, Program, module_name_for
from .dataflow import TaintAnalysis
from .engine import Finding, ProjectContext, ProjectRule
from .taint import AMBIENT, ENVIRON, UNORDERED, WALLCLOCK

__all__ = ["SL06", "SL07", "SL08", "SL09", "all_project_rules"]

_LABEL_DESC = {
    UNORDERED: "hash-order-dependent",
    AMBIENT: "ambient-random",
    WALLCLOCK: "wall-clock-derived",
    ENVIRON: "environment-derived",
}


class SL06(ProjectRule):
    """Interprocedural nondeterminism taint (see docs.RULE_DOCS)."""

    id = "SL06"

    def check(self, ctx: ProjectContext) -> None:
        analysis = TaintAnalysis(ctx.program, ctx.config, ctx.pragmas)
        for flow in analysis.run():
            src = flow.trace[0] if flow.trace else None
            origin = f"{src.path}:{src.line}" if src is not None else "unknown"
            ctx.report(
                "SL06", flow.path, flow.line, flow.col,
                f"{_LABEL_DESC.get(flow.label, flow.label)} value "
                f"(source {origin}) flows into {flow.sink}; "
                f"source→sink path attached",
                trace=flow.trace)


class SL07(ProjectRule):
    """Units-flow checking from naming conventions (see docs.RULE_DOCS)."""

    id = "SL07"

    def check(self, ctx: ProjectContext) -> None:
        matchers = ctx.config.unit_matchers()
        for path in sorted(ctx.requested):
            tree = ctx.trees.get(path)
            if tree is None or not ctx.config.rule_in_scope(self.id, path):
                continue
            mod = ctx.program.modules.get(module_name_for(path))
            _UnitWalk(ctx, path, tree, mod, matchers).run()


_CONVERTER_NAME_RE = re.compile(r"_(for|from|to)_")


class _UnitWalk:
    """One file's units-flow pass."""

    def __init__(self, ctx: ProjectContext, path: str, tree: ast.Module,
                 mod: ModuleInfo | None,
                 matchers: "tuple[tuple[str, re.Pattern[str]], ...]"):
        self.ctx = ctx
        self.path = path
        self.tree = tree
        self.mod = mod
        self.matchers = matchers
        self._seen: set[tuple[int, int, str]] = set()

    def run(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_pair(node, target, node.value, "assignment")
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._check_pair(node, node.target, node.value, "assignment")
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_pair(node, node.target, node.value, "augmented assignment")
            elif isinstance(node, ast.BinOp) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_pair(node, node.left, node.right, "arithmetic")
            elif isinstance(node, ast.Compare):
                if not any(isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot))
                           for op in node.ops):
                    left = node.left
                    for comparator in node.comparators:
                        self._check_pair(node, left, comparator, "comparison")
                        left = comparator
            elif isinstance(node, ast.Call):
                self._check_call(node)

    # -- unit inference -----------------------------------------------------
    def unit_of(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return self.unit_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return self.unit_name(expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name is None:
                return None
            # `blocks_for_mb(...)` / `ms_from_s(...)` naming marks the
            # call as a unit conversion: its result unit is whatever the
            # callee documents, not the suffix the regexes would match.
            if _CONVERTER_NAME_RE.search(name):
                return None
            return self.unit_name(name)
        if isinstance(expr, ast.Subscript):
            return self.unit_of(expr.value)
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand)
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                # mismatched operands are reported at the BinOp itself
                return self.unit_of(expr.left) or self.unit_of(expr.right)
            return None  # * / // % ** are explicit conversions
        if isinstance(expr, ast.IfExp):
            body, orelse = self.unit_of(expr.body), self.unit_of(expr.orelse)
            return body if body == orelse else None
        return None

    def unit_name(self, ident: str) -> str | None:
        for unit, rx in self.matchers:
            if rx.search(ident):
                return unit
        return None

    # -- checks -------------------------------------------------------------
    def _check_pair(self, node: ast.AST, left: ast.expr, right: ast.expr,
                    kind: str) -> None:
        lu, ru = self.unit_of(left), self.unit_of(right)
        if lu is None or ru is None or lu == ru:
            return
        self._report(node,
                     f"{kind} mixes units: {_describe(left)} [{lu}] vs "
                     f"{_describe(right)} [{ru}]; convert explicitly "
                     f"(*/ factor) or rename")

    def _check_call(self, call: ast.Call) -> None:
        # Keyword arguments carry their unit in the keyword name itself.
        for kw in call.keywords:
            if kw.arg is None:
                continue
            ku, vu = self.unit_name(kw.arg), self.unit_of(kw.value)
            if ku is not None and vu is not None and ku != vu:
                self._report(call,
                             f"argument {kw.arg}= [{ku}] receives "
                             f"{_describe(kw.value)} [{vu}]; convert "
                             f"explicitly or rename")
        # Positional arguments need the resolved parameter name.
        if self.mod is None:
            return
        targets = self.ctx.program.resolve_call(self.mod, call, None, None)
        if len(targets) != 1:
            return
        target = targets[0]
        for pos, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            idx = target.arg_param_index(call, pos=pos)
            if idx is None:
                continue
            pu = self.unit_name(target.params[idx])
            au = self.unit_of(arg)
            if pu is not None and au is not None and pu != au:
                self._report(call,
                             f"parameter {target.params[idx]} [{pu}] of "
                             f"{target.name}() receives {_describe(arg)} "
                             f"[{au}]; convert explicitly or rename")

    def _report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        key = (line, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        first = line
        last = getattr(node, "end_lineno", None) or first
        self.ctx.report("SL07", self.path, line, col, message,
                        pragma_lines=(first, last) if last != first else (first,))


def _describe(expr: ast.expr) -> str:
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


class SL08(ProjectRule):
    """Stale suppressions (see docs.RULE_DOCS).  Must run last."""

    id = "SL08"

    def check(self, ctx: ProjectContext) -> None:
        if not ctx.full_run:
            return  # partial runs cannot prove a suppression dead
        for path in sorted(ctx.pragmas):
            if path not in ctx.requested \
                    or not ctx.config.rule_in_scope(self.id, path):
                continue
            prag = ctx.pragmas[path]
            for idx, p in enumerate(prag.raw):
                if p.malformed or not p.justified or idx in prag.used:
                    continue
                what = (f"disable={','.join(p.rules)}" if p.kind == "disable"
                        else p.kind)
                ctx.findings.append(Finding(
                    path, p.src_line, 1, self.id,
                    f"stale suppression: `# simlint: {what}` no longer "
                    f"suppresses any finding — remove it"))
        for rule_id in sorted(ctx.config.allow_paths):
            for prefix in ctx.config.allow_paths[rule_id]:
                if (rule_id, prefix) not in ctx.allow_credits:
                    ctx.findings.append(Finding(
                        "pyproject.toml", 1, 1, self.id,
                        f"stale allow entry: [tool.simlint.allow] {rule_id} "
                        f'lists "{prefix}" but it suppresses nothing — '
                        f"remove it"))


# -- SL09 ---------------------------------------------------------------------

_POOL_NAME_RE = re.compile(r"pool", re.IGNORECASE)
_SUBMIT_METHODS = frozenset({
    "map", "map_async", "imap", "imap_unordered",
    "apply", "apply_async", "starmap", "starmap_async",
})
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
})


class SL09(ProjectRule):
    """Cross-process mutation after pool creation (see docs.RULE_DOCS)."""

    id = "SL09"

    def check(self, ctx: ProjectContext) -> None:
        for path in sorted(ctx.trees):
            if path not in ctx.requested \
                    or not ctx.config.rule_in_scope(self.id, path):
                continue
            mod = ctx.program.modules.get(module_name_for(path))
            if mod is None:
                continue
            for fn in ctx.program.iter_functions(mod):
                self._check_function(ctx, mod, fn)

    def _check_function(self, ctx: ProjectContext, mod: ModuleInfo,
                        fn: FunctionInfo) -> None:
        pools = _pool_bindings(fn.node)
        if not pools:
            return
        submissions = _submissions(ctx.program, mod, fn, set(pools))
        if not submissions:
            return
        shared: set[tuple[str, str]] = set()
        workers: dict[tuple[str, str], str] = {}
        for worker in submissions:
            for key in _reachable_globals(ctx.program, worker):
                shared.add(key)
                workers.setdefault(key, worker.name)
        if not shared:
            return
        creation_line = min(pools.values())
        fn_locals = _local_names(fn.node) | set(fn.params)
        for node in ast.walk(fn.node):
            key = _mutation_target(mod, node, skip=fn_locals)
            if key is None or key not in shared:
                continue
            line = getattr(node, "lineno", 0)
            if line <= creation_line:
                continue
            first = line
            last = getattr(node, "end_lineno", None) or first
            ctx.report(
                self.id, mod.path, line,
                getattr(node, "col_offset", 0) + 1,
                f"{key[1]} is reachable from worker {workers[key]}() but "
                f"mutated after the pool is created (line {creation_line}); "
                f"workers snapshot state at an OS-dependent instant",
                pragma_lines=(first, last) if last != first else (first,))


def _pool_bindings(fn_node: ast.AST) -> dict[str, int]:
    """Local names bound to a pool, with the creation line."""
    pools: dict[str, int] = {}
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_pool_call(item.context_expr) \
                        and isinstance(item.optional_vars, ast.Name):
                    pools.setdefault(item.optional_vars.id, node.lineno)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_pool_call(node.value):
            pools.setdefault(node.targets[0].id, node.lineno)
    return pools


def _is_pool_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name is not None and _POOL_NAME_RE.search(name) is not None


def _submissions(program: Program, mod: ModuleInfo, fn: FunctionInfo,
                 pool_names: "set[str]") -> list[FunctionInfo]:
    """Worker functions handed to ``pool.map``-style submission calls."""
    out: list[FunctionInfo] = []
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_names
                and node.func.attr in _SUBMIT_METHODS
                and node.args):
            continue
        worker = program.function_ref(mod, node.args[0])
        if worker is not None:
            out.append(worker)
    return out


def _module_global_names(tree: ast.Module) -> "set[str]":
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) \
                and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _local_names(fn_node: ast.AST) -> "set[str]":
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.difference_update(node.names)
    return names


def _global_key(program: Program, mod: ModuleInfo,
                name: str) -> "tuple[str, str] | None":
    """Resolve a name to (module, global) if it denotes module state."""
    if name in _module_global_names(mod.tree):
        return (mod.name, name)
    origin = mod.from_imports.get(name)
    if origin:
        owner, _, gname = origin.rpartition(".")
        owner_mod = program.modules.get(owner)
        if owner_mod is not None and gname in _module_global_names(owner_mod.tree):
            return (owner, gname)
    return None


def _reachable_globals(program: Program, worker: FunctionInfo,
                       max_depth: int = 3) -> "set[tuple[str, str]]":
    """Module globals a worker (or its program-local callees) reads."""
    out: set[tuple[str, str]] = set()
    seen: set[str] = set()
    stack: list[tuple[FunctionInfo, int]] = [(worker, 0)]
    while stack:
        fn, depth = stack.pop()
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        mod = program.modules.get(fn.module)
        if mod is None:
            continue
        locals_ = _local_names(fn.node) | set(fn.params)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and node.id not in locals_:
                key = _global_key(program, mod, node.id)
                if key is not None:
                    out.add(key)
            elif isinstance(node, ast.Call) and depth < max_depth:
                for target in program.resolve_call(mod, node, None, fn):
                    stack.append((target, depth + 1))
    return out


def _mutation_target(mod: ModuleInfo, node: ast.AST,
                     skip: "set[str] | None" = None,
                     ) -> "tuple[str, str] | None":
    """The (module, global) this statement mutates, if any.

    Covers ``g.attr = ...`` / ``g[...] = ...`` stores, ``g += ...`` on a
    declared global, and mutating method calls like ``g.update(...)``.
    Names in ``skip`` are locals shadowing the global and never match.
    """
    def base_name(expr: ast.expr) -> str | None:
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    candidates: list[str] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                name = base_name(target)
                if name:
                    candidates.append(name)
    elif isinstance(node, ast.AugAssign):
        name = base_name(node.target) if isinstance(
            node.target, (ast.Attribute, ast.Subscript)) else None
        if name:
            candidates.append(name)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _MUTATING_METHODS:
        name = base_name(node.func.value)
        if name:
            candidates.append(name)
    for name in candidates:
        # Only module-level state counts; locals shadow it.
        if skip is not None and name in skip:
            continue
        from_mod = _global_key_cached(mod, name)
        if from_mod is not None:
            return from_mod
    return None


_GLOBAL_NAME_CACHE: dict[int, "set[str]"] = {}


def _global_key_cached(mod: ModuleInfo, name: str) -> "tuple[str, str] | None":
    names = _GLOBAL_NAME_CACHE.get(id(mod.tree))
    if names is None:
        names = _module_global_names(mod.tree)
        _GLOBAL_NAME_CACHE[id(mod.tree)] = names
    if name in names:
        return (mod.name, name)
    origin = mod.from_imports.get(name)
    if origin:
        owner, _, gname = origin.rpartition(".")
        return (owner, gname)
    return None


def all_project_rules() -> "tuple[ProjectRule, ...]":
    """Fresh instances of every whole-program rule; SL08 stays last."""
    return (SL06(), SL07(), SL09(), SL08())
