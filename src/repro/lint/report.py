"""simlint reporters: human text and machine-readable JSON.

The JSON document is versioned (``schema``) so CI consumers can gate on
shape changes; the text reporter is the default for humans and mirrors
the ``path:line:col: RULE message`` convention of ruff/mypy so editors
pick the locations up.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .engine import Finding

__all__ = ["render_text", "to_json_dict", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One line per finding plus a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    ]
    noun = "file" if files_checked == 1 else "files"
    if findings:
        by_rule = _count_by_rule(findings)
        breakdown = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
        lines.append(
            f"simlint: {len(findings)} finding(s) in {files_checked} {noun} "
            f"({breakdown})")
    else:
        lines.append(f"simlint: clean ({files_checked} {noun} checked)")
    return "\n".join(lines)


def _count_by_rule(findings: Sequence[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return counts


def to_json_dict(findings: Sequence[Finding], files_checked: int) -> dict[str, Any]:
    """Versioned JSON document for CI artifacts and tooling."""
    items: list[dict[str, Any]] = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "message": f.message,
        }
        for f in findings
    ]
    return {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "simlint",
        "findings": items,
        "summary": {
            "files_checked": files_checked,
            "findings": len(items),
            "by_rule": _count_by_rule(findings),
        },
    }
