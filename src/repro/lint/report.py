"""simlint reporters: human text and machine-readable JSON.

The JSON document is versioned (``schema``) so CI consumers can gate on
shape changes; the text reporter is the default for humans and mirrors
the ``path:line:col: RULE message`` convention of ruff/mypy so editors
pick the locations up.

Schema 2 (simlint v2) adds a ``trace`` array per finding: the ordered
source→sink witness hops of a whole-program flow (SL06), each hop a
``{path, line, note}`` object.  Per-file findings carry an empty array.
``findings_from_json`` round-trips the document back into
:class:`~repro.lint.engine.Finding` objects for tooling and tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .engine import Finding
from .taint import TaintStep

__all__ = ["render_text", "to_json_dict", "findings_from_json",
           "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 2


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One line per finding (plus its witness path) and a summary line."""
    lines: list[str] = []
    for f in findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}")
        for i, step in enumerate(f.trace):
            arrow = "└─" if i == len(f.trace) - 1 else "├─"
            lines.append(f"    {arrow} {step.render()}")
    noun = "file" if files_checked == 1 else "files"
    if findings:
        by_rule = _count_by_rule(findings)
        breakdown = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
        lines.append(
            f"simlint: {len(findings)} finding(s) in {files_checked} {noun} "
            f"({breakdown})")
    else:
        lines.append(f"simlint: clean ({files_checked} {noun} checked)")
    return "\n".join(lines)


def _count_by_rule(findings: Sequence[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return counts


def to_json_dict(findings: Sequence[Finding], files_checked: int) -> dict[str, Any]:
    """Versioned JSON document for CI artifacts and tooling."""
    items: list[dict[str, Any]] = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "message": f.message,
            "trace": [
                {"path": s.path, "line": s.line, "note": s.note}
                for s in f.trace
            ],
        }
        for f in findings
    ]
    return {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "simlint",
        "findings": items,
        "summary": {
            "files_checked": files_checked,
            "findings": len(items),
            "by_rule": _count_by_rule(findings),
        },
    }


def findings_from_json(doc: dict[str, Any]) -> list[Finding]:
    """Rehydrate findings from a schema-2 JSON document (round-trip)."""
    schema = doc.get("schema")
    if schema != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported simlint report schema {schema!r}; "
            f"expected {JSON_SCHEMA_VERSION}")
    out: list[Finding] = []
    for item in doc.get("findings", []):
        trace = tuple(
            TaintStep(path=str(s["path"]), line=int(s["line"]),
                      note=str(s["note"]))
            for s in item.get("trace", ()))
        out.append(Finding(
            path=str(item["path"]), line=int(item["line"]),
            col=int(item["col"]), rule=str(item["rule"]),
            message=str(item["message"]), trace=trace))
    return out
