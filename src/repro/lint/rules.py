"""simlint rules SL01–SL05.

Each rule protects one leg of the simulator's determinism contract; the
class docstring is the rationale shown by ``python -m repro.lint
--list-rules`` and mirrored in DESIGN.md §16.  Findings are resolved by
*fixing* the code, by wrapping the iteration in ``sorted()``, by an
``# simlint: ordered -- reason`` proof comment (SL01), or — last resort
— by ``# simlint: disable=RULE -- reason``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .engine import LintContext, Rule

__all__ = ["SL01", "SL02", "SL03", "SL04", "SL05", "all_rules"]


def _qualname(node: ast.AST, ctx: LintContext) -> str | None:
    """Resolve a Name/Attribute chain to a dotted module-qualified name."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = cur.id
    if base in ctx.module_aliases:
        root = ctx.module_aliases[base]
    elif base in ctx.from_imports:
        root = ctx.from_imports[base]
    else:
        return None
    return ".".join([root, *reversed(parts)]) if parts else root


class SL01(Rule):
    """No unordered ``set``/``dict``-view iteration feeding simulation state.

    Iteration order over dict views is insertion order and over sets is
    hash order; both are invisible inputs to the event schedule.  One
    such loop in a repair or eviction path silently invalidates every
    pinned golden digest.  Inside the state-bearing packages, every loop
    over ``.keys()``/``.values()``/``.items()`` or over a set must either
    go through ``sorted()`` or carry an ``# simlint: ordered -- reason``
    comment proving the order is deterministic by construction.
    """

    id = "SL01"

    def _check_iter(self, owner: ast.AST, it: ast.expr, ctx: LintContext) -> None:
        label = self._unordered_label(it, ctx)
        if label is None:
            return
        lines = set(ctx.node_lines(owner)) | set(ctx.node_lines(it))
        if ctx.pragmas.ordered(lines):
            return
        ctx.report(self.id, it,
                   f"iteration over {label} feeds simulation state; wrap in "
                   "sorted() or add `# simlint: ordered -- <why the order is "
                   "deterministic>`")

    # Wrappers that preserve their argument's iteration order — an
    # unordered source stays unordered through them.
    _TRANSPARENT = ("enumerate", "zip", "reversed", "iter", "chain")
    # Order-sensitive consumers: the result (or float accumulation
    # order) depends on iteration order.  min/max/any/all/len are
    # order-insensitive and deliberately not listed.
    _CONSUMERS = ("list", "tuple", "sum")

    @classmethod
    def _unordered_label(cls, it: ast.expr, ctx: LintContext) -> str | None:
        if isinstance(it, ast.Call) and not it.args and not it.keywords \
                and isinstance(it.func, ast.Attribute) \
                and it.func.attr in ("keys", "values", "items"):
            return f"a dict .{it.func.attr}() view"
        if isinstance(it, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id not in ctx.from_imports:
            if it.func.id in ("set", "frozenset"):
                return f"a {it.func.id}()"
            if it.func.id in cls._TRANSPARENT:
                for arg in it.args:
                    label = cls._unordered_label(arg, ctx)
                    if label is not None:
                        return f"{label} (through {it.func.id}())"
        return None

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        self._check_iter(node, node.iter, ctx)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Order-sensitive consumers applied directly to an unordered view
        (``list(d.values())``, ``sum(ages.values())``)."""
        if not (isinstance(node.func, ast.Name)
                and node.func.id in self._CONSUMERS
                and node.func.id not in ctx.from_imports):
            return
        for arg in node.args:
            self._check_iter(node, arg, ctx)

    def _visit_comp(self, node: ast.AST, ctx: LintContext) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iter(node, gen.iter, ctx)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock",
}
_DATETIME_AMBIENT = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
# numpy.random attributes that are *types/constructors*, not draws from
# the ambient global state.  default_rng is checked at the call site.
_NP_RANDOM_OK = {
    "Generator", "SeedSequence", "BitGenerator", "RandomState",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "default_rng",
}


class SL02(Rule):
    """No wall-clock or ambient randomness outside ``repro.sim.rng``.

    Wall-clock reads (``time.time``, ``datetime.now``) and ambient RNG
    state (bare ``random.*``, ``numpy.random.*`` module functions, or an
    unseeded ``default_rng()``) make results depend on when and in what
    process order the simulator runs.  All randomness must flow from
    :func:`repro.sim.rng.stream`-derived ``Generator`` objects threaded
    through constructors.
    """

    id = "SL02"

    def _flag(self, node: ast.AST, ctx: LintContext, qual: str, what: str) -> None:
        ctx.report(self.id, node,
                   f"{what} ({qual}) breaks run-to-run determinism; derive "
                   "randomness/time from repro.sim.rng streams or the sim clock")

    def visit_Attribute(self, node: ast.Attribute, ctx: LintContext) -> None:
        qual = _qualname(node, ctx)
        if qual is None:
            return
        self._check_qual(node, ctx, qual)

    def visit_Name(self, node: ast.Name, ctx: LintContext) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        qual = ctx.from_imports.get(node.id)
        if qual is not None:
            self._check_qual(node, ctx, qual)

    def _check_qual(self, node: ast.AST, ctx: LintContext, qual: str) -> None:
        if qual in _WALL_CLOCK:
            self._flag(node, ctx, qual, "wall-clock read")
        elif qual in _DATETIME_AMBIENT:
            self._flag(node, ctx, qual, "wall-clock read")
        elif qual.startswith("random.") or qual == "random":
            if isinstance(node, ast.Name) or qual.count(".") >= 1:
                self._flag(node, ctx, qual, "ambient randomness")
        elif qual.startswith("numpy.random."):
            suffix = qual[len("numpy.random."):]
            if suffix and "." not in suffix and suffix not in _NP_RANDOM_OK:
                self._flag(node, ctx, qual, "ambient randomness")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        qual = _qualname(node.func, ctx)
        if qual in ("numpy.random.default_rng", "numpy.random.RandomState") \
                and not node.args and not node.keywords:
            self._flag(node, ctx, qual,
                       "unseeded generator (no SeedSequence argument)")


class SL03(Rule):
    """No float ``==``/``!=`` on simulated time or byte quantities.

    Simulated timestamps and KB tallies are accumulated floats; exact
    equality on them is how the ``-0.0 KB`` census-drift bug class
    enters (a sum that should be zero compares unequal, or two
    mathematically equal times differ in the last ulp after a different
    summation order).  Compare with ``math.isclose``/an epsilon, or keep
    the quantity integral (block counts, not KB).
    """

    id = "SL03"

    def begin_file(self, ctx: LintContext) -> None:
        self._regex = ctx.config.quantity_regex()

    def _identifier(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Call):
            return self._identifier(node.func)
        if isinstance(node, ast.Subscript):
            return self._identifier(node.value)
        return None

    def _is_quantity(self, node: ast.expr) -> str | None:
        ident = self._identifier(node)
        if ident is not None and self._regex.search(ident.lower()):
            return ident
        return None

    def visit_Compare(self, node: ast.Compare, ctx: LintContext) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            ident = self._is_quantity(left) or self._is_quantity(right)
            if ident is None:
                continue
            ctx.report(self.id, node,
                       f"exact float equality on quantity-like operand "
                       f"{ident!r} (the -0.0 KB census-drift bug class); use "
                       "math.isclose, an epsilon, or integral units")


class SL04(Rule):
    """Cache-state mutations only through the census code path.

    ``BlockCache``/``FileCache`` residency accounting (and with it the
    CacheScope telemetry and the CC-KMC invariant checks) is correct
    only because every insert/remove/promote flows through one code
    path.  A direct poke at the backing dicts/sets from middleware or
    PRESS (``cache._dirty``, ``directory._masters[...] = n``) bypasses
    the census.  Non-``self`` access to a protected internal attribute
    outside its owning module is flagged; go through the public API
    (``masters()``, ``stats()``, ``dirty_blocks()``, ``census()``).
    """

    id = "SL04"

    def visit_Attribute(self, node: ast.Attribute, ctx: LintContext) -> None:
        owners = ctx.config.protected_attrs.get(node.attr)
        if owners is None:
            return
        if any(ctx.path.endswith(owner.lstrip("/")) or ctx.path == owner
               for owner in owners):
            return
        if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
            return
        ctx.report(self.id, node,
                   f"direct access to cache internal {node.attr!r} outside its "
                   f"owning module bypasses the census code path; use the "
                   "public view/mutation API")


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_QUALS = {
    "collections.defaultdict", "collections.deque", "collections.OrderedDict",
    "collections.Counter",
}


class SL05(Rule):
    """No mutable default arguments in ``src/repro``.

    A mutable default is shared across calls: state leaks between
    requests and between *runs within one process*, which is invisible
    to the golden-trace harness (each run constructs fresh objects) but
    corrupts long-lived deployments and batch sweeps.  Default to
    ``None`` and construct inside the function.
    """

    id = "SL05"

    def _check_defaults(self, node: ast.AST, args: ast.arguments,
                        ctx: LintContext) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if self._is_mutable(default, ctx):
                ctx.report(self.id, default,
                           "mutable default argument is shared across calls; "
                           "use None and construct inside the function")

    @staticmethod
    def _is_mutable(node: ast.expr, ctx: LintContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_CALLS:
                return True
            qual = _qualname(node.func, ctx)
            return qual in _MUTABLE_QUALS
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        self._check_defaults(node, node.args, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: LintContext) -> None:
        self._check_defaults(node, node.args, ctx)

    def visit_Lambda(self, node: ast.Lambda, ctx: LintContext) -> None:
        self._check_defaults(node, node.args, ctx)


def all_rules() -> tuple[Rule, ...]:
    """Fresh instances of every registered per-file rule, in id order."""
    return (SL01(), SL02(), SL03(), SL04(), SL05())


def rule_catalog() -> Iterable[tuple[str, str]]:
    """(id, summary) pairs for ``--list-rules`` and the docs.

    Sourced from the shared rule-doc table (:mod:`repro.lint.docs`) so
    the CLI, DESIGN.md, and ``--explain`` cannot drift apart; covers the
    per-file rules (SL00–SL05) and the whole-program rules (SL06–SL09).
    """
    from .docs import RULE_DOCS
    for doc in RULE_DOCS:
        yield (doc.id, f"{doc.title}\n{doc.rationale}")
