"""The simlint v2 taint lattice (DESIGN.md §16, SL06).

Whole-program determinism checking reduces to propagating a small set of
*taint labels* through the program and asking whether any labelled value
reaches simulation state, trace output, or a BENCH record:

* ``UNORDERED`` — the value's *ordering* came from set iteration (hash
  order, randomized per process for ``str`` keys).  ``sorted()``
  cleanses it; order-insensitive consumers (``len``, ``min``, ``max``,
  membership) never pick it up.
* ``AMBIENT`` — the value draws on process-global randomness (bare
  ``random.*``, module-level ``numpy.random`` functions, an unseeded
  ``default_rng()``).  Seeding through :mod:`repro.sim.rng` cleanses by
  construction: streams are pure functions of ``(seed, key)``.
* ``WALLCLOCK`` — the value read the host clock (``time.time`` and
  friends, ``datetime.now``).
* ``ENVIRON`` — the value came out of ``os.environ`` / ``os.getenv``
  under a key outside the sanctioned ``REPRO_*`` runner-knob namespace.

The lattice is the powerset of these labels ordered by inclusion; the
join is set union, so any fixed-point iteration terminates.  Each label
additionally carries a *witness path* — the chain of source locations
the taint travelled — used verbatim in SL06 reports.  Witness paths are
first-wins (a join never replaces an existing label's path), which keeps
the whole abstract value monotone.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

__all__ = [
    "UNORDERED", "AMBIENT", "WALLCLOCK", "ENVIRON", "ALL_LABELS",
    "TaintStep", "Taint", "TaintValue", "EMPTY", "CLEAN",
]

UNORDERED = "UNORDERED"
AMBIENT = "AMBIENT"
WALLCLOCK = "WALLCLOCK"
ENVIRON = "ENVIRON"
ALL_LABELS = (UNORDERED, AMBIENT, WALLCLOCK, ENVIRON)

#: Witness paths are capped so pathological call chains cannot blow up
#: report size; the cap loses intermediate hops, never the source.
_MAX_STEPS = 16


@dataclass(frozen=True)
class TaintStep:
    """One hop of a taint witness path."""

    path: str
    line: int
    note: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"


class Taint:
    """An immutable map ``label -> witness path`` (empty = untainted)."""

    __slots__ = ("_paths",)

    def __init__(self, paths: Mapping[str, tuple[TaintStep, ...]] | None = None):
        self._paths: dict[str, tuple[TaintStep, ...]] = dict(paths or {})

    @classmethod
    def source(cls, label: str, step: TaintStep) -> "Taint":
        return cls({label: (step,)})

    @property
    def labels(self) -> frozenset[str]:
        return frozenset(self._paths)

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Taint) and self._paths == other._paths

    def __hash__(self) -> int:  # pragma: no cover - defensive
        return hash(frozenset(self._paths))

    def __repr__(self) -> str:
        return f"Taint({sorted(self._paths)})"

    def path(self, label: str) -> tuple[TaintStep, ...]:
        return self._paths.get(label, ())

    def join(self, other: "Taint") -> "Taint":
        """Lattice join; existing labels keep their (first) witness path."""
        if not other:
            return self
        if not self:
            return other
        merged = dict(other._paths)
        merged.update(self._paths)  # self's witnesses win on overlap
        return Taint(merged)

    def with_step(self, step: TaintStep) -> "Taint":
        """Append one witness hop to every label's path (capped)."""
        if not self._paths:
            return self
        out: dict[str, tuple[TaintStep, ...]] = {}
        for label, steps in self._paths.items():
            if len(steps) >= _MAX_STEPS or (steps and steps[-1] == step):
                out[label] = steps
            else:
                out[label] = steps + (step,)
        return Taint(out)

    def without(self, labels: Iterable[str]) -> "Taint":
        """Drop the given labels (e.g. ``sorted()`` cleanses UNORDERED)."""
        drop = set(labels)
        kept = {lb: p for lb, p in self._paths.items() if lb not in drop}
        if len(kept) == len(self._paths):
            return self
        return Taint(kept)

    def only(self, labels: Iterable[str]) -> "Taint":
        keep = set(labels)
        return Taint({lb: p for lb, p in self._paths.items() if lb in keep})


EMPTY = Taint()


class TaintValue:
    """The abstract value the dataflow engine propagates.

    ``taint`` is the concrete taint acquired so far; ``param_deps`` maps
    indices of the enclosing function's parameters whose taint (as seen
    at a call site) also flows into this value to the witness hops taken
    since the parameter entered.  The pair is what makes function
    summaries compositional: a summary records the generated taint and
    the parameter dependencies, and call sites substitute actuals.
    """

    __slots__ = ("taint", "param_deps")

    def __init__(self, taint: Taint = EMPTY,
                 param_deps: Mapping[int, tuple[TaintStep, ...]] | None = None):
        self.taint = taint
        self.param_deps: dict[int, tuple[TaintStep, ...]] = dict(param_deps or {})

    @classmethod
    def param(cls, index: int) -> "TaintValue":
        return cls(EMPTY, {index: ()})

    def join(self, other: "TaintValue") -> "TaintValue":
        if not other:
            return self
        if not self:
            return other
        deps = dict(other.param_deps)
        deps.update(self.param_deps)  # self's witnesses win on overlap
        return TaintValue(self.taint.join(other.taint), deps)

    def with_step(self, step: TaintStep) -> "TaintValue":
        if not self:
            return self
        deps = {}
        for idx, steps in self.param_deps.items():
            if len(steps) >= _MAX_STEPS or (steps and steps[-1] == step):
                deps[idx] = steps
            else:
                deps[idx] = steps + (step,)
        return TaintValue(self.taint.with_step(step), deps)

    def without(self, labels: Iterable[str]) -> "TaintValue":
        # Dropping a label is label-specific; parameter dependencies are
        # label-agnostic, so a cleanser that drops only some labels must
        # conservatively keep the dependency set.
        return TaintValue(self.taint.without(labels), self.param_deps)

    def __bool__(self) -> bool:
        return bool(self.taint) or bool(self.param_deps)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TaintValue)
                and self.taint == other.taint
                and self.param_deps == other.param_deps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TaintValue({self.taint!r}, deps={sorted(self.param_deps)})"


CLEAN = TaintValue()
