"""Observability: metrics registry, request tracing, invariant sampling.

The subsystem is strictly opt-in: every cluster component accepts an
optional :class:`Observability` and, when none is given, falls back to
no-op instruments (:data:`~repro.obs.tracing.NULL_TRACER`), so the
simulation hot path is unchanged when observability is off.

Typical use::

    obs = Observability(trace=True, invariant_every=1_000)
    result = run_experiment(cfg, obs=obs)
    obs.tracer.dump_jsonl("trace.jsonl")
    obs.registry.dump("metrics.json")

See README.md § Observability for the trace schema and the golden-trace
regression workflow.
"""

from __future__ import annotations


from .cachestats import NULL_CACHESCOPE, CacheScope, NullCacheScope
from .invariants import InvariantSampler
from .metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import NULL_PROFILER, NullProfiler, Profiler
from .schema import OUTPUT_SCHEMA_VERSION
from .slo import SloEvaluator, SloSpec
from .tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_MS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "CacheScope",
    "NullCacheScope",
    "NULL_CACHESCOPE",
    "InvariantSampler",
    "Observability",
    "OUTPUT_SCHEMA_VERSION",
    "SloSpec",
    "SloEvaluator",
]


class Observability:
    """Bundle of one registry, one tracer and an invariant-sampling knob.

    ``trace=False`` substitutes the null tracer, so span calls cost a
    no-op method dispatch; the registry always exists (it is only read at
    snapshot time).  ``invariant_every=0`` disables sampling entirely;
    any N >= 1 makes the experiment runner attach an
    :class:`InvariantSampler` over the middleware's ``check_invariants``.
    ``profile=True`` additionally records critical-path phase spans on
    every blocking wait (implies tracing); feed the resulting trace to
    :mod:`repro.obs.analyze`.  ``cachestats=True`` attaches a
    :class:`~repro.obs.cachestats.CacheScope` recording cache-behavior
    telemetry (duplicate share, eviction provenance, forwarding hops);
    it is passive — no simulator events — so traces are byte-identical
    with it on or off.  ``slo=SloSpec(...)`` attaches an
    :class:`~repro.obs.slo.SloEvaluator`: the driver feeds it every
    measured completion and breaches emit deterministic ``alert`` point
    spans through the tracer; call ``obs.slo.finalize()`` after the run
    for the report.
    """

    def __init__(
        self,
        trace: bool = True,
        invariant_every: int = 0,
        registry: MetricsRegistry | None = None,
        profile: bool = False,
        cachestats: bool = False,
        cachestats_window_ms: float = 100.0,
        slo: SloSpec | None = None,
    ):
        if invariant_every < 0:
            raise ValueError("invariant_every must be >= 0")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer() if (trace or profile) else NULL_TRACER
        self.profiler = Profiler(self.tracer) if profile else NULL_PROFILER
        self.cachescope = (
            CacheScope(window_ms=cachestats_window_ms)
            if cachestats else NULL_CACHESCOPE
        )
        self.slo = SloEvaluator(slo, tracer=self.tracer) if slo else None
        self.invariant_every = invariant_every
        #: Set by the runner when sampling is active (for introspection).
        self.sampler: InvariantSampler | None = None

    def attach(self, sim) -> None:
        """Bind time-dependent pieces to a simulator's clock."""
        self.tracer.attach(sim)
        self.cachescope.attach(sim)
