"""Offline trace analysis: span trees and critical-path attribution.

Input is the tracer's JSONL (or its in-memory record list) from a
*profiled* run (``Observability(profile=True)``).  The decomposition
rests on two structural facts about the simulator:

* Protocol coroutines are **serial** — between two yields no simulated
  time passes — so the profiler's phase spans (name ``"ph"``) tile each
  span's duration exactly, telescoping with zero-duration gaps.
* Parallel fan-out happens only behind an ``all_of`` wrapped in a
  ``fetch`` phase; the spawned fetch spans are *siblings* of that phase
  under the same parent.  A backward walk from the end of the fetch
  interval — always stepping to the candidate span that ends latest but
  no later than the current frontier — recovers the serial chain that
  actually bounded the wait (the critical path), and any unexplained
  remainder is genuine waiting on another request's work (coalesce /
  peer / master wait).

``attribute()`` turns a trace into per-request phase tables whose sums
equal the span-tree root durations (and, over measured client roots,
the run's measured mean response time) up to float tolerance.
"""

from __future__ import annotations

import json
import logging
from collections import defaultdict
from dataclasses import dataclass, field
from collections.abc import Iterable
from typing import Any

from .profile import PHASE_SPAN
from .schema import as_report

__all__ = [
    "PHASE_ORDER",
    "SpanNode",
    "load_jsonl",
    "build_trees",
    "request_roots",
    "decompose_request",
    "RequestProfile",
    "Attribution",
    "attribute",
    "binding_resource",
    "attribution_to_dict",
]

logger = logging.getLogger(__name__)

#: Canonical display order of attribution phases.
PHASE_ORDER: tuple[str, ...] = (
    "router",
    "cpu.queue", "cpu.service",
    "nic.queue", "nic.service",
    "bus.queue", "bus.service",
    "wire",
    "disk.queue", "disk.seek", "disk.transfer",
    "peer.wait", "master.wait", "coalesce.wait",
    "fault.detect", "retry.backoff",
    "other",
)

#: Span names treated as per-request roots (profiled runs produce
#: ``client`` roots; plain traced runs produce ``request`` roots).
REQUEST_ROOT_NAMES = ("client", "request")

#: Absolute float slack for interval containment / chain stepping (ms).
_EPS = 1e-9


class SpanNode:
    """One span record wired into its trace tree."""

    __slots__ = ("rec", "parent", "children")

    def __init__(self, rec: dict[str, Any]):
        self.rec = rec
        self.parent: "SpanNode" | None = None
        self.children: list["SpanNode"] = []

    @property
    def span_id(self) -> int:
        return self.rec["span"]

    @property
    def trace_id(self) -> int:
        return self.rec["trace"]

    @property
    def parent_id(self) -> int | None:
        return self.rec.get("parent")

    @property
    def name(self) -> str:
        return self.rec["name"]

    @property
    def node(self) -> int | None:
        return self.rec.get("node")

    @property
    def start(self) -> float:
        return self.rec["start"]

    @property
    def end(self) -> float | None:
        return self.rec.get("end")

    @property
    def dur(self) -> float | None:
        """Duration in ms, or None for unfinished spans."""
        end = self.end
        return None if end is None else end - self.start

    @property
    def attrs(self) -> dict[str, Any]:
        return self.rec.get("attrs", {})

    @property
    def unfinished(self) -> bool:
        return bool(self.rec.get("unfinished")) or self.end is None

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def load_jsonl(path) -> list[dict[str, Any]]:
    """Read a tracer JSONL file into a list of span records."""
    records = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def build_trees(
    records: Iterable[dict[str, Any]],
) -> tuple[list[SpanNode], dict[int, SpanNode]]:
    """Wire span records into trees; returns (roots, index by span id).

    Children are ordered by (start, span id); records whose parent is
    missing from the trace become roots (robust to partial dumps).
    """
    index: dict[int, SpanNode] = {}
    for rec in records:
        node = SpanNode(rec)
        index[node.span_id] = node
    roots: list[SpanNode] = []
    for node in index.values():
        pid = node.parent_id
        parent = index.get(pid) if pid is not None else None
        if parent is None:
            roots.append(node)
        else:
            node.parent = parent
            parent.children.append(node)
    for node in index.values():
        node.children.sort(key=lambda c: (c.start, c.span_id))
    roots.sort(key=lambda c: (c.start, c.span_id))
    return roots, index


def request_roots(
    roots: Iterable[SpanNode], measured_only: bool = False
) -> list[SpanNode]:
    """Finished per-request root spans (``client`` or ``request``).

    ``measured_only`` keeps roots whose ``measured`` attr is true (or
    absent — plain traced runs don't mark warm-up).
    """
    out = []
    for root in roots:
        if root.name not in REQUEST_ROOT_NAMES or root.dur is None:
            continue
        if measured_only and not root.attrs.get("measured", True):
            continue
        out.append(root)
    return out


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------
def _contains(p: SpanNode, c: SpanNode) -> bool:
    """True if finished span ``c`` lies within phase ``p``'s interval.

    Span ids are monotone in creation order, so a span created during a
    wait always has a higher id than the wait's phase span — which
    disambiguates exact-timestamp boundaries (zero-duration gaps).
    """
    if c.dur is None:
        return False
    return (
        p.span_id < c.span_id
        and p.start - _EPS <= c.start
        and c.end <= p.end + _EPS
    )


def _decompose_span(span: SpanNode, phases: dict[str, float]) -> None:
    """Attribute ``span``'s duration into ``phases`` via its children.

    Serial children (phases and sub-spans not inside any phase interval)
    tile the span; anything not covered by a child lands in ``other``.
    """
    children = [c for c in span.children if c.dur is not None]
    ph_children = [c for c in children if c.name == PHASE_SPAN]
    segments = [
        c for c in children
        if not any(p is not c and _contains(p, c) for p in ph_children)
    ]
    covered = 0.0
    for seg in segments:
        if seg.name == PHASE_SPAN:
            _attribute_phase(seg, phases)
        else:
            _decompose_span(seg, phases)
        covered += seg.dur
    leftover = (span.dur or 0.0) - covered
    if leftover:
        phases["other"] += leftover


def _attribute_phase(p: SpanNode, phases: dict[str, float]) -> None:
    """Assign one phase span's duration to named attribution buckets."""
    attrs = p.attrs
    name = attrs.get("p", "other")
    dur = p.dur or 0.0
    if name in ("cpu", "nic", "bus"):
        q = attrs.get("q", 0.0)
        phases[f"{name}.queue"] += q
        phases[f"{name}.service"] += dur - q
    elif name == "disk":
        svc = attrs.get("svc", dur)
        seek = attrs.get("seek", 0.0)
        phases["disk.queue"] += dur - svc
        phases["disk.seek"] += seek
        phases["disk.transfer"] += svc - seek
    elif name in ("router", "wire"):
        phases[name] += dur
    elif name == "master_wait":
        phases["master.wait"] += dur
    elif name == "coalesce_wait":
        phases["coalesce.wait"] += dur
    elif name == "fault_detect":
        phases["fault.detect"] += dur
    elif name == "retry_wait":
        phases["retry.backoff"] += dur
    elif name == "fetch":
        _refine_fetch(p, phases)
    else:
        phases["other"] += dur


def _refine_fetch(p: SpanNode, phases: dict[str, float]) -> None:
    """Decompose a parallel fan-out wait along its critical path.

    The fetch spans spawned during the wait are siblings of ``p`` under
    the same parent, contained in ``p``'s interval.  Walking backward
    from the end of the interval — always taking the span that ends
    latest but at or before the current frontier — recovers the serial
    chain that bounded the wait (e.g. ``master_wait`` phase followed by
    the retried ``peer_fetch``).  Time not explained by the chain was
    spent waiting on work owned by *other* requests; it goes to
    ``coalesce.wait`` / ``peer.wait`` / ``disk.queue`` according to what
    the fan-out contained.
    """
    parent = p.parent
    candidates = [
        c for c in (parent.children if parent is not None else [])
        if c is not p and _contains(p, c) and (c.dur or 0.0) > 0.0
    ]
    frontier = p.end
    attributed = 0.0
    used: set = set()
    while True:
        best = None
        for c in candidates:
            if c.span_id in used or c.end > frontier + _EPS:
                continue
            if best is None or (c.end, c.dur, c.span_id) > (
                best.end, best.dur, best.span_id
            ):
                best = c
        if best is None:
            break
        used.add(best.span_id)
        if best.name == PHASE_SPAN:
            _attribute_phase(best, phases)
        else:
            _decompose_span(best, phases)
        attributed += best.dur
        frontier = best.start
        if frontier <= p.start + _EPS:
            break
    leftover = (p.dur or 0.0) - attributed
    if leftover:
        attrs = p.attrs
        if attrs.get("j"):
            bucket = "coalesce.wait"
        elif attrs.get("pe"):
            bucket = "peer.wait"
        else:
            bucket = "disk.queue"
        phases[bucket] += leftover


@dataclass
class RequestProfile:
    """One request's phase decomposition."""

    trace_id: int
    root_name: str
    node: int | None
    cls: str | None
    start: float
    dur: float
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def residual(self) -> float:
        """Unattributed time (should be float noise only)."""
        return self.dur - sum(self.phases.values())


def decompose_request(root: SpanNode) -> RequestProfile:
    """Phase decomposition of one finished request root span."""
    phases: dict[str, float] = defaultdict(float)
    _decompose_span(root, phases)
    return RequestProfile(
        trace_id=root.trace_id,
        root_name=root.name,
        node=root.node,
        cls=root.attrs.get("cls"),
        start=root.start,
        dur=root.dur or 0.0,
        phases=dict(phases),
    )


@dataclass
class Attribution:
    """Aggregate phase attribution over a set of requests."""

    requests: list[RequestProfile]

    @property
    def count(self) -> int:
        return len(self.requests)

    @property
    def mean_response_ms(self) -> float:
        """Mean span-tree root duration = mean response time."""
        if not self.requests:
            return 0.0
        return sum(r.dur for r in self.requests) / len(self.requests)

    def phase_means(self) -> dict[str, float]:
        """Mean per-request contribution of each phase (ms)."""
        if not self.requests:
            return {}
        sums: dict[str, float] = defaultdict(float)
        for r in self.requests:
            for phase, ms in r.phases.items():
                sums[phase] += ms
        n = len(self.requests)
        return {phase: total / n for phase, total in sums.items()}

    @property
    def mean_residual_ms(self) -> float:
        """Mean unattributed time per request (float noise)."""
        if not self.requests:
            return 0.0
        return sum(r.residual for r in self.requests) / len(self.requests)

    def by_class(self) -> dict[str, "Attribution"]:
        """Per-service-class sub-attributions ("local"/"remote"/...)."""
        groups: dict[str, list[RequestProfile]] = defaultdict(list)
        for r in self.requests:
            groups[r.cls or "?"].append(r)
        return {cls: Attribution(reqs) for cls, reqs in sorted(groups.items())}


def attribute(
    records: Iterable[dict[str, Any]], measured_only: bool = True
) -> Attribution:
    """Full-trace attribution: one :class:`RequestProfile` per request.

    ``measured_only`` drops warm-up requests (profiled client roots are
    marked; plain ``request`` roots are all kept).
    """
    roots, _index = build_trees(records)
    reqs = request_roots(roots, measured_only=measured_only)
    logger.info("attributing %d request roots (%d spans total)",
                len(reqs), len(roots))
    return Attribution([decompose_request(root) for root in reqs])


# ---------------------------------------------------------------------------
# binding resource (from a metrics snapshot)
# ---------------------------------------------------------------------------
#: Resource classes whose per-node utilization identifies the bottleneck.
RESOURCE_CLASSES = ("cpu", "nic", "bus", "disk")


def binding_resource(metrics: dict[str, Any]) -> dict[str, Any] | None:
    """Name the binding resource from a metrics snapshot.

    Scans ``collected`` entries shaped ``node<N>.<resource>`` for their
    ``utilization`` and returns the resource class with the highest
    cluster-mean utilization::

        {"resource": "disk", "mean": 0.74, "max": 0.83,
         "max_node": "node3",
         "per_resource": {"cpu": {"mean": ..., "max": ..., ...}, ...}}

    Returns None when the snapshot has no per-node utilizations.
    """
    per: dict[str, list[tuple[str, float]]] = defaultdict(list)
    for key, vals in metrics.get("collected", {}).items():
        if "." not in key or not isinstance(vals, dict):
            continue
        node_part, resource = key.split(".", 1)
        if resource in RESOURCE_CLASSES and "utilization" in vals:
            per[resource].append((node_part, float(vals["utilization"])))
    if not per:
        return None
    per_resource: dict[str, dict[str, Any]] = {}
    for resource, samples in per.items():
        max_node, max_util = max(samples, key=lambda s: (s[1], s[0]))
        per_resource[resource] = {
            "mean": sum(u for _n, u in samples) / len(samples),
            "max": max_util,
            "max_node": max_node,
        }
    winner = max(per_resource, key=lambda r: per_resource[r]["mean"])
    info = per_resource[winner]
    return {
        "resource": winner,
        "mean": info["mean"],
        "max": info["max"],
        "max_node": info["max_node"],
        "per_resource": per_resource,
    }


def attribution_to_dict(
    attr: Attribution, metrics: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Machine-readable attribution/bottleneck summary (``analyze --json``).

    The same quantities :func:`repro.obs.reports.render_profile_report`
    prints, as one JSON-ready dict CI and ``repro.bench.compare`` can
    consume without scraping tables.
    """
    out: dict[str, Any] = {
        "requests": attr.count,
        "mean_response_ms": attr.mean_response_ms,
        "mean_residual_ms": attr.mean_residual_ms,
        "phase_means_ms": dict(sorted(attr.phase_means().items())),
        "by_class": {
            cls: {
                "requests": sub.count,
                "mean_response_ms": sub.mean_response_ms,
                "phase_means_ms": dict(sorted(sub.phase_means().items())),
            }
            for cls, sub in attr.by_class().items()
        },
    }
    out["binding_resource"] = (
        binding_resource(metrics) if metrics is not None else None
    )
    return as_report("attribution", out)
