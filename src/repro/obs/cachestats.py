"""Cache-behavior telemetry ("CacheScope").

The paper's central argument is *explanatory*: CC-KMC beats CC-Basic
because traditional global-LRU replacement evicts master copies while
duplicate (non-master) blocks still occupy the cluster's memory, wasting
aggregate capacity and forcing disk reads.  The benchmarks assert the
resulting throughput shapes; this module measures the mechanism itself:

* **duplicate-byte share** — the fraction of aggregate resident bytes
  occupied by copies beyond the first, tracked as a time-weighted level
  per window (reusing :class:`~repro.sim.stats.WindowedSeries`);
* **master vs non-master eviction counts**, and
  **master-evicted-while-non-master-held violations** — a *policy*
  eviction that sacrificed a master while the evicting node still held
  at least one replica.  Zero under CC-KMC by construction; the
  signature pathology of CC-Basic;
* **forwarding-hop histogram** — how many times each master has been
  forwarded since it last entered memory from disk;
* **directory one-hop-stale lookups** — peer fetches that found the
  directory's answer already evicted;
* **per-node replica census** — resident masters / non-masters / KB per
  node, maintained incrementally;
* **eviction provenance** — a ring-buffer ledger of who evicted what,
  why (``drop`` / ``forward`` / ``displaced`` / ``invalidate`` /
  ``write_race`` / ``ownership`` / ``crash``) and where it went.

The scope is *passive*: it never yields simulator events and never
touches the tracer, so enabling it cannot perturb the event stream — a
run with ``cachestats`` on produces byte-identical golden traces.

Census accounting flows through exactly one code path: the caches
themselves (:class:`~repro.cache.blockcache.BlockCache` /
:class:`~repro.press.filecache.FileCache`) notify the scope on every
insert / remove / promote, so no protocol call site can leak a copy.
The middleware adds only the *explanatory* hooks (eviction decisions,
forward outcomes, stale lookups) that the caches cannot know about.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

from ..sim.stats import WindowedSeries

__all__ = [
    "CacheScope",
    "NullCacheScope",
    "NULL_CACHESCOPE",
    "load_jsonl",
]

#: Per-window point-event series kept by the scope.
_EVENT_SERIES = (
    "master_evictions", "nonmaster_evictions", "violations",
    "stale_lookups", "forwards",
)

#: Eviction reasons that are *policy* choices (the replacement knob the
#: paper turns); only these can count as violations.
_POLICY_REASONS = ("drop", "forward")


def _key_str(key: Any) -> str:
    """Stable printable form of a cache key (BlockId tuple or file id)."""
    if isinstance(key, tuple):
        return ":".join(str(p) for p in key)
    return str(key)


class CacheScope:
    """Windowed cache-behavior telemetry for one simulated run."""

    #: Real scopes record; the null scope advertises False so callers can
    #: skip building hook arguments entirely.
    active = True

    def __init__(self, window_ms: float = 100.0, ledger_size: int = 256):
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if ledger_size < 1:
            raise ValueError("ledger_size must be >= 1")
        self.window_ms = float(window_ms)
        self._clock = lambda: 0.0
        self._layout = None
        self._directory = None
        # -- census (kept incrementally; one code path via the caches) --
        self._copies: dict[Any, int] = {}
        self._copy_kb: dict[Any, float] = {}
        self._node_masters: dict[int, int] = {}
        self._node_nonmasters: dict[int, int] = {}
        self._node_kb: dict[int, float] = {}
        self.resident_copies = 0
        self.resident_kb = 0.0
        self.duplicate_copies = 0
        self.duplicate_kb = 0.0
        # -- time-weighted levels (duplicate share per window) --
        self._last_t = 0.0
        self._dup_kb_series = WindowedSeries(self.window_ms)
        self._total_kb_series = WindowedSeries(self.window_ms)
        # -- explanatory counters + per-window point events --
        self._counts: dict[str, int] = {}
        self._by_reason: dict[str, int] = {}
        self._forward_outcomes: dict[str, int] = {}
        self._events: dict[str, WindowedSeries] = {
            name: WindowedSeries(self.window_ms) for name in _EVENT_SERIES
        }
        # -- forwarding-hop tracking --
        self._hops: dict[Any, int] = {}
        self._hop_hist: dict[int, int] = {}
        # -- eviction provenance ring buffer --
        self.ledger: deque = deque(maxlen=ledger_size)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Read timestamps from ``sim`` from now on."""
        self._clock = lambda: sim.now

    def bind_layout(self, layout) -> None:
        """Resolve block sizes through ``layout`` (middleware systems)."""
        self._layout = layout

    def bind_directory(self, directory) -> None:
        """Snapshot the master directory's census alongside the caches."""
        self._directory = directory

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _kb_of(self, key: Any, kb: float | None) -> float:
        if kb is not None:
            return kb
        if self._layout is not None and isinstance(key, tuple):
            return self._layout.block_size_kb(key)
        return 1.0

    def _advance(self, now: float) -> None:
        """Integrate the current levels up to ``now`` (time weighting)."""
        if now > self._last_t:
            self._dup_kb_series.add_interval(
                self._last_t, now, self.duplicate_kb
            )
            self._total_kb_series.add_interval(
                self._last_t, now, self.resident_kb
            )
            self._last_t = now

    def _count(self, name: str, by: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + by

    # ------------------------------------------------------------------
    # census hooks (called by the caches — one code path)
    # ------------------------------------------------------------------
    def on_insert(
        self, node_id: int, key: Any, master: bool,
        kb: float | None = None,
    ) -> None:
        """A copy of ``key`` became resident at ``node_id``."""
        now = self._clock()
        self._advance(now)
        size = self._kb_of(key, kb)
        copies = self._copies.get(key, 0) + 1
        self._copies[key] = copies
        self._copy_kb[key] = size
        self.resident_copies += 1
        self.resident_kb += size
        if copies > 1:
            self.duplicate_copies += 1
            self.duplicate_kb += size
        if master:
            self._node_masters[node_id] = (
                self._node_masters.get(node_id, 0) + 1
            )
        else:
            self._node_nonmasters[node_id] = (
                self._node_nonmasters.get(node_id, 0) + 1
            )
        self._node_kb[node_id] = self._node_kb.get(node_id, 0.0) + size

    def on_remove(
        self, node_id: int, key: Any, master: bool,
        kb: float | None = None,
    ) -> None:
        """A copy of ``key`` left ``node_id``'s memory."""
        now = self._clock()
        self._advance(now)
        size = self._kb_of(key, kb if kb is not None else self._copy_kb.get(key))
        copies = self._copies.get(key, 0) - 1
        if copies <= 0:
            self._copies.pop(key, None)
            self._copy_kb.pop(key, None)
        else:
            self._copies[key] = copies
        self.resident_copies -= 1
        self.resident_kb -= size
        if copies >= 1:
            # The copy that left was one of several: a duplicate is gone.
            self.duplicate_copies -= 1
            self.duplicate_kb -= size
        if master:
            self._node_masters[node_id] = (
                self._node_masters.get(node_id, 0) - 1
            )
        else:
            self._node_nonmasters[node_id] = (
                self._node_nonmasters.get(node_id, 0) - 1
            )
        self._node_kb[node_id] = self._node_kb.get(node_id, 0.0) - size
        # Accumulated += / -= of float sizes can leave a ±epsilon residue
        # (addition is not associative); snap each level to exactly zero
        # whenever its copy count reaches zero so a drained cache never
        # reports "-0.0 KB resident".
        if self.duplicate_copies == 0:
            self.duplicate_kb = 0.0
        if self.resident_copies == 0:
            self.resident_kb = 0.0
        if not self._node_masters.get(node_id) \
                and not self._node_nonmasters.get(node_id):
            self._node_kb[node_id] = 0.0

    def on_promote(self, node_id: int, key: Any) -> None:
        """A resident non-master at ``node_id`` absorbed master status."""
        self._node_masters[node_id] = self._node_masters.get(node_id, 0) + 1
        self._node_nonmasters[node_id] = (
            self._node_nonmasters.get(node_id, 0) - 1
        )

    # ------------------------------------------------------------------
    # explanatory hooks (called by the middleware / PRESS)
    # ------------------------------------------------------------------
    def on_evict(
        self, node_id: int, key: Any, master: bool, nonmasters_held: int,
        reason: str, dest: int | None = None,
    ) -> None:
        """Record one eviction with its provenance.

        ``nonmasters_held`` is the evicting node's replica count *at the
        decision point* (before removal).  ``reason`` in
        ``("drop", "forward")`` marks a policy eviction; anything else
        (``displaced`` / ``invalidate`` / ``crash`` / ...) is protocol
        fallout and never counts as a violation.
        """
        now = self._clock()
        self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
        policy = reason in _POLICY_REASONS
        if policy:
            if master:
                self._count("master_evictions")
                self._events["master_evictions"].add(now)
                if nonmasters_held > 0:
                    self._count("violations")
                    self._events["violations"].add(now)
            else:
                self._count("nonmaster_evictions")
                self._events["nonmaster_evictions"].add(now)
        entry = {
            "t_ms": now,
            "node": node_id,
            "key": _key_str(key),
            "master": bool(master),
            "nonmasters_held": nonmasters_held,
            "reason": reason,
        }
        if dest is not None:
            entry["dest"] = dest
        self.ledger.append(entry)

    def on_forward(self, key: Any, outcome: str) -> None:
        """An evicted master arrived at its forward destination.

        ``outcome`` is the middleware's resolution (``installed`` /
        ``merged`` / ``dropped`` / ``stale``).  The per-block hop count
        grows on every forward and resets when the master leaves memory
        or is re-created from disk, so the histogram answers "how far do
        masters travel before settling or dying?".
        """
        now = self._clock()
        self._forward_outcomes[outcome] = (
            self._forward_outcomes.get(outcome, 0) + 1
        )
        self._count("forwards")
        self._events["forwards"].add(now)
        hops = self._hops.get(key, 0) + 1
        self._hops[key] = hops
        self._hop_hist[hops] = self._hop_hist.get(hops, 0) + 1
        if outcome in ("dropped", "stale"):
            self._hops.pop(key, None)

    def on_master_exit(self, key: Any) -> None:
        """The master of ``key`` left cluster memory (hop chain ends)."""
        self._hops.pop(key, None)

    def on_master_reset(self, key: Any) -> None:
        """A fresh master of ``key`` was created from disk (chain restarts)."""
        self._hops.pop(key, None)

    def on_stale(self, n: int = 1) -> None:
        """``n`` blocks were looked up one hop stale (peer already evicted)."""
        now = self._clock()
        self._count("stale_lookups", n)
        self._events["stale_lookups"].add(now, n)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def duplicate_share(self) -> float:
        """Instantaneous duplicate-byte fraction of resident bytes."""
        if self.resident_kb <= 0.0 or self.duplicate_kb <= 0.0:
            return 0.0
        return self.duplicate_kb / self.resident_kb

    def violations(self) -> int:
        """Master-evicted-while-non-master-held count so far."""
        return self._counts.get("violations", 0)

    def per_node_census(self) -> dict[int, dict[str, float]]:
        """Resident masters / non-masters / KB per node id."""
        nodes = (
            set(self._node_masters) | set(self._node_nonmasters)
            | set(self._node_kb)
        )
        return {
            n: {
                "masters": self._node_masters.get(n, 0),
                "nonmasters": self._node_nonmasters.get(n, 0),
                "kb": round(self._node_kb.get(n, 0.0), 6),
            }
            for n in sorted(nodes)
        }

    def _window_rows(self) -> list[dict[str, Any]]:
        self._advance(self._clock())
        series = [self._dup_kb_series, self._total_kb_series]
        series += list(self._events.values())
        first = min((s.window_range()[0] for s in series if not s.empty),
                    default=0)
        last = max((s.window_range()[1] for s in series if not s.empty),
                   default=-1)
        rows: list[dict[str, Any]] = []
        for idx in range(first, last + 1):
            total = self._total_kb_series.values(idx, idx)[0]
            dup = self._dup_kb_series.values(idx, idx)[0]
            row: dict[str, Any] = {
                "t_ms": self._total_kb_series.window_start(idx),
                "duplicate_share": (dup / total) if total > 0.0 else 0.0,
                "resident_kb_mean": total / self.window_ms,
            }
            for name in _EVENT_SERIES:
                row[name] = self._events[name].values(idx, idx)[0]
            rows.append(row)
        return rows

    def snapshot(self) -> dict[str, Any]:
        """The full telemetry state as one JSON-ready dict."""
        totals: dict[str, Any] = {
            "resident_copies": self.resident_copies,
            "resident_kb": round(self.resident_kb, 6),
            "distinct_blocks": len(self._copies),
            "duplicate_copies": self.duplicate_copies,
            "duplicate_kb": round(self.duplicate_kb, 6),
            "duplicate_share": self.duplicate_share,
            "master_evictions": self._counts.get("master_evictions", 0),
            "nonmaster_evictions": self._counts.get("nonmaster_evictions", 0),
            "violations": self._counts.get("violations", 0),
            "stale_lookups": self._counts.get("stale_lookups", 0),
            "forwards": self._counts.get("forwards", 0),
            "forward_outcomes": dict(sorted(self._forward_outcomes.items())),
            "evictions_by_reason": dict(sorted(self._by_reason.items())),
        }
        if self._directory is not None:
            totals["directory_entries"] = len(self._directory)
            census = getattr(self._directory, "census", None)
            if census is not None:
                totals["directory_masters_per_node"] = {
                    str(n): c for n, c in sorted(census().items())
                }
            # Partitioned-directory extras (absent for the oracle, so
            # oracle snapshots — and their goldens — are unchanged).
            stale_served = getattr(self._directory, "stale_served", None)
            if stale_served is not None:
                totals["directory_route_lookups"] = self._directory.lookups
                totals["directory_stale_served"] = stale_served
        return {
            "window_ms": self.window_ms,
            "totals": totals,
            "per_node": {
                str(n): row for n, row in self.per_node_census().items()
            },
            "hop_histogram": {
                str(h): c for h, c in sorted(self._hop_hist.items())
            },
            "windows": self._window_rows(),
            "ledger": list(self.ledger),
        }

    def dump_jsonl(self, path) -> None:
        """Write the snapshot as JSONL: one summary line, then one line
        per window, then the eviction ledger (newest last)."""
        snap = self.snapshot()
        with open(path, "w", encoding="utf-8") as fp:
            summary = {
                "kind": "summary",
                "window_ms": snap["window_ms"],
                "totals": snap["totals"],
                "per_node": snap["per_node"],
                "hop_histogram": snap["hop_histogram"],
            }
            fp.write(json.dumps(summary, sort_keys=True, default=float))
            fp.write("\n")
            for row in snap["windows"]:
                fp.write(json.dumps(
                    dict(row, kind="window"), sort_keys=True, default=float
                ))
                fp.write("\n")
            for entry in snap["ledger"]:
                fp.write(json.dumps(
                    dict(entry, kind="evict"), sort_keys=True, default=float
                ))
                fp.write("\n")

    # ------------------------------------------------------------------
    # consistency (tests / debugging)
    # ------------------------------------------------------------------
    def census_drift(self, caches) -> list[str]:
        """Mismatches between the incremental census and ``caches``.

        Empty when the bookkeeping agrees with ground truth; each entry
        names one disagreement.  Accepts any iterable of objects with a
        ``stats()`` snapshot (``BlockCache``) so the scope never reaches
        into private dicts.
        """
        problems: list[str] = []
        for cache in caches:
            st = cache.stats()
            nid = st["node"]
            want_m = self._node_masters.get(nid, 0)
            want_n = self._node_nonmasters.get(nid, 0)
            if st["masters"] != want_m:
                problems.append(
                    f"node {nid}: {st['masters']} masters resident, "
                    f"scope says {want_m}"
                )
            if st["nonmasters"] != want_n:
                problems.append(
                    f"node {nid}: {st['nonmasters']} nonmasters resident, "
                    f"scope says {want_n}"
                )
        return problems


class NullCacheScope:
    """No-op scope: every hook is a cheap method dispatch.

    Components hold this when cache telemetry is off, so protocol code
    calls hooks unconditionally without ``if`` guards (mirrors
    :data:`~repro.obs.tracing.NULL_TRACER`).
    """

    active = False
    window_ms = 0.0

    def attach(self, sim) -> None:
        pass

    def bind_layout(self, layout) -> None:
        pass

    def bind_directory(self, directory) -> None:
        pass

    def on_insert(self, node_id, key, master, kb=None) -> None:
        pass

    def on_remove(self, node_id, key, master, kb=None) -> None:
        pass

    def on_promote(self, node_id, key) -> None:
        pass

    def on_evict(self, node_id, key, master, nonmasters_held, reason,
                 dest=None) -> None:
        pass

    def on_forward(self, key, outcome) -> None:
        pass

    def on_master_exit(self, key) -> None:
        pass

    def on_master_reset(self, key) -> None:
        pass

    def on_stale(self, n=1) -> None:
        pass


#: Shared no-op instance.
NULL_CACHESCOPE = NullCacheScope()


def load_jsonl(path) -> dict[str, Any]:
    """Re-assemble a :meth:`CacheScope.dump_jsonl` file into a snapshot
    dict (the shape :meth:`CacheScope.snapshot` returns)."""
    snap: dict[str, Any] = {
        "window_ms": 0.0, "totals": {}, "per_node": {},
        "hop_histogram": {}, "windows": [], "ledger": [],
    }
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("kind", None)
            if kind == "summary":
                snap["window_ms"] = rec.get("window_ms", 0.0)
                snap["totals"] = rec.get("totals", {})
                snap["per_node"] = rec.get("per_node", {})
                snap["hop_histogram"] = rec.get("hop_histogram", {})
            elif kind == "window":
                snap["windows"].append(rec)
            elif kind == "evict":
                snap["ledger"].append(rec)
    return snap
