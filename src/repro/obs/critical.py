"""Critical-path extraction over the causal span DAG.

:mod:`repro.obs.analyze` answers "where was time *spent*" — it sums
phase durations into buckets.  This module answers the sharper question
"where was latency *created*": for each request it extracts the
**critical path**, the ordered chain of leaf intervals that actually
bounded the response time, and aggregates those chains cluster-wide.

The walk uses the same two structural facts the analyzer rests on:

* serial protocol coroutines — the phase spans (and nested sub-spans)
  under a span tile its interval, so every serial child is on the
  critical path and gaps between children are genuine unexplained wait;
* parallel fan-out happens only behind a ``fetch`` phase whose spawned
  spans are *siblings* under the same parent — a backward walk from the
  end of the fetch interval (always stepping to the candidate ending
  latest but no later than the current frontier) recovers the serial
  chain that bounded the wait, and uncovered time is waiting on another
  request's work (coalesce / peer / disk queue).

Unlike ``attribute()`` the result is *ordered*: each request yields a
list of :class:`CriticalSegment` tiling its root span exactly, which
lets :func:`critical_profile` aggregate per-phase critical-seconds *and*
the top-K critical **edges** — the phase→phase (node→node) transitions
latency flows through most.  By the tiling property, per-phase critical
milliseconds sum to the same totals ``attribute()`` reports, so the
conservation argument (phases sum to measured mean response, ~0
residual) carries over unchanged.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any

from .analyze import (
    _EPS,
    _contains,
    SpanNode,
    build_trees,
    request_roots,
)
from .profile import PHASE_SPAN
from .schema import as_report

__all__ = [
    "CriticalSegment",
    "critical_path",
    "critical_profile",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CriticalSegment:
    """One leaf interval on a request's critical path."""

    #: Attribution bucket (``disk.queue``, ``cpu.service``, ...).
    phase: str
    #: Name of the span the interval came from (``"ph"`` for phases).
    name: str
    node: int | None
    start: float
    end: float

    @property
    def dur(self) -> float:
        return self.end - self.start


def _seg(phase: str, src: SpanNode, start: float, end: float,
         out: list[CriticalSegment]) -> None:
    """Append a segment unless it is empty (within float slack)."""
    if end - start > _EPS:
        out.append(CriticalSegment(phase, src.name, src.node, start, end))


def _fill_gaps(
    lo: float,
    hi: float,
    covered: list[tuple[float, float]],
    bucket: str,
    src: SpanNode,
    out: list[CriticalSegment],
) -> None:
    """Emit ``bucket`` segments for the parts of [lo, hi] not covered."""
    cur = lo
    for s, e in sorted(covered):
        if s > cur + _EPS:
            _seg(bucket, src, cur, s, out)
        if e > cur:
            cur = e
    if hi > cur + _EPS:
        _seg(bucket, src, cur, hi, out)


def _phase_segments(p: SpanNode, out: list[CriticalSegment]) -> None:
    """Split one profiler phase span into bucket-labelled segments.

    The queue/service split mirrors ``analyze._attribute_phase``: the
    stamps (``q`` / ``svc`` / ``seek``) position the service portion at
    the *end* of the wait, which is where the service center ran it.
    """
    attrs = p.attrs
    name = attrs.get("p", "other")
    s, e = p.start, p.end
    if e is None:  # unfinished phase: nothing bounded the response
        return
    dur = p.dur or 0.0
    if name in ("cpu", "nic", "bus"):
        q = min(max(attrs.get("q", 0.0), 0.0), dur)
        _seg(f"{name}.queue", p, s, s + q, out)
        _seg(f"{name}.service", p, s + q, e, out)
    elif name == "disk":
        svc = min(attrs.get("svc", dur), dur)
        seek = min(max(attrs.get("seek", 0.0), 0.0), svc)
        _seg("disk.queue", p, s, e - svc, out)
        _seg("disk.seek", p, e - svc, e - svc + seek, out)
        _seg("disk.transfer", p, e - svc + seek, e, out)
    elif name in ("router", "wire"):
        _seg(name, p, s, e, out)
    elif name == "master_wait":
        _seg("master.wait", p, s, e, out)
    elif name == "coalesce_wait":
        _seg("coalesce.wait", p, s, e, out)
    elif name == "fault_detect":
        _seg("fault.detect", p, s, e, out)
    elif name == "retry_wait":
        _seg("retry.backoff", p, s, e, out)
    elif name == "fetch":
        _fetch_segments(p, out)
    else:
        _seg("other", p, s, e, out)


def _fetch_segments(p: SpanNode, out: list[CriticalSegment]) -> None:
    """Critical chain through a parallel fan-out wait.

    Same backward walk as ``analyze._refine_fetch`` — the chosen spans
    are pairwise disjoint by construction (each new frontier is the
    previous choice's start) — but the chain is kept as ordered
    intervals, and uncovered time becomes wait segments labelled by what
    the fan-out contained (coalesce / peer / disk queue).
    """
    parent = p.parent
    p_end = p.end
    if p_end is None:  # unfinished fetch: no bounded wait to explain
        return
    candidates = [
        c for c in (parent.children if parent is not None else [])
        if c is not p and _contains(p, c) and (c.dur or 0.0) > 0.0
    ]
    frontier = p_end
    chosen: list[SpanNode] = []
    used: set[int] = set()
    while True:
        best: SpanNode | None = None
        best_key: tuple[float, float, int] | None = None
        for c in candidates:
            c_end, c_dur = c.end, c.dur
            if c_end is None or c_dur is None:
                continue  # filtered above; narrows for the comparisons
            if c.span_id in used or c_end > frontier + _EPS:
                continue
            key = (c_end, c_dur, c.span_id)
            if best_key is None or key > best_key:
                best, best_key = c, key
        if best is None:
            break
        used.add(best.span_id)
        chosen.append(best)
        frontier = best.start
        if frontier <= p.start + _EPS:
            break
    for c in chosen:
        if c.name == PHASE_SPAN:
            _phase_segments(c, out)
        else:
            _span_segments(c, out)
    attrs = p.attrs
    if attrs.get("j"):
        bucket = "coalesce.wait"
    elif attrs.get("pe"):
        bucket = "peer.wait"
    else:
        bucket = "disk.queue"
    _fill_gaps(p.start, p_end,
               [(c.start, c.end) for c in chosen if c.end is not None],
               bucket, p, out)


def _span_segments(span: SpanNode, out: list[CriticalSegment]) -> None:
    """Serial decomposition of a span into ordered leaf segments.

    Uses the same child filter as ``analyze._decompose_span``: phase
    spans plus sub-spans not contained in any phase interval tile the
    span; anything uncovered is an ``other`` gap.
    """
    children = [c for c in span.children if c.dur is not None]
    ph_children = [c for c in children if c.name == PHASE_SPAN]
    segments = [
        c for c in children
        if not any(p is not c and _contains(p, c) for p in ph_children)
    ]
    for child in segments:
        if child.name == PHASE_SPAN:
            _phase_segments(child, out)
        else:
            _span_segments(child, out)
    span_end = span.end
    if span_end is not None:
        _fill_gaps(span.start, span_end,
                   [(c.start, c.end) for c in segments if c.end is not None],
                   "other", span, out)


def critical_path(root: SpanNode) -> list[CriticalSegment]:
    """The ordered critical path of one finished request root.

    Segments are non-overlapping, sorted by start time, and tile the
    root span exactly: their durations sum to the root duration up to
    float tolerance.
    """
    segs: list[CriticalSegment] = []
    _span_segments(root, segs)
    segs.sort(key=lambda s: (s.start, s.end))
    return segs


def _edge_key(a: CriticalSegment, b: CriticalSegment) -> str:
    a_node = "-" if a.node is None else str(a.node)
    b_node = "-" if b.node is None else str(b.node)
    return f"{a.phase}@{a_node} -> {b.phase}@{b_node}"


def critical_profile(
    records: Iterable[dict[str, Any]],
    top_edges: int = 10,
    measured_only: bool = True,
) -> dict[str, Any]:
    """Cluster-wide critical-path profile over a profiled trace.

    Returns a shared-schema ``critical`` report::

        {"schema_version": ..., "kind": "critical",
         "requests": N,
         "mean_critical_ms": ...,      # == mean response time
         "mean_residual_ms": ...,      # tiling error (float noise)
         "phase_critical_ms": {...},   # total critical ms per phase
         "phase_critical_share": {...},
         "top_edges": [{"edge": "disk.queue@3 -> disk.transfer@3",
                        "count": ..., "ms": ...}, ...]}

    The *edges* are consecutive critical-segment transitions, weighted
    by the downstream segment's duration — they name the hand-offs
    latency flows through, which is where a fix actually lands.
    """
    roots, _index = build_trees(records)
    reqs = request_roots(roots, measured_only=measured_only)
    phase_ms: dict[str, float] = defaultdict(float)
    edges: dict[str, dict[str, float]] = {}
    total_dur = 0.0
    total_attr = 0.0
    for root in reqs:
        path = critical_path(root)
        total_dur += root.dur or 0.0
        prev: CriticalSegment | None = None
        for seg in path:
            phase_ms[seg.phase] += seg.dur
            total_attr += seg.dur
            if prev is not None:
                key = _edge_key(prev, seg)
                stats = edges.get(key)
                if stats is None:
                    stats = edges[key] = {"count": 0, "ms": 0.0}
                stats["count"] += 1
                stats["ms"] += seg.dur
            prev = seg
    n = len(reqs)
    logger.info("critical profile over %d requests (%d edges)",
                n, len(edges))
    ranked = sorted(
        edges.items(), key=lambda kv: (-kv[1]["ms"], kv[0])
    )[:top_edges]
    return as_report("critical", {
        "requests": n,
        "mean_critical_ms": total_dur / n if n else 0.0,
        "mean_residual_ms": (total_dur - total_attr) / n if n else 0.0,
        "phase_critical_ms": dict(sorted(phase_ms.items())),
        "phase_critical_share": {
            phase: ms / total_attr if total_attr else 0.0
            for phase, ms in sorted(phase_ms.items())
        },
        "top_edges": [
            {"edge": key, "count": int(stats["count"]), "ms": stats["ms"]}
            for key, stats in ranked
        ],
    })
