"""Differential attribution: explain *why* two runs differ.

The bench-trajectory gate (``repro.bench compare``) can say a run got
slower; this module says where.  Given two attribution summaries — the
``analyze --json`` output of a baseline and a current run — it produces
a phase-by-phase delta report with a **conservation check**: phase
deltas plus the residual delta sum to the mean-response delta exactly
(each side's attribution already telescopes to its measured mean, so
the difference telescopes too; any residue is float noise).

Inputs are deliberately flexible: :func:`load_attribution` accepts
either an attribution JSON summary (preferred — small, CI-archivable)
or a raw profiled trace JSONL, which it attributes on the fly.  That
lets ``analyze diff A B`` and the ``repro.bench compare --explain-*``
hook work from whichever artifact a pipeline kept.
"""

from __future__ import annotations

import json
import logging
from typing import Any

from .analyze import attribute, attribution_to_dict, load_jsonl
from .schema import as_report, check_report

__all__ = ["load_attribution", "diff_attributions"]

logger = logging.getLogger(__name__)

#: Phase deltas smaller than this (ms/req) are reported but never named
#: as the regressed/improved phase — they are measurement noise.
_NAME_FLOOR_MS = 1e-9


def load_attribution(path) -> dict[str, Any]:
    """Load an attribution summary from ``path``.

    Accepts either an ``analyze --json`` attribution report or a
    profiled trace JSONL (detected by its first record carrying span
    fields), which is attributed on the fly.
    """
    with open(path, "r", encoding="utf-8") as fp:
        first = ""
        for line in fp:
            first = line.strip()
            if first:
                break
    head = None
    if first:
        try:
            head = json.loads(first)
        except json.JSONDecodeError:
            # Pretty-printed JSON: the first line is just "{".  A truly
            # malformed file fails the full parse below instead.
            head = None
    if isinstance(head, dict) and "span" in head and "trace" in head:
        logger.info("%s: trace JSONL; attributing on the fly", path)
        return attribution_to_dict(attribute(load_jsonl(path)))
    with open(path, "r", encoding="utf-8") as fp:
        doc = json.load(fp)
    check_report(doc, "attribution")
    return doc


def _class_summary(side: dict[str, Any]) -> dict[str, Any]:
    return {
        "requests": side.get("requests", 0),
        "mean_response_ms": side.get("mean_response_ms", 0.0),
    }


def _binding(side: dict[str, Any]) -> str | None:
    info = side.get("binding_resource")
    return info.get("resource") if isinstance(info, dict) else None


def diff_attributions(
    base: dict[str, Any], current: dict[str, Any]
) -> dict[str, Any]:
    """Phase-by-phase delta between two attribution summaries.

    Returns a shared-schema ``diff`` report.  Sign convention: positive
    deltas mean the *current* run is slower.  ``conservation_residual_ms``
    is ``delta - (sum(phase deltas) + residual delta)`` and must be ~0;
    a violation means the two summaries are not comparable (different
    schema, truncated file), not that the analysis is wrong.
    """
    base_phases = base.get("phase_means_ms", {})
    cur_phases = current.get("phase_means_ms", {})
    phases = sorted(set(base_phases) | set(cur_phases))
    phase_delta = {
        p: cur_phases.get(p, 0.0) - base_phases.get(p, 0.0) for p in phases
    }
    delta = (current.get("mean_response_ms", 0.0)
             - base.get("mean_response_ms", 0.0))
    residual_delta = (current.get("mean_residual_ms", 0.0)
                      - base.get("mean_residual_ms", 0.0))
    conservation = delta - (sum(phase_delta.values()) + residual_delta)

    regressions = sorted(
        ((p, d) for p, d in phase_delta.items() if d > _NAME_FLOOR_MS),
        key=lambda kv: (-kv[1], kv[0]),
    )
    improvements = sorted(
        ((p, d) for p, d in phase_delta.items() if d < -_NAME_FLOOR_MS),
        key=lambda kv: (kv[1], kv[0]),
    )

    base_classes = base.get("by_class", {})
    cur_classes = current.get("by_class", {})
    by_class_delta = {}
    for cls in sorted(set(base_classes) | set(cur_classes)):
        b = base_classes.get(cls, {})
        c = cur_classes.get(cls, {})
        by_class_delta[cls] = {
            "base": _class_summary(b),
            "current": _class_summary(c),
            "delta_ms": (c.get("mean_response_ms", 0.0)
                         - b.get("mean_response_ms", 0.0)),
        }

    base_res = _binding(base)
    cur_res = _binding(current)
    return as_report("diff", {
        "base": {
            "requests": base.get("requests", 0),
            "mean_response_ms": base.get("mean_response_ms", 0.0),
        },
        "current": {
            "requests": current.get("requests", 0),
            "mean_response_ms": current.get("mean_response_ms", 0.0),
        },
        "delta_ms": delta,
        "phase_delta_ms": phase_delta,
        "residual_delta_ms": residual_delta,
        "conservation_residual_ms": conservation,
        "regressed_phase": regressions[0][0] if regressions else None,
        "improved_phase": improvements[0][0] if improvements else None,
        "top_regressions": [
            {"phase": p, "delta_ms": d,
             "share": d / delta if delta > 0.0 else 0.0}
            for p, d in regressions[:3]
        ],
        "top_improvements": [
            {"phase": p, "delta_ms": d,
             "share": d / delta if delta < 0.0 else 0.0}
            for p, d in improvements[:3]
        ],
        "by_class_delta": by_class_delta,
        "binding_resource": {
            "base": base_res,
            "current": cur_res,
            "changed": base_res != cur_res,
        },
    })
