"""Chrome trace-event export (loadable in Perfetto / chrome://tracing).

Maps the simulator's span JSONL onto the Chrome trace-event JSON format:

* **process** = cluster node (``pid`` = node id; cluster-level spans
  with no node — router, wire, client roots — get ``pid`` 0 relabelled
  "cluster");
* **thread** = lane within the node: one lane for request/protocol
  spans, one per device class for profiler phase spans, one ``events``
  lane for fault-injection (``fault``) and SLO (``alert``) points;
* finished spans become complete (``"X"``) events, zero-duration spans
  become instants (``"i"``), and process/thread names are declared with
  metadata (``"M"``) events;
* spans flagged ``unfinished`` (a dump taken mid-run, or a request cut
  short by a crash) become instants at their start time carrying
  ``"unfinished": true`` in ``args`` — never silently dropped.

Timestamps: the simulator's milliseconds are exported as microseconds
(``ts`` / ``dur``), the unit the format specifies.
"""

from __future__ import annotations

import json
import logging
from collections.abc import Iterable
from typing import Any

from .profile import PHASE_SPAN

__all__ = [
    "to_chrome_trace",
    "dump_chrome_trace",
    "to_chrome_trace_multi",
    "dump_chrome_trace_multi",
]

logger = logging.getLogger(__name__)

#: Thread lanes per process, in display order.
_LANES = (
    "requests", "protocol", "cpu", "nic", "bus", "disk",
    "wire", "router", "wait", "events",
)
_LANE_TID = {name: i for i, name in enumerate(_LANES)}

#: Phase-name -> lane for profiler phase spans.
_PHASE_LANE = {
    "cpu": "cpu",
    "nic": "nic",
    "bus": "bus",
    "disk": "disk",
    "wire": "wire",
    "router": "router",
    "fetch": "wait",
    "master_wait": "wait",
    "coalesce_wait": "wait",
}

#: pid used for spans with no node attribution (router, wire, clients).
_CLUSTER_PID = 0


def _pid(rec: dict[str, Any]) -> int:
    node = rec.get("node")
    return _CLUSTER_PID if node is None else int(node) + 1


def _lane(rec: dict[str, Any]) -> str:
    if rec["name"] == PHASE_SPAN:
        phase = rec.get("attrs", {}).get("p", "")
        return _PHASE_LANE.get(phase, "wait")
    if rec["name"] in ("client", "request"):
        return "requests"
    if rec["name"] in ("fault", "alert"):
        return "events"
    return "protocol"


def _event_name(rec: dict[str, Any]) -> str:
    if rec["name"] == PHASE_SPAN:
        return rec.get("attrs", {}).get("p", PHASE_SPAN)
    cls = rec.get("attrs", {}).get("cls")
    return f"{rec['name']}:{cls}" if cls else rec["name"]


def to_chrome_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert tracer span records to a Chrome trace-event dict."""
    events: list[dict[str, Any]] = []
    pids: dict[int, str] = {}
    lanes_used: dict[int, set] = {}
    unfinished = 0

    for rec in records:
        pid = _pid(rec)
        lane = _lane(rec)
        pids.setdefault(
            pid,
            "cluster" if pid == _CLUSTER_PID else f"node{pid - 1}",
        )
        lanes_used.setdefault(pid, set()).add(lane)
        args = {"trace": rec["trace"], "span": rec["span"]}
        args.update(rec.get("attrs", {}))
        ts_us = rec["start"] * 1000.0
        base = {
            "name": _event_name(rec),
            "cat": "sim",
            "pid": pid,
            "tid": _LANE_TID[lane],
            "ts": ts_us,
            "args": args,
        }
        if rec.get("end") is None:
            # A span cut short (mid-run dump, crash-orphaned request):
            # an instant at its start, explicitly flagged.
            unfinished += 1
            args["unfinished"] = True
            base["ph"] = "i"
            base["s"] = "t"
        elif rec["end"] > rec["start"]:
            base["ph"] = "X"
            base["dur"] = (rec["end"] - rec["start"]) * 1000.0
        else:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)

    meta: list[dict[str, Any]] = []
    for pid in sorted(pids):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": pids[pid]},
        })
        for lane in sorted(lanes_used.get(pid, ()), key=_LANE_TID.get):
            meta.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": _LANE_TID[lane], "args": {"name": lane},
            })
    if unfinished:
        logger.warning("chrome export flagged %d unfinished spans "
                       "as instants", unfinished)
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro tracer JSONL"},
    }


def dump_chrome_trace(records: Iterable[dict[str, Any]], path) -> None:
    """Write the Chrome trace-event JSON for ``records`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(to_chrome_trace(records), fp, sort_keys=True, default=float)
        fp.write("\n")


# ---------------------------------------------------------------------------
# multi-cell merge (fleet view)
# ---------------------------------------------------------------------------
def to_chrome_trace_multi(
    cells: Iterable[tuple[str, Iterable[dict[str, Any]]]],
) -> dict[str, Any]:
    """Merge several cells' traces into one multi-process Perfetto view.

    ``cells`` is ``(label, records)`` pairs — e.g. one sweep cell per
    pair, labelled ``"rutgers/cc-kmc/0.16MB"``.  Each cell keeps its own
    node/lane structure but its pids are offset into a disjoint block
    and every process name is prefixed with the cell label, so Perfetto
    shows the cells side by side as separate process groups on a shared
    timeline (every cell starts at simulated t=0, which is exactly what
    makes phase-by-phase comparison work).
    """
    merged_events: list[dict[str, Any]] = []
    other: dict[str, Any] = {"source": "repro tracer JSONL (multi-cell)",
                             "cells": []}
    offset = 0
    for label, records in cells:
        doc = to_chrome_trace(records)
        max_pid = 0
        for ev in doc["traceEvents"]:
            ev = dict(ev)
            max_pid = max(max_pid, int(ev["pid"]))
            ev["pid"] = int(ev["pid"]) + offset
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                ev["args"] = {"name": f"{label} | {ev['args']['name']}"}
            merged_events.append(ev)
        other["cells"].append({"label": label, "pid_base": offset})
        offset += max_pid + 1
    return {
        "traceEvents": merged_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def dump_chrome_trace_multi(
    cells: Iterable[tuple[str, Iterable[dict[str, Any]]]], path
) -> None:
    """Write the merged multi-cell Chrome trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(to_chrome_trace_multi(cells), fp, sort_keys=True,
                  default=float)
        fp.write("\n")
