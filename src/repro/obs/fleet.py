"""Cross-cell fleet aggregation over a sweep's run-ledger slice.

Input is a list of ledger records (:func:`repro.obs.ledger.load_ledger`)
containing one ``sweep`` record and its ``cell`` children.  The output
— report kind ``"fleet"`` under the shared
:data:`~repro.obs.schema.OUTPUT_SCHEMA_VERSION` envelope — rolls the
per-cell observability artifacts up into fleet-level answers:

* **Attribution rollup + conservation check** — per-cell phase tables
  (from each cell's attribution artifact) summed across the fleet must
  reconcile *exactly* with the per-cell response-time totals (phase sums
  telescope to root durations per request, so the cross-cell identity
  ``Σ_cells Σ_phases = Σ_cells mean·n`` holds to float tolerance; a
  violation means an artifact is stale or truncated).
* **Binding-resource frequency** — how often each resource class binds
  across the (memory × system × trace) matrix, the fleet version of the
  paper's Figure-6a bottleneck-migration narrative.
* **Sweep-wide SLO evaluation** — each cell's p95/p99/availability
  judged against one :class:`~repro.obs.slo.SloSpec` (window-level burn
  rates stay per-run; a fleet has no shared timeline).
* **Throughput matrix** — the fig2-shaped (trace × system × memory)
  grid, rendered as ASCII heatmaps by
  :func:`repro.obs.reports.render_fleet_report`.

Everything here is offline post-processing of ledger rows and artifact
files; nothing touches simulation state.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Sequence
from typing import Any, Optional

from .ledger import latest_sweep
from .schema import as_report
from .slo import SloSpec

__all__ = [
    "select_sweep",
    "fleet_report",
    "conservation_check",
    "CONSERVATION_REL_TOL",
]

#: Relative float tolerance for the cross-cell conservation identity.
CONSERVATION_REL_TOL = 1e-6


def select_sweep(
    records: Iterable[dict[str, Any]],
    sweep_id: Optional[str] = None,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Pick one sweep and its cell records out of a ledger.

    Default is the *latest* sweep record; ``sweep_id`` (unique prefix
    accepted) pins an earlier one.  Cells are matched by ``parent``.
    """
    records = list(records)
    sweep: Optional[dict[str, Any]]
    if sweep_id is None:
        sweep = latest_sweep(records)
        if sweep is None:
            raise ValueError("ledger contains no sweep records")
    else:
        matches = [
            r for r in records
            if r.get("kind") == "sweep"
            and str(r.get("run_id", "")).startswith(sweep_id)
        ]
        if not matches:
            raise ValueError(f"no sweep record with run id {sweep_id!r}")
        if len(matches) > 1:
            raise ValueError(f"sweep id prefix {sweep_id!r} is ambiguous")
        sweep = matches[0]
    cells = [
        r for r in records
        if r.get("kind") == "cell" and r.get("parent") == sweep["run_id"]
    ]
    return sweep, cells


def _resolve(path: str, base_dir: str) -> Optional[str]:
    """An artifact path as recorded, else relative to the ledger's dir."""
    if os.path.exists(path):
        return path
    alt = os.path.join(base_dir, path)
    if os.path.exists(alt):
        return alt
    return None


def _load_attribution(cell: dict[str, Any],
                      base_dir: str) -> Optional[dict[str, Any]]:
    artifacts = cell.get("artifacts") or {}
    raw = artifacts.get("attribution")
    if not raw:
        return None
    path = _resolve(str(raw), base_dir)
    if path is None:
        return None
    with open(path, encoding="utf-8") as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or doc.get("kind") != "attribution":
        return None
    return doc


def conservation_check(
    cell_rows: Sequence[dict[str, Any]],
) -> dict[str, Any]:
    """The exact cross-cell attribution conservation identity.

    For every cell with an attribution artifact, per-request phase sums
    telescope to the root duration, so ``(Σ phase_means + residual) · n``
    must equal ``mean_response_ms · n`` — and summed across cells, the
    fleet-wide per-phase totals must reconcile with the fleet-wide
    response-time total.  ``ok`` is true iff the absolute error is
    within :data:`CONSERVATION_REL_TOL` of the total (floor 1 ms).
    """
    phase_sum = 0.0
    residual_sum = 0.0
    total = 0.0
    checked = 0
    for row in cell_rows:
        attr = row.get("_attribution")
        if not attr:
            continue
        n = float(attr.get("requests", 0))
        if n <= 0:
            continue
        checked += 1
        total += float(attr.get("mean_response_ms", 0.0)) * n
        residual_sum += float(attr.get("mean_residual_ms", 0.0)) * n
        # simlint: ordered -- JSON-parsed dict preserves the artifact's
        # key order, and attribution artifacts are dumped sort_keys=True,
        # so the float accumulation order is fixed by the file bytes.
        for ms in attr.get("phase_means_ms", {}).values():
            phase_sum += float(ms) * n
    error = abs(total - (phase_sum + residual_sum))
    bound = CONSERVATION_REL_TOL * max(1.0, abs(total))
    return {
        "cells_checked": checked,
        "total_ms": total,
        "phase_sum_ms": phase_sum,
        "residual_sum_ms": residual_sum,
        "error_ms": error,
        "bound_ms": bound,
        "ok": bool(checked) and error <= bound,
    }


def _phase_totals(cell_rows: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Fleet-wide per-phase milliseconds (phase mean × requests, summed)."""
    totals: dict[str, float] = {}
    for row in cell_rows:
        attr = row.get("_attribution")
        if not attr:
            continue
        n = float(attr.get("requests", 0))
        # simlint: ordered -- artifact dicts are sort_keys=True on disk,
        # so JSON-parse insertion order (hence summation order) is fixed;
        # the result is re-sorted below regardless.
        for phase, ms in attr.get("phase_means_ms", {}).items():
            totals[phase] = totals.get(phase, 0.0) + float(ms) * n
    return dict(sorted(totals.items()))


def _binding_frequency(
    cell_rows: Sequence[dict[str, Any]],
) -> dict[str, int]:
    """How many cells each resource class binds across the matrix."""
    freq: dict[str, int] = {}
    for row in cell_rows:
        res = row.get("binding_resource")
        if res:
            freq[str(res)] = freq.get(str(res), 0) + 1
    return dict(sorted(freq.items(), key=lambda kv: (-kv[1], kv[0])))


def _ordered_unique(values: Iterable[Any]) -> list[Any]:
    seen: list[Any] = []
    for v in values:
        if v not in seen:
            seen.append(v)
    return seen


def _throughput_matrix(
    cell_rows: Sequence[dict[str, Any]],
) -> dict[str, Any]:
    """(trace × system × memory) throughput grid, axes in ledger order."""
    traces = _ordered_unique(r["workload"] for r in cell_rows)
    systems = _ordered_unique(r["system"] for r in cell_rows)
    memories = _ordered_unique(r["mem_mb_per_node"] for r in cell_rows)
    grid: dict[str, dict[str, list[Optional[float]]]] = {
        t: {s: [None] * len(memories) for s in systems} for t in traces
    }
    for row in cell_rows:
        m = memories.index(row["mem_mb_per_node"])
        grid[row["workload"]][row["system"]][m] = row.get("throughput_rps")
    return {
        "traces": traces,
        "systems": systems,
        "memories_mb": memories,
        "throughput_rps": grid,
    }


def _fleet_slo(
    cell_rows: Sequence[dict[str, Any]], spec: SloSpec
) -> dict[str, Any]:
    """Judge every cell's tail latency / availability against one spec."""
    evaluated = 0
    breaches: list[dict[str, Any]] = []
    for row in cell_rows:
        if row.get("status") != "ok" or row.get("p95_ms") is None:
            continue
        evaluated += 1
        cell_breaches: list[str] = []
        if spec.p95_ms is not None and row["p95_ms"] > spec.p95_ms:
            cell_breaches.append(
                f"p95 {row['p95_ms']:.3f}ms > {spec.p95_ms:g}ms"
            )
        if (spec.p99_ms is not None and row.get("p99_ms") is not None
                and row["p99_ms"] > spec.p99_ms):
            cell_breaches.append(
                f"p99 {row['p99_ms']:.3f}ms > {spec.p99_ms:g}ms"
            )
        if spec.availability is not None:
            avail = row.get("availability")
            if avail is not None and avail < spec.availability:
                cell_breaches.append(
                    f"availability {avail:.5f} < {spec.availability:g}"
                )
        if cell_breaches:
            breaches.append({
                "run_id": row.get("run_id"),
                "cell": f"{row['system']}/{row['workload']}/"
                        f"{row['mem_mb_per_node']:g}MB",
                "breaches": cell_breaches,
            })
    return {
        "spec": spec.to_dict(),
        "cells_evaluated": evaluated,
        "cells_breaching": len(breaches),
        "breaches": breaches,
        "ok": not breaches,
    }


def _cell_row(cell: dict[str, Any], base_dir: str) -> dict[str, Any]:
    """One flattened per-cell row (ledger fields + artifact joins)."""
    summary = cell.get("summary") or {}
    row: dict[str, Any] = {
        "run_id": cell.get("run_id"),
        "index": cell.get("cell_index"),
        "system": cell.get("system"),
        "workload": cell.get("workload"),
        "mem_mb_per_node": cell.get("mem_mb_per_node"),
        "seed": cell.get("seed"),
        "status": cell.get("status"),
        "wall_s": cell.get("wall_s"),
        "worker": cell.get("worker"),
        "error": cell.get("error"),
        "throughput_rps": summary.get("throughput_rps"),
        "mean_response_ms": summary.get("mean_response_ms"),
        "hit_rate_total": summary.get("hit_rate_total"),
        "p95_ms": summary.get("p95_ms"),
        "p99_ms": summary.get("p99_ms"),
        "binding_resource": summary.get("binding_resource"),
    }
    attr = _load_attribution(cell, base_dir)
    if attr is not None:
        # internal join, stripped before the row enters the report
        row["_attribution"] = attr
        binding = attr.get("binding_resource") or {}
        if row["binding_resource"] is None and binding:
            row["binding_resource"] = binding.get("resource")
    return row


def fleet_report(
    records: Iterable[dict[str, Any]],
    *,
    sweep_id: Optional[str] = None,
    slo: Optional[SloSpec] = None,
    base_dir: str = ".",
) -> dict[str, Any]:
    """Build the ``"fleet"`` report over one sweep's ledger slice.

    ``base_dir`` resolves relative artifact paths (pass the ledger
    file's directory).  ``slo`` adds the sweep-wide SLO evaluation.
    """
    sweep, cells = select_sweep(records, sweep_id)
    rows = [_cell_row(c, base_dir) for c in cells]
    rows.sort(key=lambda r: (r["index"] if r["index"] is not None else 0))
    ok_rows = [r for r in rows if r["status"] == "ok"]
    failed = [
        {k: r[k] for k in
         ("run_id", "index", "system", "workload", "mem_mb_per_node",
          "error")}
        for r in rows if r["status"] != "ok"
    ]
    payload: dict[str, Any] = {
        "sweep": {
            "run_id": sweep.get("run_id"),
            "git_sha": sweep.get("git_sha"),
            "env": sweep.get("env"),
            "workers": sweep.get("workers"),
            "progress": sweep.get("progress"),
            "obs_overhead": sweep.get("obs_overhead"),
            "cells": len(rows),
            "cells_ok": len(ok_rows),
            "cells_failed": len(failed),
        },
        "conservation": conservation_check(rows),
        "phase_totals_ms": _phase_totals(rows),
        "binding_resources": _binding_frequency(ok_rows),
        "matrix": _throughput_matrix(ok_rows) if ok_rows else None,
        "failed_cells": failed,
        "cells": [
            # simlint: ordered -- key filter preserves the row's ledger
            # insertion order; serialization re-sorts keys anyway.
            {k: v for k, v in r.items() if not k.startswith("_")}
            for r in rows
        ],
    }
    if slo is not None:
        payload["slo"] = _fleet_slo(rows, slo)
    return as_report("fleet", payload)
