"""Sampling invariant checker driven by kernel step hooks.

:meth:`~repro.core.middleware.CoopCacheLayer.check_invariants` is cheap
enough to run occasionally but far too expensive to run on every kernel
event of a million-event experiment.  :class:`InvariantSampler` bridges
the gap: attached to a :class:`~repro.sim.engine.Simulator` step hook, it
invokes its check every ``every`` processed events — an integer modulo
per event when enabled, nothing at all when never attached.

A failed check raises immediately (the kernel propagates it out of
``sim.run()``), pinpointing the event index at which the state first went
bad — vastly tighter than discovering a corrupt directory at the end of a
run.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["InvariantSampler"]


class InvariantSampler:
    """Run ``check()`` every ``every`` kernel events."""

    __slots__ = ("check", "every", "events_seen", "checks_run", "_sim")

    def __init__(self, check: Callable[[], None], every: int = 1_000):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.check = check
        self.every = every
        #: Kernel events observed since attach.
        self.events_seen = 0
        #: Times the check actually ran.
        self.checks_run = 0
        self._sim = None

    def attach(self, sim) -> None:
        """Start sampling on ``sim`` (idempotent per simulator)."""
        if self._sim is sim:
            return
        if self._sim is not None:
            raise RuntimeError("sampler already attached to another simulator")
        self._sim = sim
        sim.add_step_hook(self._on_step)

    def detach(self) -> None:
        """Stop sampling."""
        if self._sim is not None:
            self._sim.remove_step_hook(self._on_step)
            self._sim = None

    def _on_step(self, sim) -> None:
        self.events_seen += 1
        if self.events_seen % self.every == 0:
            self.checks_run += 1
            self.check()
