"""Append-only, provenance-stamped run registry (the *run ledger*).

Every experiment the harness executes — a single observable ``run``, a
``chaos`` run, a sharded ``sweep`` and each of its ``cell``s, a bench
invocation — can append one JSONL *manifest record* describing what ran:
git sha, seed, workload knobs and their digest, the active
scheduler/directory environment, wall-clock, exit status, and the paths
of every artifact the run produced (trace, metrics, BENCH record,
attribution summary).  The ledger is the registry a 100-cell sweep was
missing: ``python -m repro.obs.ledger list`` answers *what ran*, ``show``
joins a record back to its artifacts, and :mod:`repro.obs.fleet`
aggregates a sweep's slice of the ledger into cross-cell reports.

Design rules:

* **Append-only JSONL** — one sorted-keys JSON object per line; records
  are never rewritten, a failed run appends a ``status: "failed"`` row.
* **Deterministic identity** — ``run_id`` is a digest of the record
  itself (minus the id), so with an injected clock and a pinned
  ``REPRO_GIT_SHA`` the ledger is byte-reproducible (the determinism
  tests pin this).
* **Passive** — nothing here touches simulation state.  Wall-clock
  readings live only in ledger rows (``simlint`` SL02 pragmas mark each
  sanctioned use).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from typing import Any, Optional

__all__ = [
    "LEDGER_VERSION",
    "RECORD_KINDS",
    "Ledger",
    "run_id",
    "load_ledger",
    "filter_records",
    "latest_sweep",
    "environment_stamp",
    "measure_observability_overhead",
    "main",
]

#: Version of the ledger row shape; bump on incompatible changes.
LEDGER_VERSION = 1

#: Every record kind the harness appends.
RECORD_KINDS = ("run", "chaos", "sweep", "cell", "bench")

Clock = Callable[[], float]


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=float)


def run_id(record: dict[str, Any]) -> str:
    """Deterministic 16-hex identity of a record (sans any ``run_id``)."""
    # simlint: ordered -- key filter only; _canonical() sorts keys, so
    # the digest is independent of this iteration order.
    stripped = {k: v for k, v in record.items() if k != "run_id"}
    return hashlib.sha256(_canonical(stripped).encode()).hexdigest()[:16]


def environment_stamp() -> dict[str, str]:
    """The simulator-shaping environment knobs active right now."""
    return {
        "scheduler": os.environ.get("REPRO_SCHEDULER") or "heap",
        "directory": os.environ.get("REPRO_DIRECTORY") or "oracle",
    }


class Ledger:
    """Appends manifest records to one JSONL ledger file.

    ``clock`` supplies ``recorded_at`` timestamps (seconds); the default
    is the wall clock, tests inject a fixed counter for byte-stable
    output.  The file is opened per append (append mode), so concurrent
    ledgers in one process and re-opened CLIs all see a consistent,
    line-complete file.
    """

    def __init__(self, path: str, clock: Optional[Clock] = None):
        self.path = path
        self._clock: Clock = clock if clock is not None else time.time  # simlint: disable=SL02 -- ledger timestamps are operator provenance, never sim state

    def append(
        self,
        kind: str,
        *,
        status: str = "ok",
        parent: Optional[str] = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Append one record; returns it with ``run_id`` stamped."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown ledger record kind {kind!r}; "
                             f"choose from {RECORD_KINDS}")
        from ..bench.schema import git_sha

        record: dict[str, Any] = {
            "ledger_version": LEDGER_VERSION,
            "kind": kind,
            "status": status,
            "git_sha": git_sha(),
            "recorded_at": round(float(self._clock()), 6),
            "env": environment_stamp(),
        }
        if parent is not None:
            record["parent"] = parent
        record.update(fields)
        record["run_id"] = run_id(record)
        with open(self.path, "a", encoding="utf-8") as fp:
            fp.write(_canonical_line(record))
        return record


def _canonical_line(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, default=float) + "\n"


def load_ledger(path: str) -> list[dict[str, Any]]:
    """Read every record of a ledger file, in append order."""
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("ledger rows must be JSON objects")
            records.append(doc)
    return records


def filter_records(
    records: Iterable[dict[str, Any]],
    *,
    kind: Optional[str] = None,
    status: Optional[str] = None,
    system: Optional[str] = None,
    workload: Optional[str] = None,
    parent: Optional[str] = None,
) -> list[dict[str, Any]]:
    """Records matching every given criterion (None = don't care)."""
    out = []
    for rec in records:
        if kind is not None and rec.get("kind") != kind:
            continue
        if status is not None and rec.get("status") != status:
            continue
        if system is not None and rec.get("system") != system:
            continue
        if workload is not None and rec.get("workload") != workload:
            continue
        if parent is not None and rec.get("parent") != parent:
            continue
        out.append(rec)
    return out


def latest_sweep(records: Iterable[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """The last ``sweep`` record appended, or None."""
    sweep = None
    for rec in records:
        if rec.get("kind") == "sweep":
            sweep = rec
    return sweep


def find_record(
    records: Iterable[dict[str, Any]], run_id_prefix: str
) -> Optional[dict[str, Any]]:
    """The unique record whose ``run_id`` starts with the given prefix.

    Raises :class:`ValueError` when the prefix is ambiguous.
    """
    matches = [r for r in records
               if str(r.get("run_id", "")).startswith(run_id_prefix)]
    if len(matches) > 1:
        ids = ", ".join(str(r["run_id"]) for r in matches[:5])
        raise ValueError(f"run id prefix {run_id_prefix!r} is ambiguous "
                         f"({ids}...)")
    return matches[0] if matches else None


# ---------------------------------------------------------------------------
# self-measured observability overhead
# ---------------------------------------------------------------------------
def measure_observability_overhead(num_events: int = 20_000) -> dict[str, float]:
    """Events/s through the kernel with the tracer on vs off.

    Drives a self-rescheduling callback chain of ``num_events`` kernel
    events twice — once emitting one span per event through a real
    :class:`~repro.obs.tracing.Tracer`, once against the null tracer —
    and reports both rates plus the overhead fraction.  This is the
    instrumentation-cost number a sweep's ledger record tracks, so "how
    much does observability cost us" is a measured, trended quantity
    rather than folklore.  Wall-clock readings here measure *the
    instrumentation itself*; the simulated results are not consumed.
    """
    if num_events < 1:
        raise ValueError("num_events must be >= 1")
    from ..sim.engine import Simulator
    from .tracing import NULL_TRACER, Tracer

    def drive(tracer: Any) -> float:
        sim = Simulator()
        tracer.attach(sim)
        remaining = num_events

        def tick() -> None:
            nonlocal remaining
            span = tracer.start("tick")
            span.finish()
            remaining -= 1
            if remaining > 0:
                sim.call_after(1.0, tick)

        sim.call_after(1.0, tick)
        t0 = time.perf_counter()  # simlint: disable=SL02 -- measuring instrumentation overhead, result never feeds sim state
        sim.run()
        return max(time.perf_counter() - t0, 1e-9)  # simlint: disable=SL02 -- measuring instrumentation overhead, result never feeds sim state

    wall_off = drive(NULL_TRACER)
    wall_on = drive(Tracer())
    on = num_events / wall_on
    off = num_events / wall_off
    return {
        "events": float(num_events),
        "events_per_s_tracer_on": on,
        "events_per_s_tracer_off": off,
        "overhead_frac": max(0.0, 1.0 - on / off),
    }


# ---------------------------------------------------------------------------
# CLI: list / show
# ---------------------------------------------------------------------------
def _format_row(rec: dict[str, Any]) -> str:
    mem = rec.get("mem_mb_per_node")
    coords = " ".join(
        str(part) for part in (
            rec.get("system"), rec.get("workload"),
            f"{mem:g}MB" if isinstance(mem, (int, float)) else None,
        ) if part is not None
    )
    wall = rec.get("wall_s")
    wall_txt = f"{wall:8.2f}s" if isinstance(wall, (int, float)) else " " * 9
    return (f"{rec.get('run_id', '?'):<16} {rec.get('kind', '?'):<6} "
            f"{rec.get('status', '?'):<7} {wall_txt}  {coords}")


def _cmd_list(args: argparse.Namespace) -> int:
    try:
        records = load_ledger(args.ledger)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"ledger: cannot read {args.ledger}: {exc}", file=sys.stderr)
        return 2
    records = filter_records(
        records, kind=args.kind, status=args.status,
        system=args.system, workload=args.workload, parent=args.parent,
    )
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True, default=float))
        return 0
    if not records:
        print("(no matching records)")
        return 0
    print(f"{'run_id':<16} {'kind':<6} {'status':<7} {'wall':>8}   cell")
    for rec in records:
        print(_format_row(rec))
    return 0


def _show_artifact(name: str, path: str) -> list[str]:
    """Join one artifact path back to a summary of its content."""
    lines = [f"  {name:<12} {path}"]
    if not os.path.exists(path):
        lines[0] += "  (missing)"
        return lines
    if not path.endswith(".json"):
        lines[0] += f"  ({os.path.getsize(path)} bytes)"
        return lines
    try:
        with open(path, encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError):
        lines[0] += "  (unreadable)"
        return lines
    if not isinstance(doc, dict):
        return lines
    if "params_digest" in doc and "metrics" in doc:  # BENCH trajectory record
        lines.append(f"    bench record {doc.get('name', '?')!r}: "
                     f"{len(doc.get('metrics', {}))} metrics, "
                     f"params digest {doc.get('params_digest')}")
    elif doc.get("kind") == "attribution":
        binding = doc.get("binding_resource") or {}
        lines.append(f"    attribution: {doc.get('requests', 0)} requests, "
                     f"mean {doc.get('mean_response_ms', 0.0):.3f} ms, "
                     f"binding {binding.get('resource', 'n/a')}")
    return lines


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        records = load_ledger(args.ledger)
        rec = find_record(records, args.run_id)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"ledger: {exc}", file=sys.stderr)
        return 2
    if rec is None:
        print(f"ledger: no record with run id {args.run_id!r}",
              file=sys.stderr)
        return 1
    print(json.dumps(rec, indent=2, sort_keys=True, default=float))
    artifacts = rec.get("artifacts") or {}
    if artifacts and not args.no_artifacts:
        print("artifacts:")
        for name in sorted(artifacts):
            if artifacts[name]:
                for line in _show_artifact(name, str(artifacts[name])):
                    print(line)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.ledger",
        description="Inspect an append-only run ledger (JSONL manifests "
                    "appended by run/chaos/sweep with --ledger).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_p = sub.add_parser("list", help="list (filtered) ledger records")
    list_p.add_argument("ledger", help="ledger JSONL file")
    list_p.add_argument("--kind", choices=list(RECORD_KINDS), default=None)
    list_p.add_argument("--status", default=None,
                        help="filter by exit status (ok / failed)")
    list_p.add_argument("--system", default=None)
    list_p.add_argument("--workload", default=None)
    list_p.add_argument("--parent", default=None, metavar="RUN_ID",
                        help="only records with this parent (a sweep's cells)")
    list_p.add_argument("--json", action="store_true",
                        help="emit the matching records as JSON")
    show_p = sub.add_parser(
        "show", help="show one record and join it to its artifacts"
    )
    show_p.add_argument("ledger", help="ledger JSONL file")
    show_p.add_argument("run_id", help="run id (unique prefix accepted)")
    show_p.add_argument("--no-artifacts", action="store_true",
                        help="skip reading artifact files")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "show":
        return _cmd_show(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `ledger list | head` closes the pipe early; exit quietly
        # instead of dumping a traceback (recipe from the Python docs:
        # point stdout at devnull so the shutdown flush can't re-raise).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
