"""A lightweight metrics registry for the simulation.

Cluster components register into one shared :class:`MetricsRegistry`
instead of growing ad-hoc instance counters.  Three instrument kinds
cover everything the harness measures:

* :class:`Counter` — monotonically increasing integers (hits, evictions,
  completed requests);
* :class:`Gauge` — a point-in-time value, either set explicitly or read
  lazily from a callback at snapshot time (resident blocks, utilization);
* :class:`Histogram` — bucketed observations with an optional *weight*,
  so a value can be weighted by the simulated time it was held
  (time-weighted queue lengths) or recorded plainly (response times).

Components that already keep their own counters (e.g.
:class:`~repro.sim.stats.CounterSet`) plug in through *collectors*:
zero-cost callbacks the registry reads only when a snapshot is taken, so
the simulation hot path pays nothing for observability.

Snapshots are plain nested dicts with deterministically sorted keys, so
``to_json()`` output is byte-for-byte reproducible for a given run.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from typing import Any

from ..sim.stats import ReservoirQuantiles

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_MS",
]

#: Default histogram bucket upper bounds (ms), log-ish spaced to cover a
#: disk seek (~10 ms) up to badly queued responses (seconds).
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, by: int = 1) -> None:
        """Add ``by`` (must be >= 0; counters never decrease)."""
        if by < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += by


class Gauge:
    """A point-in-time value, set directly or computed by a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None):
        self.name = name
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Record the current value (explicit gauges only)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        """Current value (callback gauges read their source lazily)."""
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Fixed-bucket histogram with optional per-observation weights.

    ``observe(x)`` counts one plain observation; ``observe(x, weight=dt)``
    makes it *time-weighted* — the canonical use is integrating a queue
    length or busy level over the simulated interval it was held.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "total", "weight", "_quantiles",
    )

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS_MS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        #: Weighted count per bucket; the last bucket is the +inf overflow.
        self.counts: list[float] = [0.0] * (len(bounds) + 1)
        #: Unweighted number of observations.
        self.count = 0
        #: Weighted sum of observed values.
        self.total = 0.0
        #: Total weight observed.
        self.weight = 0.0
        #: Deterministic reservoir for percentiles (unweighted — each
        #: observation counts once; bucket weights stay authoritative for
        #: time-weighted uses).
        self._quantiles = ReservoirQuantiles(capacity=2048)

    def observe(self, x: float, weight: float = 1.0) -> None:
        """Record value ``x`` with ``weight`` (default 1 = plain count)."""
        if weight < 0:
            raise ValueError("weight must be >= 0")
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose bound >= x
            mid = (lo + hi) // 2
            if self.bounds[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += weight
        self.count += 1
        self.total += x * weight
        self.weight += weight
        self._quantiles.record(x)

    @property
    def mean(self) -> float:
        """Weighted mean of observations (0.0 when empty)."""
        return self.total / self.weight if self.weight else 0.0

    def quantile(self, q: float) -> float:
        """Approximate unweighted q-quantile of observed values."""
        return self._quantiles.quantile(q)

    def snapshot(self) -> dict[str, Any]:
        """Bucket table plus summary moments, deterministic key order."""
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "count": self.count,
            "p50": self._quantiles.quantile(0.50),
            "p95": self._quantiles.quantile(0.95),
            "p99": self._quantiles.quantile(0.99),
            "sum": self.total,
            "weight": self.weight,
        }


class MetricsRegistry:
    """One namespace of counters, gauges, histograms and collectors.

    Instruments are get-or-create by name, so independent components can
    share a counter without coordinating construction order.  Collectors
    are read only at :meth:`snapshot` time.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Callable[[], dict[str, Any]]] = {}

    # -- instrument factories (get-or-create) -------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at zero if new)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None
    ) -> Gauge:
        """The gauge called ``name``; ``fn`` makes it callback-backed."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, fn)
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        """The histogram called ``name`` (bounds fixed at creation)."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    def register_collector(
        self, prefix: str, fn: Callable[[], dict[str, Any]]
    ) -> None:
        """Register ``fn`` whose dict is merged under ``prefix`` at
        snapshot time — how components with existing counter bundles
        (e.g. :class:`~repro.sim.stats.CounterSet`) join the registry
        without paying anything on the hot path."""
        if prefix in self._collectors:
            raise ValueError(f"collector {prefix!r} already registered")
        self._collectors[prefix] = fn

    # -- export -------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Deterministic nested dict of every instrument's current state."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
            "collected": {
                prefix: {
                    k: v for k, v in sorted(self._collectors[prefix]().items())
                }
                for prefix in sorted(self._collectors)
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Snapshot as deterministic JSON (sorted keys, stable floats)."""
        return json.dumps(
            self.snapshot(), indent=indent, sort_keys=True, default=float
        )

    def dump(self, path) -> None:
        """Write the JSON snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json() + "\n")
