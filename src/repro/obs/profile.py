"""Inline critical-path profiler: phase spans around every blocking wait.

The protocol coroutines are *serial*: between two ``yield``\\ s no
simulated time passes, so the intervals a request spends blocked on
events tile its span exactly.  The profiler exploits this by wrapping
each wait in a zero-overhead-when-off phase span (name ``"ph"``), which
lets :mod:`repro.obs.analyze` decompose measured response time into
exhaustive, non-overlapping phases offline — router, CPU queue/service,
NIC, wire, disk queue/seek/transfer, peer/master/coalesce waits.

Two design rules keep golden traces byte-identical when profiling is
off:

* Call sites always go through ``yield from prof.wait(...)``; the
  :class:`NullProfiler` variant is a bare passthrough generator that
  yields the same event object, so the kernel sees an identical event
  sequence either way.
* Service centers stamp ``svc_start`` / ``svc_ms`` / ``svc_seek_ms``
  onto completion events as plain attribute stores — behaviour-neutral,
  readable after the wait to split queueing from service.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from .tracing import Span, Tracer

__all__ = ["PHASE_SPAN", "Profiler", "NullProfiler", "NULL_PROFILER"]

#: Span name reserved for profiler phase spans.
PHASE_SPAN = "ph"


class Profiler:
    """Records one ``"ph"`` span per blocking wait on the request path.

    Each phase span carries ``p`` (the phase name: ``cpu``, ``nic``,
    ``bus``, ``disk``, ``wire``, ``router``, ``fetch``, ``master_wait``,
    ``coalesce_wait``) plus whatever queue/service split the completion
    event was stamped with.
    """

    enabled = True

    __slots__ = ("tracer",)

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def wait(
        self,
        parent: Span | None,
        node: int | None,
        phase: str,
        event,
        **attrs: Any,
    ):
        """Generator: wait for ``event`` under a phase span.

        Use as ``value = yield from prof.wait(span, nid, "cpu", ev)``.
        If the event was stamped by a service center, the span records
        ``q`` — the time spent queued before service began.
        """
        span = self.tracer.start(PHASE_SPAN, parent=parent, node=node,
                                 p=phase, **attrs)
        try:
            value = yield event
        except BaseException:
            span.finish(error=True)
            raise
        svc_start = getattr(event, "svc_start", None)
        if svc_start is not None and svc_start >= span.start:
            span.finish(q=svc_start - span.start)
        else:
            span.finish()
        return value

    def disk_wait(
        self,
        parent: Span | None,
        node: int | None,
        event,
        runs: Iterable,
        **attrs: Any,
    ):
        """Generator: wait for disk run(s) under one ``disk`` phase span.

        ``event`` is what the caller blocks on (a single run's completion
        event, or an ``all_of`` over several parallel runs); ``runs`` are
        the underlying per-run completion events.  The span records the
        summed seek (``seek``) and busy (``svc``) components so the
        analyzer can split the wait into queue / seek / transfer.
        """
        runs = list(runs)
        span = self.tracer.start(PHASE_SPAN, parent=parent, node=node,
                                 p="disk", n=len(runs), **attrs)
        try:
            value = yield event
        except BaseException:
            span.finish(error=True)
            raise
        span.finish(
            seek=sum(getattr(ev, "svc_seek_ms", 0.0) for ev in runs),
            svc=sum(getattr(ev, "svc_ms", 0.0) for ev in runs),
        )
        return value


class NullProfiler:
    """Disabled profiler: waits pass straight through, no spans.

    The passthrough generators yield the *same* event objects a profiled
    run would, so event creation and processing order — and therefore
    trace bytes and metrics — are identical with profiling on or off.
    """

    enabled = False

    __slots__ = ()

    def wait(self, parent, node, phase, event, **attrs):
        return (yield event)

    def disk_wait(self, parent, node, event, runs, **attrs):
        return (yield event)


#: Process-wide disabled profiler (components default to this).
NULL_PROFILER = NullProfiler()
