"""Human-readable reports over trace analysis results.

All renderers are plain text (terminal / CI-log friendly):

* :func:`render_profile_report` — the bottleneck report: per-phase
  attribution table summing to measured mean response time, per-class
  breakdowns, and the binding resource named from per-node utilizations;
* :func:`render_top_requests` — the top-K slowest requests with their
  span trees pretty-printed (unfinished requests listed separately);
* :func:`render_timeseries` — windowed throughput / composition /
  utilization as charts and sparklines;
* :func:`render_critical_report` — where latency is *created*: the
  cluster-wide critical-path profile with its top critical edges;
* :func:`render_diff_report` — the "explain" report between two runs'
  attributions, with the conservation check;
* :func:`render_slo_report` — windowed SLO evaluation: alerts,
  breached windows, burn-rate sparkline;
* :func:`render_fleet_report` — cross-cell sweep rollup: conservation
  check, binding-resource frequency, (memory × system × trace)
  throughput heatmaps, per-cell table;
* :func:`render_progress_report` — a sweep progress JSONL replayed as
  a completion timeline with rate/ETA/straggler summary.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from ..experiments.charts import line_chart, sparkline
from ..experiments.report import format_table
from .analyze import (
    PHASE_ORDER,
    REQUEST_ROOT_NAMES,
    Attribution,
    SpanNode,
    binding_resource,
    build_trees,
    decompose_request,
    request_roots,
)
from .profile import PHASE_SPAN

__all__ = [
    "render_profile_report",
    "render_top_requests",
    "render_timeseries",
    "render_cache_report",
    "render_critical_report",
    "render_diff_report",
    "render_slo_report",
    "render_fleet_report",
    "render_progress_report",
    "format_span_tree",
]


def _ordered_phases(means: dict[str, float]) -> list[str]:
    """Phases in canonical order, then any unknown ones alphabetically."""
    known = [p for p in PHASE_ORDER if p in means]
    extra = sorted(set(means) - set(PHASE_ORDER))
    return known + extra


def _phase_table(attr: Attribution, title: str) -> str:
    means = attr.phase_means()
    mean_total = attr.mean_response_ms
    rows = []
    for phase in _ordered_phases(means):
        ms = means[phase]
        share = 100.0 * ms / mean_total if mean_total else 0.0
        rows.append((phase, ms, share))
    rows.append(("(residual)", attr.mean_residual_ms,
                 100.0 * attr.mean_residual_ms / mean_total
                 if mean_total else 0.0))
    rows.append(("total = mean response", mean_total, 100.0))
    return format_table(
        ["phase", "mean ms/req", "share %"], rows,
        title=f"{title} ({attr.count} requests)", ndigits=4,
    )


def render_profile_report(
    attr: Attribution,
    metrics: dict[str, Any] | None = None,
    per_class: bool = True,
) -> str:
    """The bottleneck report for one attributed run."""
    parts: list[str] = []
    if not attr.count:
        return ("no finished request roots in trace "
                "(was the run profiled with --profile?)")
    parts.append(_phase_table(attr, "critical-path attribution"))

    if per_class:
        for cls, sub in attr.by_class().items():
            parts.append("")
            parts.append(_phase_table(sub, f"class {cls!r}"))

    parts.append("")
    if metrics is not None:
        info = binding_resource(metrics)
        if info is not None:
            per_res = info["per_resource"]
            rows = [
                (res, per_res[res]["mean"], per_res[res]["max"],
                 per_res[res]["max_node"])
                for res in sorted(
                    per_res, key=lambda r: -per_res[r]["mean"]
                )
            ]
            parts.append(format_table(
                ["resource", "mean util", "max util", "hottest node"],
                rows, title="per-resource utilization", ndigits=3,
            ))
            parts.append("")
            parts.append(
                f"binding resource: {info['resource']} "
                f"(cluster-mean utilization {info['mean']:.3f}, "
                f"peak {info['max']:.3f} at {info['max_node']})"
            )
        else:
            parts.append("binding resource: n/a "
                         "(metrics snapshot has no per-node utilizations)")
    else:
        # No metrics: name the dominant phase group instead.
        means = attr.phase_means()
        groups: dict[str, float] = {}
        for phase, ms in means.items():
            groups[phase.split(".", 1)[0]] = (
                groups.get(phase.split(".", 1)[0], 0.0) + ms
            )
        if groups:
            top = max(groups, key=lambda g: groups[g])
            parts.append(
                f"dominant phase group: {top} "
                f"({groups[top]:.4f} ms/req; pass metrics.json for "
                f"utilization-based binding-resource analysis)"
            )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# span-tree pretty printing / top-K
# ---------------------------------------------------------------------------
def _span_label(node: SpanNode) -> str:
    if node.name == PHASE_SPAN:
        name = f"ph:{node.attrs.get('p', '?')}"
    else:
        name = node.name
    where = f" node={node.node}" if node.node is not None else ""
    dur = node.dur
    timing = (
        f" +{dur:.4f}ms" if dur is not None else " (unfinished)"
    )
    extras = {
        k: v for k, v in node.attrs.items()
        if k in ("cls", "q", "seek", "svc", "peer", "home", "n", "hits",
                 "misses", "d", "pe", "j")
    }
    extra = (
        " [" + " ".join(f"{k}={v}" for k, v in sorted(extras.items())) + "]"
        if extras else ""
    )
    return f"{name}{where} @{node.start:.3f}{timing}{extra}"


def format_span_tree(root: SpanNode, max_depth: int = 8) -> str:
    """Indented one-line-per-span rendering of a trace tree."""
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        lines.append("  " * depth + _span_label(node))
        if depth + 1 > max_depth:
            if node.children:
                lines.append("  " * (depth + 1)
                             + f"... {len(node.children)} children elided")
            return
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def render_top_requests(
    records: Iterable[dict[str, Any]], k: int = 10,
    measured_only: bool = True,
) -> str:
    """The K slowest requests, each with its span tree.

    Request roots without an end timestamp cannot be ranked by duration
    — silently dropping (or zero-ranking) them would hide exactly the
    requests a crash cut short — so they get their own "unfinished"
    section after the ranking.
    """
    roots, _index = build_trees(records)
    reqs = request_roots(roots, measured_only=measured_only)
    unfinished = [
        r for r in roots if r.name in REQUEST_ROOT_NAMES and r.dur is None
    ]
    parts: list[str] = []
    if not reqs:
        parts.append("no finished request roots in trace")
    else:
        slowest = sorted(
            reqs, key=lambda r: (-(r.dur or 0.0), r.span_id)
        )[:k]
        parts.append(f"top {len(slowest)} slowest requests")
        for rank, root in enumerate(slowest, 1):
            profile = decompose_request(root)
            top_phases = sorted(
                profile.phases.items(), key=lambda kv: -kv[1]
            )[:3]
            summary = ", ".join(f"{p} {ms:.3f}ms" for p, ms in top_phases)
            parts.append("")
            parts.append(
                f"#{rank} trace {root.trace_id} cls={profile.cls or '?'} "
                f"{profile.dur:.4f} ms  (top phases: {summary})"
            )
            parts.append(format_span_tree(root))
    if unfinished:
        parts.append("")
        parts.append(
            f"unfinished requests ({len(unfinished)}) — no end "
            "timestamp, excluded from the ranking:"
        )
        for root in sorted(unfinished, key=lambda r: (r.start, r.span_id)):
            where = f" node={root.node}" if root.node is not None else ""
            parts.append(
                f"  trace {root.trace_id} span {root.span_id}{where} "
                f"started @{root.start:.3f} ms"
            )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# time series rendering
# ---------------------------------------------------------------------------
def render_timeseries(ts: dict[str, Any]) -> str:
    """Charts + sparklines for a :func:`build_timeseries` result."""
    windows = ts.get("windows", [])
    if not windows:
        return "no windows (empty trace)"
    x = [w["t_ms"] for w in windows]
    parts: list[str] = []

    throughput = [w["throughput_rps"] for w in windows]
    parts.append(line_chart(
        x, {"req/s": throughput},
        title=f"throughput per {ts['window_ms']:.1f} ms window",
        x_label="simulated time (ms)",
    ))

    classes = sorted({cls for w in windows for cls in w["by_class"]})
    if classes:
        series = {
            cls: [w["by_class"].get(cls, 0.0) for w in windows]
            for cls in classes
        }
        parts.append("")
        parts.append(line_chart(
            x, series, title="completions by service class per window",
            x_label="simulated time (ms)",
        ))

    parts.append("")
    parts.append("per-resource utilization (request-path, sparkline 0..1):")
    for res in ("cpu", "nic", "bus", "disk"):
        vals = [w["utilization"][res] for w in windows]
        parts.append(f"  {res:<4} |{sparkline(vals, hi=1.0)}| "
                     f"peak {max(vals):.3f}")
    parts.append("mean queue depth (request-path jobs):")
    for res in ("cpu", "nic", "bus", "disk"):
        vals = [w["queue_depth"][res] for w in windows]
        parts.append(f"  {res:<4} |{sparkline(vals)}| "
                     f"peak {max(vals):.2f}")
    if ts.get("warm_start_ms") is not None:
        warm_flags = "".join("W" if w["warm"] else "-" for w in windows)
        parts.append(f"  warm |{warm_flags}| "
                     f"(measurement starts at {ts['warm_start_ms']:.1f} ms)")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# cache-behavior report (CacheScope)
# ---------------------------------------------------------------------------
def render_cache_report(snap: dict[str, Any], ledger_tail: int = 10) -> str:
    """Tables + sparklines for a CacheScope snapshot.

    ``snap`` is :meth:`~repro.obs.cachestats.CacheScope.snapshot` (or a
    dump re-assembled by :func:`repro.obs.cachestats.load_jsonl`).  The
    headline numbers are the paper's mechanism: how much aggregate
    memory duplicates waste, and whether the policy sacrificed masters
    while replicas were still around to evict instead.
    """
    totals = snap.get("totals", {})
    parts: list[str] = []

    summary_rows = [
        ("resident copies", totals.get("resident_copies", 0)),
        ("resident KB", totals.get("resident_kb", 0.0)),
        ("distinct blocks", totals.get("distinct_blocks", 0)),
        ("duplicate copies", totals.get("duplicate_copies", 0)),
        ("duplicate KB", totals.get("duplicate_kb", 0.0)),
        ("duplicate share", totals.get("duplicate_share", 0.0)),
        ("master evictions", totals.get("master_evictions", 0)),
        ("non-master evictions", totals.get("nonmaster_evictions", 0)),
        ("master-evicted-while-replica-held",
         totals.get("violations", 0)),
        ("one-hop-stale lookups", totals.get("stale_lookups", 0)),
        ("master forwards", totals.get("forwards", 0)),
    ]
    if "directory_entries" in totals:
        summary_rows.append(
            ("directory entries", totals["directory_entries"])
        )
    parts.append(format_table(
        ["quantity", "value"], summary_rows,
        title="cache behavior (end of run)", ndigits=4,
    ))

    by_reason = totals.get("evictions_by_reason", {})
    if by_reason:
        parts.append("")
        parts.append(format_table(
            ["reason", "count"], sorted(by_reason.items()),
            title="evictions by reason",
        ))
    outcomes = totals.get("forward_outcomes", {})
    if outcomes:
        parts.append("")
        parts.append(format_table(
            ["outcome", "count"], sorted(outcomes.items()),
            title="forward outcomes",
        ))

    per_node = snap.get("per_node", {})
    if per_node:
        dir_census = totals.get("directory_masters_per_node", {})
        rows = [
            (node, row.get("masters", 0), row.get("nonmasters", 0),
             row.get("kb", 0.0),
             dir_census.get(str(node)) if dir_census else None)
            for node, row in sorted(
                per_node.items(), key=lambda kv: int(kv[0])
            )
        ]
        parts.append("")
        parts.append(format_table(
            ["node", "masters", "non-masters", "KB", "dir masters"],
            rows, title="per-node replica census", ndigits=1,
        ))

    hop_hist = snap.get("hop_histogram", {})
    if hop_hist:
        rows = sorted(hop_hist.items(), key=lambda kv: int(kv[0]))
        parts.append("")
        parts.append(format_table(
            ["hops", "forward arrivals"], rows,
            title="forwarding-hop histogram "
                  "(per-master chain length at each arrival)",
        ))

    windows = snap.get("windows", [])
    if windows:
        parts.append("")
        parts.append(
            f"per-window series ({snap.get('window_ms', 0.0):.1f} ms "
            f"windows, {len(windows)} windows):"
        )
        dup = [w.get("duplicate_share", 0.0) for w in windows]
        parts.append(f"  dup share |{sparkline(dup, hi=1.0)}| "
                     f"peak {max(dup):.3f}")
        for key, label in (
            ("master_evictions", "master ev"),
            ("nonmaster_evictions", "nonmst ev"),
            ("violations", "violations"),
            ("forwards", "forwards"),
        ):
            vals = [w.get(key, 0.0) for w in windows]
            parts.append(f"  {label:<10}|{sparkline(vals)}| "
                         f"peak {max(vals):.0f}")

    ledger = snap.get("ledger", [])
    if ledger:
        tail = ledger[-ledger_tail:]
        parts.append("")
        parts.append(
            f"eviction ledger (last {len(tail)} of {len(ledger)} kept):"
        )
        for entry in tail:
            dest = (f" -> node {entry['dest']}"
                    if entry.get("dest") is not None else "")
            kind = "master" if entry.get("master") else "replica"
            parts.append(
                f"  t={entry.get('t_ms', 0.0):9.3f} node "
                f"{entry.get('node', '?')} {entry.get('reason', '?'):<10} "
                f"{kind:<7} {entry.get('key', '?')}{dest} "
                f"(replicas held: {entry.get('nonmasters_held', 0)})"
            )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# critical-path profile report
# ---------------------------------------------------------------------------
def render_critical_report(profile: dict[str, Any]) -> str:
    """Tables for a :func:`repro.obs.critical.critical_profile` result."""
    n = profile.get("requests", 0)
    if not n:
        return ("no finished request roots in trace "
                "(was the run profiled with --profile?)")
    phase_ms = profile.get("phase_critical_ms", {})
    share = profile.get("phase_critical_share", {})
    known = [p for p in PHASE_ORDER if p in phase_ms]
    extra = sorted(set(phase_ms) - set(PHASE_ORDER))
    rows = [
        (p, phase_ms[p] / n, 100.0 * share.get(p, 0.0))
        for p in known + extra
    ]
    rows.append(("total = mean critical path",
                 profile.get("mean_critical_ms", 0.0), 100.0))
    parts = [format_table(
        ["phase", "critical ms/req", "share %"], rows,
        title=f"critical-path profile ({n} requests)", ndigits=4,
    )]
    parts.append(
        f"tiling residual: {profile.get('mean_residual_ms', 0.0):.6f} "
        "ms/req (float noise)"
    )
    edges = profile.get("top_edges", [])
    if edges:
        parts.append("")
        parts.append(format_table(
            ["critical edge (phase@node)", "count", "total ms"],
            [(e["edge"], e["count"], e["ms"]) for e in edges],
            title="top critical edges (latency hand-offs)", ndigits=3,
        ))
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# differential ("explain") report
# ---------------------------------------------------------------------------
def render_diff_report(diff: dict[str, Any]) -> str:
    """The explain report for a
    :func:`repro.obs.diff.diff_attributions` result."""
    base = diff.get("base", {})
    cur = diff.get("current", {})
    delta = diff.get("delta_ms", 0.0)
    phase_delta = diff.get("phase_delta_ms", {})
    known = [p for p in PHASE_ORDER if p in phase_delta]
    extra = sorted(set(phase_delta) - set(PHASE_ORDER))
    rows = []
    for p in known + extra:
        d = phase_delta[p]
        rows.append((p, d, 100.0 * d / delta if delta else 0.0))
    rows.append(("(residual)", diff.get("residual_delta_ms", 0.0),
                 100.0 * diff.get("residual_delta_ms", 0.0) / delta
                 if delta else 0.0))
    rows.append(("total = Δ mean response", delta, 100.0))
    parts = [format_table(
        ["phase", "Δ ms/req", "share of Δ %"], rows,
        title=(
            f"differential attribution "
            f"({base.get('requests', 0)} -> {cur.get('requests', 0)} "
            f"requests, {base.get('mean_response_ms', 0.0):.4f} -> "
            f"{cur.get('mean_response_ms', 0.0):.4f} ms)"
        ),
        ndigits=4,
    )]
    parts.append(
        f"conservation check: phase deltas + residual - Δ = "
        f"{diff.get('conservation_residual_ms', 0.0):.6f} ms (~0 expected)"
    )
    parts.append("")
    if delta > 0.0 and diff.get("regressed_phase"):
        top = diff["top_regressions"][0]
        parts.append(
            f"regression explained by: {top['phase']} "
            f"({top['delta_ms']:+.4f} ms/req, "
            f"{100.0 * top['share']:.0f}% of the {delta:+.4f} ms delta)"
        )
    elif delta < 0.0 and diff.get("improved_phase"):
        top = diff["top_improvements"][0]
        parts.append(
            f"improvement explained by: {top['phase']} "
            f"({top['delta_ms']:+.4f} ms/req, "
            f"{100.0 * top['share']:.0f}% of the {delta:+.4f} ms delta)"
        )
    else:
        parts.append("mean response unchanged (no phase to name)")
    binding = diff.get("binding_resource", {})
    if binding.get("base") and binding.get("current"):
        if binding["changed"]:
            parts.append(
                f"binding resource moved: {binding['base']} -> "
                f"{binding['current']}"
            )
        else:
            parts.append(
                f"binding resource unchanged: {binding['current']}"
            )
    by_class = diff.get("by_class_delta", {})
    if by_class:
        parts.append("")
        parts.append(format_table(
            ["class", "base ms", "current ms", "Δ ms", "base n", "cur n"],
            [
                (cls, row["base"]["mean_response_ms"],
                 row["current"]["mean_response_ms"], row["delta_ms"],
                 row["base"]["requests"], row["current"]["requests"])
                for cls, row in sorted(by_class.items())
            ],
            title="per-class mean response", ndigits=4,
        ))
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# SLO evaluation report
# ---------------------------------------------------------------------------
def render_slo_report(report: dict[str, Any]) -> str:
    """Summary + per-window view of an SLO evaluation report."""
    spec = report.get("spec", {})
    totals = report.get("totals", {})
    windows = report.get("windows", [])
    alerts = report.get("alerts", [])
    parts = [format_table(
        ["quantity", "value"],
        [
            ("windows", len(windows)),
            ("requests", totals.get("requests", 0)),
            ("failed", totals.get("failed", 0)),
            ("availability", totals.get("availability", 1.0)),
            ("bad (budget) requests", totals.get("bad", 0)),
            ("budget spent (x allowed)", totals.get("budget_spent", 0.0)),
            ("max burn rate", totals.get("max_burn_rate", 0.0)),
            ("windows breached", totals.get("windows_breached", 0)),
            ("alerts", totals.get("alert_count", 0)),
        ],
        title=f"SLO evaluation ({spec.get('window_ms', 0.0):.0f} ms windows)",
        ndigits=4,
    )]
    if windows:
        p95s = [w.get("p95_ms", 0.0) for w in windows]
        parts.append("")
        parts.append(f"  p95 ms    |{sparkline(p95s)}| peak {max(p95s):.2f}")
        burn = [w.get("burn_rate", 0.0) for w in windows]
        if any(burn):
            parts.append(f"  burn rate |{sparkline(burn)}| "
                         f"peak {max(burn):.2f}")
        breach_flags = "".join(
            "A" if w.get("alerts") else "-" for w in windows
        )
        parts.append(f"  alerts    |{breach_flags}|")
    if alerts:
        parts.append("")
        parts.append(f"alerts ({len(alerts)}):")
        for alert in alerts:
            parts.append(
                f"  t={alert['t_ms']:9.1f} window {alert['window']:>4} "
                f"{alert['kind']:<14} observed {alert['observed']:.4f} "
                f"vs target {alert['target']:.4f}"
            )
    else:
        parts.append("")
        parts.append("no alerts: every window met its objectives")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# fleet report (cross-cell sweep rollup)
# ---------------------------------------------------------------------------
#: Shade ramp for the ASCII throughput heatmaps (low -> high).
_HEAT_GLYPHS = " ░▒▓█"


def _heat(value: float | None, lo: float, hi: float) -> str:
    if value is None:
        return "  ·  "
    if hi <= lo:
        frac = 1.0
    else:
        frac = (value - lo) / (hi - lo)
    idx = min(len(_HEAT_GLYPHS) - 1, int(frac * (len(_HEAT_GLYPHS) - 1)
                                         + 0.5))
    return _HEAT_GLYPHS[idx] * 5


def _fleet_heatmaps(matrix: dict[str, Any]) -> list[str]:
    """One (system × memory) heatmap panel per trace, shades normalized
    within the panel so the bottleneck-migration shape stands out."""
    parts: list[str] = []
    memories = matrix["memories_mb"]
    header = "  " + f"{'system':<10}" + " ".join(
        f"{m:>5g}" for m in memories
    ) + "   MB/node"
    for trace in matrix["traces"]:
        grid = matrix["throughput_rps"][trace]
        vals = [v for row in grid.values() for v in row if v is not None]
        lo, hi = (min(vals), max(vals)) if vals else (0.0, 0.0)
        parts.append(f"throughput heatmap — {trace} "
                     f"(range {lo:.0f}..{hi:.0f} req/s)")
        parts.append(header)
        for system in matrix["systems"]:
            cells = " ".join(
                _heat(v, lo, hi) for v in grid[system]
            )
            parts.append(f"  {system:<10}{cells}")
        parts.append("")
    return parts


def render_fleet_report(report: dict[str, Any]) -> str:
    """The cross-cell rollup for an ``analyze fleet`` report."""
    sweep = report.get("sweep", {})
    parts = [
        f"fleet report — sweep {sweep.get('run_id', '?')} "
        f"(git {sweep.get('git_sha', '?')})",
        f"  cells: {sweep.get('cells', 0)} total, "
        f"{sweep.get('cells_ok', 0)} ok, "
        f"{sweep.get('cells_failed', 0)} failed; "
        f"workers: {sweep.get('workers', '?')}",
    ]
    progress = sweep.get("progress") or {}
    if progress:
        parts.append(
            f"  wall-clock: {progress.get('elapsed_s', 0.0):.1f}s at "
            f"{progress.get('cells_per_s', 0.0):.2f} cells/s"
        )
    overhead = sweep.get("obs_overhead") or {}
    if overhead:
        parts.append(
            f"  observability overhead: "
            f"{overhead.get('events_per_s_tracer_on', 0.0):,.0f} events/s "
            f"traced vs {overhead.get('events_per_s_tracer_off', 0.0):,.0f} "
            f"untraced ({100.0 * overhead.get('overhead_frac', 0.0):.1f}%)"
        )

    cons = report.get("conservation", {})
    parts.append("")
    if cons.get("cells_checked"):
        verdict = "OK" if cons.get("ok") else "VIOLATED"
        parts.append(
            f"conservation check [{verdict}]: "
            f"{cons['cells_checked']} cells, per-phase sum "
            f"{cons.get('phase_sum_ms', 0.0):.3f} ms + residual "
            f"{cons.get('residual_sum_ms', 0.0):.3f} ms vs total "
            f"{cons.get('total_ms', 0.0):.3f} ms "
            f"(error {cons.get('error_ms', 0.0):.2e} ms, "
            f"bound {cons.get('bound_ms', 0.0):.2e} ms)"
        )
    else:
        parts.append("conservation check: n/a "
                     "(no cells carry attribution artifacts)")

    freq = report.get("binding_resources", {})
    if freq:
        parts.append("")
        parts.append(format_table(
            ["resource", "cells bound"], list(freq.items()),
            title="binding-resource frequency across the matrix",
        ))

    matrix = report.get("matrix")
    if matrix:
        parts.append("")
        parts.extend(_fleet_heatmaps(matrix))

    cells = report.get("cells", [])
    if cells:
        rows = [
            (c.get("index"), c.get("system"), c.get("workload"),
             c.get("mem_mb_per_node"), c.get("status"),
             c.get("throughput_rps"), c.get("p95_ms"),
             c.get("binding_resource") or "-",
             c.get("wall_s"))
            for c in cells
        ]
        parts.append(format_table(
            ["#", "system", "trace", "MB/node", "status", "req/s",
             "p95 ms", "binds", "wall s"],
            rows, title="per-cell summary", ndigits=2,
        ))

    failed = report.get("failed_cells", [])
    if failed:
        parts.append("")
        parts.append(f"failed cells ({len(failed)}):")
        for f in failed:
            parts.append(
                f"  #{f.get('index')} {f.get('system')}/{f.get('workload')}"
                f"/{f.get('mem_mb_per_node')}MB: {f.get('error')}"
            )

    slo = report.get("slo")
    if slo:
        parts.append("")
        verdict = "met" if slo.get("ok") else "BREACHED"
        parts.append(
            f"fleet SLO [{verdict}]: {slo.get('cells_evaluated', 0)} cells "
            f"evaluated, {slo.get('cells_breaching', 0)} breaching"
        )
        for b in slo.get("breaches", []):
            parts.append(f"  {b['cell']}: " + "; ".join(b["breaches"]))
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# sweep progress report (telemetry replay)
# ---------------------------------------------------------------------------
def render_progress_report(events: Iterable[dict[str, Any]]) -> str:
    """Replay a sweep progress JSONL as a human-readable timeline.

    Handles the degenerate shapes gracefully: an empty sweep (no cells
    ran) and a single-cell sweep (no straggler statistics possible).
    """
    events = list(events)
    cells = [e for e in events if e.get("event") == "cell"]
    end = next((e for e in events if e.get("event") == "end"), None)
    start = next((e for e in events if e.get("event") == "start"), None)
    total = (start or end or {}).get("total", len(cells))
    if not cells:
        return f"sweep progress: no cells ran (of {total} planned)"
    parts = [f"sweep progress: {len(cells)}/{total} cells completed"]
    for e in cells:
        status = "ok" if e.get("status") == "ok" else "FAILED"
        parts.append(
            f"  [{e.get('elapsed_s', 0.0):8.2f}s] "
            f"#{e.get('index'):>4} {e.get('system')}/{e.get('workload')}"
            f"/{e.get('mem_mb_per_node'):g}MB "
            f"{status:<6} wall {e.get('wall_s', 0.0):7.2f}s "
            f"worker {e.get('worker')} "
            f"({e.get('cells_per_s', 0.0):.2f}/s, "
            f"eta {e.get('eta_s', 0.0):.0f}s)"
        )
    summary = end or {}
    done = summary.get("done", len(cells))
    failed = summary.get("failed",
                         sum(1 for e in cells if e.get("status") != "ok"))
    parts.append(
        f"  done: {done}/{total} cells, {failed} failed, "
        f"{summary.get('elapsed_s', cells[-1].get('elapsed_s', 0.0)):.2f}s "
        f"({summary.get('cells_per_s', 0.0):.2f} cells/s)"
    )
    stragglers = summary.get("stragglers", [])
    if len(cells) < 2:
        parts.append("  stragglers: n/a (need at least 2 cells)")
    elif stragglers:
        for s in stragglers:
            parts.append(
                f"  straggler: #{s.get('index')} {s.get('cell')} "
                f"wall {s.get('wall_s', 0.0):.2f}s "
                f"({s.get('x_median', 0.0):.1f}x median)"
            )
    else:
        parts.append("  stragglers: none")
    workers = summary.get("workers", {})
    if workers:
        parts.append(
            "  workers: " + ", ".join(
                f"{name}={count}" for name, count in sorted(workers.items())
            )
        )
    return "\n".join(parts)
