"""The shared versioned schema for machine-readable analysis outputs.

Every JSON document the offline analysis layer emits for CI consumption
— ``analyze --json`` attribution summaries, differential (``diff``)
reports, critical-path profiles, SLO evaluation reports — carries the
same two envelope fields:

* ``schema_version`` — :data:`OUTPUT_SCHEMA_VERSION`, bumped once for
  the whole family on any incompatible shape change, so a CI consumer
  checks a single number;
* ``kind`` — which report this is (``"attribution"``, ``"diff"``,
  ``"critical"``, ``"slo"``, ``"fleet"``), so a file can be sniffed
  without trusting its name.

:func:`as_report` stamps the envelope; :func:`check_report` validates a
loaded document (the round-trip contract CI artifacts rely on).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "OUTPUT_SCHEMA_VERSION",
    "REPORT_KINDS",
    "as_report",
    "check_report",
]

#: Version of the shared analysis-output schema.  History:
#: 1 — ``analyze --json`` attribution summary only (PR 4);
#: 2 — envelope (``kind``) shared with diff / critical / SLO reports;
#:     the ``"fleet"`` kind (cross-cell sweep rollups) was added later
#:     as a purely additive change — no version bump, so committed
#:     version-2 baselines keep validating.
OUTPUT_SCHEMA_VERSION = 2

#: Every report kind the analysis layer emits.
REPORT_KINDS = ("attribution", "diff", "critical", "slo", "fleet")


def as_report(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Stamp ``payload`` with the shared envelope; returns a new dict."""
    if kind not in REPORT_KINDS:
        raise ValueError(f"unknown report kind {kind!r}; "
                         f"choose from {REPORT_KINDS}")
    out: dict[str, Any] = {
        "schema_version": OUTPUT_SCHEMA_VERSION,
        "kind": kind,
    }
    out.update(payload)
    return out


def check_report(doc: dict[str, Any], kind: str | None = None) -> str:
    """Validate a loaded report envelope; returns its ``kind``.

    Raises :class:`ValueError` when the document is not a report, its
    schema version is unknown, or ``kind`` (when given) does not match.
    """
    if not isinstance(doc, dict):
        raise ValueError("report must be a JSON object")
    version = doc.get("schema_version")
    if version != OUTPUT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {version!r} "
            f"(this build reads {OUTPUT_SCHEMA_VERSION})"
        )
    got = doc.get("kind")
    if got not in REPORT_KINDS:
        raise ValueError(f"unknown report kind {got!r}")
    if kind is not None and got != kind:
        raise ValueError(f"expected a {kind!r} report, got {got!r}")
    return got
