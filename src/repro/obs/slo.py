"""Windowed SLO evaluation with deterministic alert events.

Chaos and flash-crowd runs degrade *over time*; a run-level mean hides
the window where the cluster actually hurt.  This module evaluates an
SLO spec over fixed windows of simulated time as measured requests
complete:

* **latency objectives** — exact (nearest-rank) per-window p95/p99
  against targets;
* **availability** — the fraction of non-``failed`` requests per window
  (the driver's explicit failed class under fault injection);
* **error-budget burn rate** — a request is *bad* when it failed or
  exceeded ``good_latency_ms``; the window's bad fraction divided by
  the allowed bad fraction (``1 - availability`` target) is the burn
  rate, and crossing ``threshold`` alerts (the "fast burn" pattern from
  SRE practice).

Every breach emits an ``alert`` point span through the run's tracer, so
alerts land *in the trace*: golden files can pin them, replaying the
same seed and fault plan reproduces them byte-identically, and the
Perfetto export shows them on the timeline next to the ``fault`` events
that caused them.  Determinism needs no further argument than the
kernel's: windows are a pure function of (simulated completion times,
latencies, failure flags), all of which are seed-determined; the tracer
stamps alert spans at the completion that closed the window (or at
finalize time for the last window), both deterministic instants.

Off by default: nothing here runs unless a spec is passed
(``Observability(slo=...)`` / ``run --slo spec.json``), so golden
traces are byte-identical with the subsystem absent.
"""

from __future__ import annotations

import json
import logging
import math
from dataclasses import dataclass
from typing import Any

from .schema import as_report
from .tracing import NULL_TRACER

__all__ = ["SloSpec", "SloEvaluator", "ALERT_SPAN"]

logger = logging.getLogger(__name__)

#: Span name of alert point events in the trace.
ALERT_SPAN = "alert"


def _nearest_rank(sorted_vals: list[float], q: float) -> float:
    """Exact nearest-rank quantile of a sorted, non-empty list."""
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return sorted_vals[rank - 1]


@dataclass(frozen=True)
class SloSpec:
    """One run's service-level objectives.

    All objectives are optional but at least one must be set.  The JSON
    shape groups them::

        {"window_ms": 500.0,
         "latency": {"p95_ms": 40.0, "p99_ms": 80.0},
         "availability": 0.99,
         "burn_rate": {"threshold": 2.0, "good_latency_ms": 80.0}}
    """

    window_ms: float = 1000.0
    p95_ms: float | None = None
    p99_ms: float | None = None
    #: Minimum fraction of non-failed requests per window (0, 1].
    availability: float | None = None
    #: Alert when window burn rate reaches this multiple of budget.
    burn_rate_threshold: float | None = None
    #: A request is "bad" for the burn rate when it failed or took
    #: longer than this (None: only failures are bad).
    good_latency_ms: float | None = None

    def __post_init__(self) -> None:
        if self.window_ms <= 0.0:
            raise ValueError("window_ms must be positive")
        for name in ("p95_ms", "p99_ms", "good_latency_ms"):
            val = getattr(self, name)
            if val is not None and val <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.availability is not None \
                and not 0.0 < self.availability <= 1.0:
            raise ValueError("availability target must be in (0, 1]")
        if self.burn_rate_threshold is not None:
            if self.burn_rate_threshold <= 0.0:
                raise ValueError("burn_rate threshold must be positive")
            if self.availability is None or self.availability >= 1.0:
                raise ValueError(
                    "burn_rate needs an availability target < 1.0 "
                    "(the error budget is 1 - availability)"
                )
        if (self.p95_ms is None and self.p99_ms is None
                and self.availability is None):
            raise ValueError(
                "spec has no objectives: set latency targets and/or "
                "an availability target"
            )

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"window_ms": self.window_ms}
        latency = {}
        if self.p95_ms is not None:
            latency["p95_ms"] = self.p95_ms
        if self.p99_ms is not None:
            latency["p99_ms"] = self.p99_ms
        if latency:
            out["latency"] = latency
        if self.availability is not None:
            out["availability"] = self.availability
        if self.burn_rate_threshold is not None:
            burn: dict[str, Any] = {"threshold": self.burn_rate_threshold}
            if self.good_latency_ms is not None:
                burn["good_latency_ms"] = self.good_latency_ms
            out["burn_rate"] = burn
        return out

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SloSpec":
        if not isinstance(doc, dict):
            raise ValueError("SLO spec must be a JSON object")
        known = {"window_ms", "latency", "availability", "burn_rate"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown SLO spec keys: {unknown}")
        latency = doc.get("latency", {})
        burn = doc.get("burn_rate", {})
        return cls(
            window_ms=float(doc.get("window_ms", 1000.0)),
            p95_ms=latency.get("p95_ms"),
            p99_ms=latency.get("p99_ms"),
            availability=doc.get("availability"),
            burn_rate_threshold=burn.get("threshold"),
            good_latency_ms=burn.get("good_latency_ms"),
        )

    @classmethod
    def load(cls, path) -> "SloSpec":
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_dict(json.load(fp))

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")


class SloEvaluator:
    """Evaluates an :class:`SloSpec` incrementally over a run.

    The driver calls :meth:`observe` for every *measured* completion
    (simulated completion time, latency, failed flag).  Windows close
    as time crosses their boundary; each closed window is evaluated and
    breaches emit ``alert`` point spans through ``tracer``.  Call
    :meth:`finalize` once after the run for the report.
    """

    def __init__(self, spec: SloSpec, tracer=NULL_TRACER):
        self.spec = spec
        self.tracer = tracer
        self.alerts: list[dict[str, Any]] = []
        self.windows: list[dict[str, Any]] = []
        self._idx: int | None = None
        self._lat: list[float] = []
        self._failed = 0
        self._bad = 0
        self._total_requests = 0
        self._total_failed = 0
        self._total_bad = 0
        self._finalized = False

    # -- accumulation -------------------------------------------------------
    def observe(self, t_ms: float, latency_ms: float, failed: bool) -> None:
        """Fold one measured completion into the evaluation."""
        if self._finalized:
            raise RuntimeError("observe() after finalize()")
        idx = int(t_ms // self.spec.window_ms)
        if self._idx is None:
            self._idx = idx
        while idx > self._idx:
            self._close_window()
        self._lat.append(latency_ms)
        good_ms = self.spec.good_latency_ms
        bad = failed or (good_ms is not None and latency_ms > good_ms)
        if failed:
            self._failed += 1
            self._total_failed += 1
        if bad:
            self._bad += 1
            self._total_bad += 1
        self._total_requests += 1

    # -- evaluation ---------------------------------------------------------
    def _alert(self, window: dict[str, Any], kind: str,
               observed: float, target: float) -> None:
        alert = {
            "t_ms": window["t_ms"],
            "window": window["index"],
            "kind": kind,
            "observed": observed,
            "target": target,
        }
        self.alerts.append(alert)
        window["alerts"].append(kind)
        self.tracer.point(ALERT_SPAN, node=None, kind=kind,
                          window=window["index"], window_t_ms=window["t_ms"],
                          observed=observed, target=target)

    def _close_window(self) -> None:
        spec = self.spec
        assert self._idx is not None
        window: dict[str, Any] = {
            "index": self._idx,
            "t_ms": self._idx * spec.window_ms,
            "requests": len(self._lat),
            "failed": self._failed,
            "bad": self._bad,
            "alerts": [],
        }
        if self._lat:
            ordered = sorted(self._lat)
            n = len(ordered)
            window["p95_ms"] = _nearest_rank(ordered, 0.95)
            window["p99_ms"] = _nearest_rank(ordered, 0.99)
            window["availability"] = 1.0 - self._failed / n
            if spec.p95_ms is not None and window["p95_ms"] > spec.p95_ms:
                self._alert(window, "latency.p95",
                            window["p95_ms"], spec.p95_ms)
            if spec.p99_ms is not None and window["p99_ms"] > spec.p99_ms:
                self._alert(window, "latency.p99",
                            window["p99_ms"], spec.p99_ms)
            if spec.availability is not None \
                    and window["availability"] < spec.availability:
                self._alert(window, "availability",
                            window["availability"], spec.availability)
            if spec.burn_rate_threshold is not None:
                budget = 1.0 - spec.availability
                window["burn_rate"] = (self._bad / n) / budget
                if window["burn_rate"] >= spec.burn_rate_threshold:
                    self._alert(window, "burn_rate",
                                window["burn_rate"],
                                spec.burn_rate_threshold)
        self.windows.append(window)
        self._idx += 1
        self._lat = []
        self._failed = 0
        self._bad = 0

    def finalize(self) -> dict[str, Any]:
        """Close the last open window and return the ``slo`` report."""
        if not self._finalized:
            if self._idx is not None:
                self._close_window()
            self._finalized = True
        n = self._total_requests
        burn_rates = [w["burn_rate"] for w in self.windows
                      if "burn_rate" in w]
        budget = (1.0 - self.spec.availability
                  if self.spec.availability not in (None, 1.0) else None)
        logger.info("SLO evaluation: %d windows, %d alerts",
                    len(self.windows), len(self.alerts))
        return as_report("slo", {
            "spec": self.spec.to_dict(),
            "windows": self.windows,
            "alerts": self.alerts,
            "totals": {
                "requests": n,
                "failed": self._total_failed,
                "bad": self._total_bad,
                "availability": 1.0 - self._total_failed / n if n else 1.0,
                "budget_spent": (
                    (self._total_bad / n) / budget
                    if n and budget else 0.0
                ),
                "max_burn_rate": max(burn_rates) if burn_rates else 0.0,
                "alert_count": len(self.alerts),
                "windows_breached": sum(
                    1 for w in self.windows if w["alerts"]
                ),
            },
        })
