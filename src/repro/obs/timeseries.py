"""Windowed time series over a profiled trace.

Bins a run's span records into fixed-width windows of simulated time:

* **throughput** — request completions per window (and per second);
* **composition** — completions split by service class
  (local / remote / disk / coalesced);
* **per-device utilization** — busy-time integral of the service
  portions of ``cpu`` / ``nic`` / ``bus`` / ``disk`` phase spans,
  normalized by cluster capacity (request-path work only; background
  writebacks and forwards are unprofiled and excluded);
* **queue depth** — time-averaged number of request-path jobs queued
  per resource class.

Windows overlapping the warm-up prefix are flagged ``"warm": false``
(the boundary is inferred from the first measured client root), so the
steady-state portion the paper measures is directly visible.
"""

from __future__ import annotations

import json
import logging
from collections.abc import Iterable
from typing import Any

from ..sim.stats import WindowedSeries
from .analyze import build_trees, request_roots
from .profile import PHASE_SPAN

__all__ = ["build_timeseries", "dump_timeseries"]

logger = logging.getLogger(__name__)

#: Resource classes tracked per window.
_RESOURCES = ("cpu", "nic", "bus", "disk")

#: Default number of windows when no width is given.
_DEFAULT_WINDOWS = 60


def _infer_warm_start(roots) -> float | None:
    """Earliest start among measured client roots, if warm-up is marked."""
    marked = [r for r in roots if "measured" in r.attrs]
    if not marked:
        return None
    measured = [r.start for r in marked if r.attrs["measured"]]
    return min(measured) if measured else None


def build_timeseries(
    records: Iterable[dict[str, Any]],
    window_ms: float | None = None,
) -> dict[str, Any]:
    """Aggregate a trace into a JSON-ready windowed time series."""
    roots, index = build_trees(records)
    reqs = request_roots(roots)
    spans = list(index.values())
    if not spans:
        return {"window_ms": window_ms or 0.0, "num_nodes": 0, "windows": []}

    t_end = max((s.end for s in spans if s.end is not None), default=0.0)
    if window_ms is None:
        window_ms = max(t_end / _DEFAULT_WINDOWS, 1e-6)
    num_nodes = 1 + max(
        (s.node for s in spans if s.node is not None), default=0
    )
    warm_start = _infer_warm_start(reqs)

    throughput = WindowedSeries(window_ms)
    by_class: dict[str, WindowedSeries] = {}
    busy = {res: WindowedSeries(window_ms) for res in _RESOURCES}
    queued = {res: WindowedSeries(window_ms) for res in _RESOURCES}

    for root in reqs:
        throughput.add(root.end)
        cls = root.attrs.get("cls") or "?"
        series = by_class.get(cls)
        if series is None:
            series = by_class[cls] = WindowedSeries(window_ms)
        series.add(root.end)

    for span in spans:
        if span.name != PHASE_SPAN or span.dur is None:
            continue
        attrs = span.attrs
        phase = attrs.get("p")
        if phase in ("cpu", "nic", "bus"):
            svc_start = span.start + attrs.get("q", 0.0)
            queued[phase].add_interval(span.start, min(svc_start, span.end))
            busy[phase].add_interval(min(svc_start, span.end), span.end)
        elif phase == "disk":
            svc = min(attrs.get("svc", span.dur), span.dur)
            svc_start = max(span.start, span.end - svc)
            queued["disk"].add_interval(span.start, svc_start)
            busy["disk"].add_interval(svc_start, span.end)

    first = 0
    last = max(throughput.window_range()[1], int(t_end // window_ms))
    windows: list[dict[str, Any]] = []
    for idx in range(first, last + 1):
        t0 = throughput.window_start(idx)
        completions = throughput.values(idx, idx)[0]
        windows.append({
            "t_ms": t0,
            "warm": warm_start is None or t0 >= warm_start,
            "completions": completions,
            "throughput_rps": completions / (window_ms / 1000.0),
            "by_class": {
                cls: series.values(idx, idx)[0]
                for cls, series in sorted(by_class.items())
            },
            "utilization": {
                res: busy[res].values(idx, idx)[0] / (window_ms * num_nodes)
                for res in _RESOURCES
            },
            "queue_depth": {
                res: queued[res].values(idx, idx)[0] / window_ms
                for res in _RESOURCES
            },
        })
    logger.info("time series: %d windows of %.3f ms", len(windows), window_ms)
    return {
        "window_ms": window_ms,
        "num_nodes": num_nodes,
        "warm_start_ms": warm_start,
        "windows": windows,
    }


def dump_timeseries(ts: dict[str, Any], path) -> None:
    """Write a time series dict as deterministic JSON."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(ts, fp, indent=2, sort_keys=True, default=float)
        fp.write("\n")
