"""Span-style request tracing with deterministic JSONL export.

Every request the cluster serves becomes a *trace*: a root ``request``
span plus child spans for each hop the protocol takes (cache probe, peer
fetch, disk run, writeback, forward).  Timestamps are simulated
milliseconds, so a trace answers "why was this request classified
``disk``?" exactly — and, because the kernel is deterministic, two runs
with the same seed produce byte-identical trace files, which is what the
golden-trace regression harness snapshots.

Design constraints:

* **Near-zero cost when off** — protocol code calls the tracer
  unconditionally; the :data:`NULL_TRACER` singleton makes every call a
  no-op returning the shared :data:`NULL_SPAN`.
* **Deterministic output** — span/trace ids are a simple monotone
  sequence, records are emitted in finish order (which the kernel makes
  deterministic), and JSON is serialized with sorted keys.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable
from typing import Any

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """One timed hop of a request (or a zero-duration point event)."""

    __slots__ = (
        "_tracer", "trace_id", "span_id", "parent_id",
        "name", "node", "start", "end", "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        node: int | None,
        start: float,
        attrs: dict[str, Any],
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: float | None = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` ran (the record has been emitted)."""
        return self.end is not None

    def finish(self, **attrs: Any) -> None:
        """Close the span at the current simulated time and emit it."""
        if self.end is not None:
            raise RuntimeError(f"span {self.span_id} ({self.name}) finished twice")
        self.end = self._tracer._now()
        if attrs:
            self.attrs.update(attrs)
        self._tracer._emit(self)

    def to_record(self) -> dict[str, Any]:
        """The span as a flat, JSON-ready dict."""
        rec: dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class Tracer:
    """Collects spans; exports deterministic JSONL.

    ``clock`` supplies the current simulated time; bind it to a
    :class:`~repro.sim.engine.Simulator` with :meth:`attach`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or (lambda: 0.0)
        self._records: list[dict[str, Any]] = []
        self._next_id = 0
        # Spans started but not yet finished, by span id (insertion order).
        # Exports append these as ``"unfinished": true`` records so a dump
        # taken mid-run (or after a crashed process) loses nothing.
        self._open: dict[int, Span] = {}

    def attach(self, sim) -> None:
        """Read timestamps from ``sim`` from now on."""
        self._clock = lambda: sim.now

    def _now(self) -> float:
        return self._clock()

    def _emit(self, span: Span) -> None:
        self._open.pop(span.span_id, None)
        self._records.append(span.to_record())

    # -- span creation ------------------------------------------------------
    def start(
        self,
        name: str,
        parent: Span | None = None,
        node: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; a None/null parent starts a new trace."""
        self._next_id += 1
        span_id = self._next_id
        if parent is None or parent is NULL_SPAN:
            trace_id, parent_id = span_id, None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            self, trace_id, span_id, parent_id, name, node, self._now(), attrs
        )
        self._open[span_id] = span
        return span

    def point(
        self,
        name: str,
        parent: Span | None = None,
        node: int | None = None,
        **attrs: Any,
    ) -> Span:
        """A zero-duration event (eviction, coalesce); emitted at once."""
        span = self.start(name, parent=parent, node=node, **attrs)
        span.finish()
        return span

    # -- export -------------------------------------------------------------
    @property
    def records(self) -> list[dict[str, Any]]:
        """Finished span records in emission order."""
        return self._records

    @property
    def open_spans(self) -> list[Span]:
        """Spans started but not yet finished, in start order."""
        return list(self._open.values())

    def clear(self) -> None:
        """Drop all recorded and open spans (id sequence keeps counting)."""
        self._records.clear()
        self._open.clear()

    def to_jsonl(self) -> str:
        """One sorted-keys JSON object per line, emission order.

        Spans still open when the export happens (a dump taken mid-run,
        or a span orphaned by an exception) are appended after the
        finished records, in start order, flagged ``"unfinished": true``
        with a null ``end`` — they are never silently dropped.
        """
        records = list(self._records)
        for span in self._open.values():
            rec = span.to_record()
            rec["unfinished"] = True
            records.append(rec)
        return "".join(
            json.dumps(rec, sort_keys=True, default=float) + "\n"
            for rec in records
        )

    def dump_jsonl(self, path) -> None:
        """Write the JSONL trace to ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_jsonl())

    def digest(self) -> str:
        """SHA-256 of the JSONL bytes — the golden-trace fingerprint."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()


class _NullSpan:
    """Shared inert span: every mutation is a no-op."""

    __slots__ = ()
    trace_id = 0
    span_id = 0
    parent_id = None
    name = "null"
    node = None
    start = 0.0
    end = 0.0
    attrs: dict[str, Any] = {}
    finished = True

    def finish(self, **attrs: Any) -> None:
        pass

    def to_record(self) -> dict[str, Any]:
        return {}


#: The span NullTracer hands out; safe to finish any number of times.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: all operations are no-ops returning NULL_SPAN."""

    enabled = False

    def attach(self, sim) -> None:
        pass

    def start(self, name, parent=None, node=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def point(self, name, parent=None, node=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    @property
    def records(self) -> list[dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass

    def to_jsonl(self) -> str:
        return ""

    def dump_jsonl(self, path) -> None:
        pass

    def digest(self) -> str:
        return hashlib.sha256(b"").hexdigest()


#: Process-wide disabled tracer (components default to this).
NULL_TRACER = NullTracer()
