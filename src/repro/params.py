"""Simulation modeling constants (paper Table 1) and hardware configurations.

The paper's Table 1 lists the service demands used by its event-driven
simulator.  The published PDF extraction corrupted several cells, so the
values here are reconstructed from the hardware the paper names:

* **CPU**: 800 MHz Pentium III, 133 MHz memory bus.  URL parsing and
  per-block bookkeeping costs are the paper's own (they survive in the
  text); the reply-serving cost ``0.1 + size/115`` ms (size in KB) models a
  memory-bandwidth-bound copy at ~115 MB/s of effective payload bandwidth.
* **Disk**: IBM Deskstar 75GXP — ~8.5 ms average seek + rotational latency,
  ~37 MB/s media rate.  The paper charges *one extra seek for metadata on
  every 64 KB access* and assumes files are contiguous within 64 KB extents
  (its pre-allocation assumption); both appear below.
* **Network**: VIA-style Gb/s LAN — 0.038 ms one-way latency ("one round
  trip of 80-100 us" in the paper's prose) and 125 KB/ms of bandwidth.
* **Router**: Cisco 7600 class — a fixed per-request forwarding cost.

All times are in **milliseconds**; all sizes are in **KB** unless a name
says otherwise.  Every simulation object takes a :class:`SimParams`, so
experiments can sweep any constant (ablation A5 sweeps the LAN).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Cache block size used by the block-based middleware (KB).
BLOCK_KB = 8

#: File-system extent size within which files are contiguous (KB).
EXTENT_KB = 64

#: Blocks per extent.
BLOCKS_PER_EXTENT = EXTENT_KB // BLOCK_KB


@dataclass(frozen=True)
class CPUParams:
    """Service demands charged to a node's CPU (ms)."""

    #: Parse an incoming URL request (Table 1: "Parsing time").
    parse_ms: float = 0.1
    #: Fixed part of serving a reply from local memory.
    serve_fixed_ms: float = 0.1
    #: Payload-dependent part of serving: ms per KB (~115 MB/s copy rate).
    serve_per_kb_ms: float = 1.0 / 115.0
    #: Fixed part of "Process a file request" (block bookkeeping setup).
    file_request_fixed_ms: float = 0.03
    #: Per-block part of "Process a file request".
    file_request_per_block_ms: float = 0.01
    #: "Serve peer block request": CPU time at the peer per block served.
    serve_peer_block_ms: float = 0.07
    #: "Cache a new block": CPU time to insert one block locally.
    cache_block_ms: float = 0.01
    #: "Process an evicted master block": CPU time to absorb a forwarded
    #: master copy at its destination.
    evicted_master_ms: float = 0.016
    #: Cost to forward a request to another node (PRESS hand-off path).
    forward_request_ms: float = 0.05
    #: Process a replica-invalidation message for one block (the write
    #: protocol extension; paper Section 6 future work).
    invalidate_block_ms: float = 0.005
    #: Apply a block write to a resident master copy.
    write_block_ms: float = 0.012

    def serve_ms(self, size_kb: float) -> float:
        """Time to send ``size_kb`` of locally cached content to a client."""
        return self.serve_fixed_ms + size_kb * self.serve_per_kb_ms

    def file_request_ms(self, nblocks: int) -> float:
        """Time to process a file request spanning ``nblocks`` blocks."""
        return self.file_request_fixed_ms + nblocks * self.file_request_per_block_ms


@dataclass(frozen=True)
class DiskParams:
    """IBM Deskstar 75GXP-class disk model (ms / KB)."""

    #: Average seek + rotational latency for a non-contiguous access.
    seek_ms: float = 8.5
    #: Extra seek charged for metadata on every 64 KB extent access.
    metadata_seek_ms: float = 8.5
    #: Media transfer rate, ms per KB (~37 MB/s).
    transfer_per_kb_ms: float = 1.0 / 37.0

    def read_ms(self, size_kb: float, *, contiguous: bool) -> float:
        """Time to read ``size_kb`` from one extent.

        ``contiguous`` means the head is already positioned (the previous
        request ended immediately before this one), so neither the data
        seek nor the metadata seek is charged — the paper's "2 seeks vs 12
        seeks" interleaving arithmetic falls out of this.
        """
        transfer = size_kb * self.transfer_per_kb_ms
        if contiguous:
            return transfer
        return self.seek_ms + self.metadata_seek_ms + transfer


@dataclass(frozen=True)
class NetworkParams:
    """Gb/s system-area LAN (VIA-class)."""

    #: One-way wire latency (ms).
    latency_ms: float = 0.038
    #: Link bandwidth in KB per ms (125 KB/ms == 1 Gb/s).
    bandwidth_kb_per_ms: float = 125.0
    #: Fixed per-message NIC occupancy (descriptor handling).
    per_message_ms: float = 0.005

    def transfer_ms(self, size_kb: float) -> float:
        """NIC occupancy to push ``size_kb`` onto the wire."""
        return self.per_message_ms + size_kb / self.bandwidth_kb_per_ms


@dataclass(frozen=True)
class BusParams:
    """Node-internal bus joining CPU, NIC and disk (133 MHz, 64-bit)."""

    #: Fixed per-transfer arbitration cost (ms).
    per_transfer_ms: float = 0.001
    #: Bandwidth in KB per ms (~1 GB/s).
    bandwidth_kb_per_ms: float = 1064.0

    def transfer_ms(self, size_kb: float) -> float:
        """Bus occupancy for moving ``size_kb`` between components."""
        return self.per_transfer_ms + size_kb / self.bandwidth_kb_per_ms


@dataclass(frozen=True)
class RouterParams:
    """Front-end router (Cisco 7600 class)."""

    #: Per-request forwarding cost (ms).  The 7600's spec sheet forwarding
    #: rate is far above our request rates; this keeps it off the critical
    #: path, as in the paper.
    forward_ms: float = 0.002


@dataclass(frozen=True)
class FaultParams:
    """Failure-detection and retry constants (fault-injection extension).

    The paper does not model failures, so none of these come from Table 1;
    the provenance of each choice is documented in DESIGN.md S14.  In
    brief: detection is a few RTTs of a VIA-class LAN plus keepalive
    processing (TCP-keepalive-style detection scaled to SAN latencies);
    three retries is the classic NFS/RPC soft-mount default; the backoff
    cap is chosen to stay well under typical restart times so retries
    resolve by failover, not by waiting out the outage.
    """

    #: Time for a requester to decide a peer/home is dead (ms).  ~130x the
    #: 0.038 ms one-way wire latency: a keepalive probe plus grace period.
    detect_timeout_ms: float = 5.0
    #: Bounded retries before a request fails explicitly (RPC-style).
    max_retries: int = 3
    #: First retry backoff (ms); doubles per attempt.
    backoff_base_ms: float = 1.0
    #: Hard ceiling on any single backoff wait (ms) — the `_retry_after`
    #: starvation fix: no retry can wait longer than this.
    backoff_cap_ms: float = 50.0
    #: Multiplicative jitter range: each wait is scaled by a factor in
    #: [1, 1 + backoff_jitter), decorrelating simultaneous retriers.
    backoff_jitter: float = 0.5


@dataclass(frozen=True)
class SimParams:
    """Complete parameter set for one simulation (paper Table 1).

    Instances are immutable; derive variants with :meth:`with_overrides`
    (used by the hardware-sensitivity ablations).
    """

    cpu: CPUParams = field(default_factory=CPUParams)
    disk: DiskParams = field(default_factory=DiskParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    bus: BusParams = field(default_factory=BusParams)
    router: RouterParams = field(default_factory=RouterParams)
    #: Cache block size (KB).
    block_kb: int = BLOCK_KB
    #: File-system extent size (KB).
    extent_kb: int = EXTENT_KB
    #: Finite queue bound for every service center (jobs).  The paper
    #: models "service centers with finite queues"; the default is large
    #: enough that drops signal a configuration error rather than policy.
    queue_limit: int = 100_000
    #: PRESS-only: model the ~7% TCP-handoff CPU advantage (paper Sec. 6).
    press_tcp_handoff: bool = False
    #: Failure detection / retry constants (only consulted when a
    #: :class:`~repro.sim.faults.FaultInjector` is active).
    faults: FaultParams = field(default_factory=FaultParams)

    def blocks_of(self, size_kb: float) -> int:
        """Number of cache blocks needed for a file of ``size_kb``."""
        return max(1, math.ceil(size_kb / self.block_kb))

    def extents_of(self, size_kb: float) -> int:
        """Number of file-system extents a file of ``size_kb`` spans."""
        return max(1, math.ceil(size_kb / self.extent_kb))

    def with_overrides(self, **kwargs) -> "SimParams":
        """Return a copy with top-level fields replaced.

        Nested dataclasses can be replaced wholesale, e.g.::

            params.with_overrides(network=NetworkParams(bandwidth_kb_per_ms=12.5))
        """
        return replace(self, **kwargs)


#: The default parameter set: the paper's testbed.
DEFAULT_PARAMS = SimParams()


def lan_params(mbits_per_s: float) -> NetworkParams:
    """Network parameters for a LAN of the given speed (ablation A5).

    Latency scales weakly with bandwidth class: 100 Mb/s Ethernet-era
    latency ~0.1 ms, Gb/s ~0.038 ms, 10 Gb/s ~0.01 ms.
    """
    kb_per_ms = mbits_per_s / 8.0 / 1000.0 * 1000.0  # Mb/s -> KB/ms
    if mbits_per_s <= 100:
        latency = 0.1
    elif mbits_per_s <= 1000:
        latency = 0.038
    else:
        latency = 0.01
    return NetworkParams(latency_ms=latency, bandwidth_kb_per_ms=kb_per_ms)


#: Named hardware configurations for the sensitivity study.
HARDWARE_CONFIGS: dict[str, SimParams] = {
    "paper": DEFAULT_PARAMS,
    "lan-100mb": DEFAULT_PARAMS.with_overrides(network=lan_params(100)),
    "lan-1gb": DEFAULT_PARAMS.with_overrides(network=lan_params(1000)),
    "lan-10gb": DEFAULT_PARAMS.with_overrides(network=lan_params(10000)),
    "slow-disk": DEFAULT_PARAMS.with_overrides(
        disk=DiskParams(seek_ms=12.0, metadata_seek_ms=12.0,
                        transfer_per_kb_ms=1.0 / 20.0)
    ),
    "fast-disk": DEFAULT_PARAMS.with_overrides(
        disk=DiskParams(seek_ms=4.0, metadata_seek_ms=4.0,
                        transfer_per_kb_ms=1.0 / 80.0)
    ),
}
