"""PRESS-like locality-conscious baseline (system S7 in DESIGN.md).

* :class:`~repro.press.server.PressServer` — content- and load-aware
  whole-file server.
* :class:`~repro.press.filecache.FileCache` /
  :class:`~repro.press.filecache.ReplicaDirectory` — whole-file caching
  with de-replication.
"""

from .filecache import FileCache, ReplicaDirectory
from .server import FORWARD_MSG_KB, PressServer

__all__ = ["PressServer", "FileCache", "ReplicaDirectory", "FORWARD_MSG_KB"]
