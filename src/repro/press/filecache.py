"""Whole-file caches with PRESS-style de-replication.

PRESS "uses whole files as the caching granularity, employing a custom
de-replication algorithm instead of block replacement.  This algorithm
behaves like local LRU ... and tries to keep at least one copy of each
file in memory whenever possible."

:class:`FileCache` is one node's memory; :class:`ReplicaDirectory` is the
cluster-wide view of which nodes cache which files (PRESS maintains this
to do content-aware dispatch).  Victim selection walks the local LRU
order and skips files whose only in-memory copy this is, unless nothing
else can be evicted — that *is* the de-replication preference.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

__all__ = ["FileCache", "ReplicaDirectory"]


class ReplicaDirectory:
    """file id -> set of node ids currently caching the whole file."""

    __slots__ = ("_where",)

    def __init__(self) -> None:
        self._where: dict[int, set[int]] = {}

    def holders(self, file_id: int) -> frozenset:
        """Nodes caching ``file_id`` (possibly empty)."""
        return frozenset(self._where.get(file_id, ()))

    def copies(self, file_id: int) -> int:
        """Number of in-memory copies of ``file_id`` cluster-wide."""
        return len(self._where.get(file_id, ()))

    def add(self, file_id: int, node_id: int) -> None:
        """Record that ``node_id`` now caches ``file_id``."""
        self._where.setdefault(file_id, set()).add(node_id)

    def remove(self, file_id: int, node_id: int) -> None:
        """Record that ``node_id`` dropped ``file_id``."""
        nodes = self._where.get(file_id)
        if nodes is None or node_id not in nodes:
            raise KeyError(f"node {node_id} does not cache file {file_id}")
        nodes.discard(node_id)
        if not nodes:
            del self._where[file_id]

    def cached_files(self) -> Iterator[int]:
        """All files with at least one in-memory copy."""
        return iter(self._where)


class FileCache:
    """One node's whole-file LRU cache with de-replication preference.

    ``scope`` is an optional :class:`~repro.obs.cachestats.CacheScope`;
    every residency change flows through :meth:`insert` / :meth:`_drop`
    (``drop`` and ``clear`` are wrappers), so the census cannot drift.
    """

    __slots__ = ("node_id", "capacity_kb", "used_kb", "_lru", "directory",
                 "_scope")

    def __init__(self, node_id: int, capacity_kb: float,
                 directory: ReplicaDirectory, scope=None):
        if capacity_kb <= 0:
            raise ValueError("capacity must be positive")
        self.node_id = node_id
        self.capacity_kb = capacity_kb
        self.used_kb = 0.0
        # file_id -> size_kb; insertion order == LRU order (oldest first).
        self._lru: "OrderedDict[int, float]" = OrderedDict()
        self.directory = directory
        self._scope = scope

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def free_kb(self) -> float:
        """Capacity not currently used."""
        return self.capacity_kb - self.used_kb

    def touch(self, file_id: int) -> None:
        """Record an access (moves to MRU)."""
        self._lru.move_to_end(file_id)

    def fits(self, size_kb: float) -> bool:
        """Could this file ever be cached here?"""
        return size_kb <= self.capacity_kb

    def insert(self, file_id: int, size_kb: float) -> list[int]:
        """Cache ``file_id``, evicting per de-replication; returns the
        evicted file ids.

        Raises if the file is present or can never fit.  The directory is
        kept in sync for both the insertion and every eviction.
        """
        if file_id in self._lru:
            raise KeyError(f"file {file_id} already cached at {self.node_id}")
        if not self.fits(size_kb):
            raise ValueError(
                f"file {file_id} ({size_kb} KB) exceeds cache capacity"
            )
        evicted: list[int] = []
        while self.used_kb + size_kb > self.capacity_kb:
            victim = self._select_victim()
            evicted.append(victim)
            self._drop(victim)
        self._lru[file_id] = size_kb
        self.used_kb += size_kb
        self.directory.add(file_id, self.node_id)
        if self._scope is not None:
            # Whole-file caches have no master concept: every copy is a
            # plain replica in the census.
            self._scope.on_insert(self.node_id, file_id, False, kb=size_kb)
        return evicted

    def _select_victim(self) -> int:
        """LRU order, preferring files that have another copy elsewhere.

        "tries to keep at least one copy of each file in memory whenever
        possible": a file whose only copy is here survives unless *every*
        resident file is a last copy, in which case plain LRU applies.
        """
        fallback: int | None = None
        for file_id in self._lru:  # oldest first
            if fallback is None:
                fallback = file_id
            if self.directory.copies(file_id) > 1:
                return file_id
        if fallback is None:
            raise KeyError("eviction from empty cache")
        return fallback

    def _drop(self, file_id: int) -> None:
        size = self._lru.pop(file_id)
        self.used_kb -= size
        self.directory.remove(file_id, self.node_id)
        if self._scope is not None:
            self._scope.on_remove(self.node_id, file_id, False, kb=size)

    def drop(self, file_id: int) -> None:
        """Explicitly remove a resident file (de-replication by command)."""
        if file_id not in self._lru:
            raise KeyError(f"file {file_id} not cached at {self.node_id}")
        self._drop(file_id)

    def clear(self) -> int:
        """Drop every resident file (fail-stop crash: memory is lost);
        returns how many were dropped.  The directory is kept in sync, so
        content-aware dispatch stops routing at this node immediately."""
        files = list(self._lru)
        for file_id in files:
            self._drop(file_id)
        return len(files)

    def lru_order(self) -> list[int]:
        """Resident files, oldest first (for tests and introspection)."""
        return list(self._lru)

    def metrics(self) -> dict[str, float]:
        """Current occupancy for the metrics registry."""
        return {
            "files": float(len(self._lru)),
            "used_kb": self.used_kb,
            "free_kb": self.free_kb,
        }

    def bind_metrics(self, registry) -> None:
        """Register occupancy as a collector under ``press.cacheN``."""
        registry.register_collector(f"press.cache{self.node_id}", self.metrics)
