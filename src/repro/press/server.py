"""PRESS: the locality-conscious baseline server.

Our comparator is the paper's "highly optimized locality-conscious server
that uses content- and load-aware distribution" [5] (Bianchini & Carrera's
PRESS lineage).  Behaviour reproduced:

* **Content-aware dispatch**: "tries to migrate all requests for a
  particular file to a single node so that only one copy of each file is
  kept in cluster memory."  A request arriving (via RR DNS) at node *n*
  for file *f* is served at *n* if *n* caches *f*; otherwise it is
  forwarded to the least-loaded node caching *f*; if no node caches *f*,
  the least-loaded node reads it from its local disk (PRESS "assumes
  files are replicated everywhere" on disk) and becomes *f*'s caching
  node.
* **Load-aware replication**: "If a node becomes overloaded, however,
  [it] will replicate a subset of the files, sacrificing memory
  efficiency for load balancing."  When the serving node's load exceeds
  ``replicate_threshold`` and a much less loaded node exists, the file is
  replicated there in the background.
* **De-replication** lives in :class:`~repro.press.filecache.FileCache`.
* **TCP hand-off**: forwarded requests are answered straight from the
  serving node (the ~7% advantage the paper grants PRESS); setting
  ``SimParams.press_tcp_handoff=False`` relays replies through the
  entry node instead.

Hit accounting is block-weighted (a hit on a 5-block file counts 5) so
Figure 4 compares PRESS and the middleware on the same denominator.
"""

from __future__ import annotations

from collections.abc import Generator

from ..cache.block import FileLayout
from ..cluster.cluster import Cluster
from ..cluster.disk import DiskRequest
from ..cluster.node import Node
from ..obs.profile import NULL_PROFILER
from ..obs.tracing import NULL_TRACER, Span
from ..params import SimParams
from ..sim.engine import Event
from ..sim.faults import NULL_FAULTS
from ..sim.stats import CounterSet
from .filecache import FileCache, ReplicaDirectory

__all__ = ["PressServer"]

#: KB of an intra-cluster forward/handoff control message.
FORWARD_MSG_KB = 0.2


class PressServer:
    """Whole-file, content- and load-aware clustered web server."""

    def __init__(
        self,
        cluster: Cluster,
        layout: FileLayout,
        capacity_kb: float,
        replicate_threshold: int = 8,
        replicate_headroom: int = 4,
        obs=None,
        faults=None,
    ):
        """``replicate_threshold``: serving-node load (queued jobs) above
        which PRESS considers a file hot enough to replicate;
        ``replicate_headroom``: minimum load gap to the replication
        target (prevents replication storms between equally busy nodes).
        """
        if replicate_threshold < 1:
            raise ValueError("replicate_threshold must be >= 1")
        self.cluster = cluster
        self.sim = cluster.sim
        self.params: SimParams = cluster.params
        self.layout = layout
        self.directory = ReplicaDirectory()
        #: Cache-behavior telemetry (no-op scope unless cachestats is on).
        from ..obs.cachestats import NULL_CACHESCOPE

        self.scope = getattr(obs, "cachescope", None) or NULL_CACHESCOPE
        cache_scope = self.scope if self.scope.active else None
        self.caches: list[FileCache] = [
            FileCache(node.node_id, capacity_kb, self.directory,
                      scope=cache_scope)
            for node in cluster.nodes
        ]
        self.replicate_threshold = replicate_threshold
        self.replicate_headroom = replicate_headroom
        self.counters = CounterSet()
        #: Request tracer (no-op unless an Observability bundle is given).
        self.tracer = obs.tracer if obs is not None else NULL_TRACER
        self.prof = getattr(obs, "profiler", NULL_PROFILER) or NULL_PROFILER
        self._registry = obs.registry if obs is not None else None
        self.faults = faults if faults is not None else NULL_FAULTS
        if self.faults.active:
            self.faults.crash_listeners.append(self._on_node_crash)
        if obs is not None:
            self.counters.bind(obs.registry, "press")
            for cache in self.caches:
                cache.bind_metrics(obs.registry)
            obs.registry.gauge(
                "press.resident_files", self.resident_files
            )
        # file_id -> (adopting node id, completion event): requests for a
        # file already being read from disk queue at the adopting node
        # instead of issuing duplicate reads (PRESS funnels all requests
        # for a file to one node, so concurrent misses pile up there).
        self._adopting: dict = {}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(
        self, node: Node, file_id: int, parent=None
    ) -> Generator[Event, object, str]:
        """Coroutine: fully process one GET for ``file_id`` entering at
        ``node`` (the RR-DNS choice).

        Returns the request's service class ("local" / "remote" /
        "coalesced" / "disk") for per-class response accounting.
        ``parent`` is the caller's span (the client driver's, when
        profiling).
        """
        cpu = self.params.cpu
        span = self.tracer.start(
            "request", parent=parent, node=node.node_id, file=file_id
        )
        yield from self.prof.wait(span, node.node_id, "cpu",
                                  node.cpu.submit(cpu.parse_ms))
        service_class = yield from self._dispatch(node, file_id, span)
        if self.faults.active and self.faults.is_down(node.node_id):
            # Entry node crashed mid-request: fail-stop took the client
            # connection with it — the request fails, loudly.
            self.faults.counters.incr("press_requests_lost")
            span.finish(cls="failed", error=True)
            if self._registry is not None:
                self._registry.counter("requests_failed").incr()
            return "failed"
        return self._finish(span, service_class)

    def _dispatch(
        self, node: Node, file_id: int, span: Span
    ) -> Generator[Event, object, str]:
        """Route and serve one request; returns its service class."""
        cpu = self.params.cpu
        faults = self.faults
        nblocks = self.layout.num_blocks(file_id)
        holders = self.directory.holders(file_id)
        if faults.active:
            # Crash repair purges a dead node's entries synchronously, so
            # holders are normally all alive; the filter also covers a
            # holder behind a dropped link.
            holders = frozenset(
                h for h in holders
                if not faults.is_down(h)
                and faults.link_ok(node.node_id, h)
            )

        if node.node_id in holders:
            self.counters.incr("local_hit", nblocks)
            yield from self._serve_from_memory(node, node, file_id,
                                               parent=span)
            return "local"

        if holders:
            target = self.cluster.nodes[self._least_loaded(holders)]
            self.counters.incr("remote_hit", nblocks)
            self.counters.incr("forwarded_requests")
            yield from self._forward_and_serve(node, target, file_id,
                                               from_disk=False, parent=span)
            return "remote"

        pending = self._adopting.get(file_id)
        if pending is not None:
            # Another request is already pulling this file off disk: queue
            # at the adopting node and serve once the read lands.
            target_id, done = pending
            self.counters.incr("coalesced", nblocks)
            self.tracer.point(
                "coalesce", parent=span, node=node.node_id, target=target_id
            )
            target = self.cluster.nodes[target_id]
            if target_id != node.node_id:
                self.counters.incr("forwarded_requests")
                yield from self.prof.wait(
                    span, node.node_id, "cpu",
                    node.cpu.submit(cpu.forward_request_ms),
                )
                yield from self.cluster.network.transfer(
                    node, target, FORWARD_MSG_KB,
                    prof=self.prof, parent=span,
                )
            if not done.processed:
                yield from self.prof.wait(
                    span, node.node_id, "coalesce_wait", done
                )
            if faults.active and faults.is_down(target_id):
                # The adopting node died before the file could be
                # served from it: every disk holds every file, so the
                # entry node reads its own copy instead.
                yield from self._failover_to_local_disk(node, file_id, span)
                return "coalesced"
            reply_via = target if self.params.press_tcp_handoff else node
            yield from self._serve_from_memory(target, reply_via, file_id,
                                               parent=span)
            return "coalesced"

        # Cached nowhere: the least-loaded node reads it from its local disk
        # (files are replicated on every node's disk) and adopts the file.
        if faults.active:
            alive = [n.node_id for n in self.cluster.nodes if n.up]
            target_id = self._least_loaded(alive or [node.node_id])
        else:
            target_id = self._least_loaded(range(len(self.cluster)))
        self.counters.incr("disk_read", nblocks)
        if target_id == node.node_id:
            yield from self._read_from_disk(node, file_id, parent=span)
            yield from self._serve_from_memory(node, node, file_id,
                                               parent=span)
        else:
            self.counters.incr("forwarded_requests")
            yield from self._forward_and_serve(
                node, self.cluster.nodes[target_id], file_id,
                from_disk=True, parent=span,
            )
        return "disk"

    def _failover_to_local_disk(
        self, node: Node, file_id: int, span: Span | None
    ) -> Generator[Event, object, None]:
        """Serve ``file_id`` from the entry node's own disk after the
        chosen serving node failed (PRESS replicates files on every
        disk, so a local read is always possible)."""
        self.faults.counters.incr("press_failovers")
        yield from self.prof.wait(
            span, node.node_id, "fault_detect",
            self.sim.timeout(self.params.faults.detect_timeout_ms),
        )
        yield from self._read_from_disk(node, file_id, parent=span)
        yield from self._serve_from_memory(node, node, file_id, parent=span)

    def _finish(self, span: Span, service_class: str) -> str:
        """Close a request span and count its class in the registry."""
        span.finish(cls=service_class)
        if self._registry is not None:
            self._registry.counter(f"requests_{service_class}").incr()
        return service_class

    def _forward_and_serve(
        self, entry: Node, target: Node, file_id: int, *, from_disk: bool,
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Hand the request from ``entry`` to ``target`` and serve it."""
        cpu = self.params.cpu
        span = self.tracer.start(
            "forward", parent=parent, node=entry.node_id,
            target=target.node_id,
        )
        yield from self.prof.wait(
            span, entry.node_id, "cpu",
            entry.cpu.submit(cpu.forward_request_ms),
        )
        yield from self.cluster.network.transfer(
            entry, target, FORWARD_MSG_KB, prof=self.prof, parent=span
        )
        if self.faults.active and (
            self.faults.is_down(target.node_id)
            or not self.faults.link_ok(entry.node_id, target.node_id)
        ):
            # Target died (or vanished behind a dropped link) while the
            # hand-off was in flight: the entry node serves from its own
            # disk copy instead.
            yield from self._failover_to_local_disk(entry, file_id, span)
            span.finish(failover=True)
            return
        if from_disk:
            yield from self._read_from_disk(target, file_id, parent=span)
        if self.params.press_tcp_handoff:
            # Hand-off: the reply leaves the serving node directly.
            yield from self._serve_from_memory(target, target, file_id,
                                               parent=span)
        else:
            # Relay: serving node sends to the entry node, which replies.
            yield from self._serve_from_memory(target, entry, file_id,
                                               parent=span)
        span.finish()

    # ------------------------------------------------------------------
    # data paths
    # ------------------------------------------------------------------
    def _serve_from_memory(
        self, server: Node, reply_via: Node, file_id: int,
        parent: Span | None = None,
    ) -> Generator[Event, object, None]:
        """Serve a resident file and consider replication."""
        prof = self.prof
        cache = self.caches[server.node_id]
        if file_id in cache:
            cache.touch(file_id)
        size_kb = self.layout.size_kb(file_id)
        yield from prof.wait(
            parent, server.node_id, "cpu",
            server.cpu.submit(self.params.cpu.serve_ms(size_kb)),
        )
        if reply_via.node_id != server.node_id:
            yield from self.cluster.network.transfer(
                server, reply_via, size_kb, prof=prof, parent=parent
            )
            yield from prof.wait(
                parent, reply_via.node_id, "cpu",
                reply_via.cpu.submit(self.params.cpu.forward_request_ms),
            )
        yield from prof.wait(
            parent, reply_via.node_id, "nic",
            reply_via.nic.submit(self.params.network.transfer_ms(size_kb)),
        )
        self._maybe_replicate(server, file_id)

    def _read_from_disk(
        self, node: Node, file_id: int, parent: Span | None = None
    ) -> Generator[Event, object, None]:
        """Whole-file read from ``node``'s local disk + cache adoption."""
        done = self.sim.event()
        self._adopting[file_id] = (node.node_id, done)
        span = self.tracer.start(
            "disk_read", parent=parent, node=node.node_id, file=file_id
        )
        try:
            size_kb = self.layout.size_kb(file_id)
            runs = self._extent_runs(file_id)
            # Extent reads go to the disk queue in parallel; one disk
            # phase span summarizes their combined queue/seek/transfer.
            run_events = [node.disk.submit(run) for run in runs]
            yield from self.prof.disk_wait(
                span, node.node_id, self.sim.all_of(run_events), run_events
            )
            yield from self.prof.wait(
                span, node.node_id, "bus",
                node.bus.submit(self.params.bus.transfer_ms(size_kb)),
            )
            self._cache_file(node.node_id, file_id)
            span.finish(runs=len(runs))
        finally:
            self._adopting.pop(file_id, None)
            done.succeed()

    def _extent_runs(self, file_id: int) -> list[DiskRequest]:
        """One disk request per 64 KB extent of the file."""
        params = self.params
        size_kb = self.layout.size_kb(file_id)
        blocks_per_extent = params.extent_kb // params.block_kb
        runs = []
        remaining = size_kb
        nblocks = self.layout.num_blocks(file_id)
        for ext in range(self.layout.num_extents(file_id)):
            chunk = min(remaining, float(params.extent_kb))
            start_block = ext * blocks_per_extent
            run_blocks = min(blocks_per_extent, nblocks - start_block)
            runs.append(
                DiskRequest(file_id, ext, start_block, run_blocks, chunk)
            )
            remaining -= chunk
        return runs

    def _cache_file(self, node_id: int, file_id: int) -> None:
        """Adopt a file into a node's memory (if it can ever fit)."""
        if self.faults.active and self.faults.is_down(node_id):
            # The adopter crashed while the read was in flight: caching
            # there would point the replica directory at lost memory.
            self.faults.counters.incr("press_installs_dropped")
            return
        cache = self.caches[node_id]
        if file_id in cache:
            cache.touch(file_id)
            return
        size_kb = self.layout.size_kb(file_id)
        if not cache.fits(size_kb):
            self.counters.incr("uncacheable")
            return
        evicted = cache.insert(file_id, size_kb)
        for victim in evicted:
            self.scope.on_evict(node_id, victim, False, 0, "drop")
        self.counters.incr("evictions", len(evicted))

    # ------------------------------------------------------------------
    # load management
    # ------------------------------------------------------------------
    def _least_loaded(self, node_ids) -> int:
        """Lowest-load node id (ties break to the lowest id)."""
        return min(node_ids, key=lambda i: (self.cluster.nodes[i].load, i))

    def _maybe_replicate(self, server: Node, file_id: int) -> None:
        """Load-aware replication of a hot file off an overloaded node."""
        if server.load < self.replicate_threshold:
            return
        candidates = [
            n.node_id
            for n in self.cluster.nodes
            if n.node_id not in self.directory.holders(file_id)
            and (not self.faults.active or n.up)
        ]
        if not candidates:
            return
        target_id = self._least_loaded(candidates)
        if self.cluster.nodes[target_id].load > server.load - self.replicate_headroom:
            return
        size_kb = self.layout.size_kb(file_id)
        if not self.caches[target_id].fits(size_kb):
            return
        self.counters.incr("replications")
        self.sim.process(self._replicate(server, target_id, file_id))

    def _replicate(
        self, src: Node, dst_id: int, file_id: int
    ) -> Generator[Event, object, None]:
        """Background copy of a hot file to a lightly loaded node."""
        dst = self.cluster.nodes[dst_id]
        size_kb = self.layout.size_kb(file_id)
        # Background activity: its own root span, like middleware forwards.
        span = self.tracer.start(
            "replicate", node=src.node_id, dst=dst_id, file=file_id
        )
        yield src.cpu.submit(self.params.cpu.serve_peer_block_ms)
        yield from self.cluster.network.transfer(src, dst, size_kb)
        yield dst.cpu.submit(self.params.cpu.cache_block_ms
                             * self.layout.num_blocks(file_id))
        if file_id not in self.caches[dst_id]:
            self._cache_file(dst_id, file_id)
        span.finish()

    # ------------------------------------------------------------------
    # fault handling (fail-stop; DESIGN.md S14)
    # ------------------------------------------------------------------
    def _on_node_crash(self, node_id: int) -> None:
        """Fail-stop crash: the node's whole-file cache is lost.

        Runs synchronously inside the crash event.  Dropping through
        :meth:`FileCache.clear` keeps the replica directory in sync, so
        content-aware dispatch stops routing at the dead node the
        instant it dies; files whose only copy lived there are re-read
        from any surviving disk on the next request.
        """
        cache = self.caches[node_id]
        if self.scope.active:
            for file_id in cache.lru_order():
                self.scope.on_evict(node_id, file_id, False, 0, "crash")
        lost = cache.clear()
        self.faults.counters.incr("press_files_lost", lost)

    # ------------------------------------------------------------------
    # measurement interface
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Discard warm-up counters (cache contents are kept)."""
        self.counters.reset()

    def hit_rates(self):
        """Block-weighted hit fractions on the Figure 4 denominator."""
        c = self.counters
        total = c.get("local_hit") + c.get("remote_hit") + c.get("disk_read")
        if total == 0:
            return {"local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0}
        return {
            "local": c.get("local_hit") / total,
            "remote": c.get("remote_hit") / total,
            "disk": c.get("disk_read") / total,
            "total": (c.get("local_hit") + c.get("remote_hit")) / total,
        }

    def resident_files(self) -> int:
        """Whole files currently in cluster memory (copies counted once)."""
        return sum(1 for _ in self.directory.cached_files())
