"""Discrete-event simulation substrate (system S1 in DESIGN.md).

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Process`,
  :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.AllOf`,
  :class:`~repro.sim.engine.AnyOf` — waitables for protocol coroutines.
* :class:`~repro.sim.engine.Scheduler` protocol with
  :class:`~repro.sim.engine.HeapScheduler` (reference) and
  :class:`~repro.sim.engine.CalendarScheduler` (calendar queue) —
  interchangeable pending-event sets (``REPRO_SCHEDULER`` selects).
* :class:`~repro.sim.servicecenter.ServiceCenter` — finite-queue resource.
* :mod:`~repro.sim.stats` — measurement instruments.
* :func:`~repro.sim.rng.stream` — keyed deterministic RNG streams.
"""

from . import theory
from .engine import (
    SCHEDULERS,
    AllOf,
    AnyOf,
    CalendarScheduler,
    Event,
    HeapScheduler,
    Process,
    Scheduler,
    SimulationError,
    Simulator,
    Timeout,
    default_scheduler_name,
)
from .faults import (
    NULL_FAULTS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NullFaultInjector,
    RequestAborted,
)
from .rng import derive_seed, stream
from .servicecenter import QueueFullError, ServiceCenter
from .stats import (
    CounterSet,
    ReservoirQuantiles,
    RunningStats,
    ThroughputMeter,
    UtilizationTracker,
)

__all__ = [
    "Simulator",
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "SCHEDULERS",
    "default_scheduler_name",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "ServiceCenter",
    "QueueFullError",
    "UtilizationTracker",
    "ThroughputMeter",
    "RunningStats",
    "ReservoirQuantiles",
    "CounterSet",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_FAULTS",
    "RequestAborted",
    "stream",
    "derive_seed",
    "theory",
]
