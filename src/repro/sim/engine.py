"""Discrete-event simulation kernel.

A compact, deterministic, generator-based kernel in the style the paper's
simulator implies ("event driven ... hardware components as service centers
with finite queues").  The design goals, in order:

1. **Determinism** — events at equal timestamps fire in schedule order
   (FIFO by a monotonically increasing sequence number), so every
   experiment is reproducible bit-for-bit given a seed.
2. **Readability** — request flows are written as Python generators that
   ``yield`` events (:class:`Timeout`, service-center grants, or
   combinators), which keeps multi-hop protocol code linear.
3. **Speed** — the hot path is a single binary heap and plain function
   calls; no reflection, no dynamic dispatch beyond one ``callbacks`` list.

This is intentionally a small subset of a general-purpose DES library:
exactly what the cluster model needs, nothing more.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and fires its callbacks when the kernel
    processes it.  Events are single-use: triggering twice is an error.
    """

    __slots__ = (
        "sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
        # Service-phase stamps, assigned only by service centers when a
        # job enters service (see ServiceCenter._start / Disk._dispatch).
        # Left unset on every other event; the profiler reads them with
        # getattr(ev, ..., None) to split queueing from service time.
        "svc_start", "svc_ms", "svc_seek_ms",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables invoked as ``cb(event)`` when the event is processed.
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False if the event was failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-ms."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._push(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` thrown."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._push(delay, self)
        return self

    def _fire(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed delay (created already triggered)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._push(delay, self)


class AllOf(Event):
    """Fires when *all* child events have fired; value = list of values.

    Used by nodes that fan out block fetches to several sources and resume
    when the last reply arrives.  An empty iterable fires immediately.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._values: list[Any] = [None] * len(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.callbacks.append(self._make_child_cb(i))

    def _make_child_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            """Collect child event values; fire when the last lands."""
            if not ev.ok:
                if not self._triggered:
                    self.fail(ev.value)
                return
            self._values[index] = ev.value
            self._pending -= 1
            if self._pending == 0 and not self._triggered:
                self.succeed(self._values)

        return cb


class AnyOf(Event):
    """Fires when the *first* child event fires; value = that event's value."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in events:
            ev.callbacks.append(self._child_cb)

    def _child_cb(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed(ev.value)
        else:
            self.fail(ev.value)


class Process(Event):
    """Drives a generator; itself an event that fires when the generator ends.

    The generator yields :class:`Event` objects; the process resumes with
    the event's value when it fires (or has the failure exception thrown
    into it).  The process's own value is the generator's return value.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        self._gen = gen
        # Bootstrap on the next kernel step so creation order == start order.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None)

    def _resume(self, ev: Event) -> None:
        try:
            if ev.ok:
                target = self._gen.send(ev.value)
            else:
                target = self._gen.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # propagate model bugs loudly
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        if target.processed:
            # Already fired: resume on the next kernel step with its value.
            imm = Event(self.sim)
            imm.callbacks.append(self._resume)
            if target.ok:
                imm.succeed(target.value)
            else:
                imm.fail(target.value)
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """The event loop: a heap of ``(time, seq, event)`` triples.

    ``seq`` breaks timestamp ties in schedule order, which makes runs
    deterministic regardless of heap internals.
    """

    __slots__ = ("_now", "_heap", "_seq", "_event_count", "_step_hooks")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[Any] = []
        self._seq = 0
        self._event_count = 0
        # Observability hooks fired after each processed event; empty on
        # the hot path (one truthiness check per step when unused).
        self._step_hooks: list[Callable[["Simulator"], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total events processed so far (for budget checks in tests)."""
        return self._event_count

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a plain callback at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at into the past: {when} < {self._now}")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn(*args))
        ev.succeed(None, delay=when - self._now)
        return ev

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a plain callback ``delay`` ms from now."""
        return self.call_at(self._now + delay, fn, *args)

    # -- kernel --------------------------------------------------------------
    def _push(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    # -- observability hooks -------------------------------------------------
    def add_step_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Call ``hook(sim)`` after every processed event.

        This is the attachment point for samplers and tracers (see
        :mod:`repro.obs`); hooks must not schedule into the past and
        should be cheap — they run on the kernel hot path.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Detach a previously added step hook."""
        self._step_hooks.remove(hook)

    def step(self) -> None:
        """Process the single next event."""
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self._event_count += 1
        event._fire()
        if self._step_hooks:
            for hook in self._step_hooks:
                hook(self)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the calendar is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop: Event | None = None,
    ) -> None:
        """Run until the calendar drains, ``until`` is reached, ``stop``
        fires, or ``max_events`` more events have been processed.

        ``until`` is exclusive in the usual DES sense: an event scheduled
        exactly at ``until`` is *not* processed, and ``now`` is advanced to
        ``until``.
        """
        budget = max_events if max_events is not None else -1
        while self._heap:
            if stop is not None and stop.processed:
                return
            if until is not None and self._heap[0][0] >= until:
                self._now = until
                return
            if budget == 0:
                return
            self.step()
            if budget > 0:
                budget -= 1
        if until is not None and until > self._now:
            self._now = until
