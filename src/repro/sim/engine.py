"""Discrete-event simulation kernel.

A compact, deterministic, generator-based kernel in the style the paper's
simulator implies ("event driven ... hardware components as service centers
with finite queues").  The design goals, in order:

1. **Determinism** — events at equal timestamps fire in schedule order
   (FIFO by a monotonically increasing sequence number), so every
   experiment is reproducible bit-for-bit given a seed.
2. **Readability** — request flows are written as Python generators that
   ``yield`` events (:class:`Timeout`, service-center grants, or
   combinators), which keeps multi-hop protocol code linear.
3. **Speed** — the hot path is a pending-event scheduler and plain
   function calls; no reflection, no dynamic dispatch beyond one
   ``callbacks`` list.

The pending-event set lives behind the :class:`Scheduler` protocol with
two interchangeable implementations: :class:`HeapScheduler` (a binary
heap — the reference) and :class:`CalendarScheduler` (a Brown calendar
queue with O(1) amortized enqueue/dequeue).  Both order strictly by
``(time, seq)``, so they are *observationally identical*: the
differential suite in ``tests/test_scheduler_differential.py`` proves
pop-order equality on adversarial workloads, and the golden-trace tests
pin byte-identical digests under either.  Select with
``Simulator(scheduler="calendar")`` or the ``REPRO_SCHEDULER``
environment variable (default: ``heap``).

This is intentionally a small subset of a general-purpose DES library:
exactly what the cluster model needs, nothing more.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from collections.abc import Callable, Generator, Iterable
from typing import Any, Protocol, Union

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "SCHEDULERS",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and fires its callbacks when the kernel
    processes it.  Events are single-use: triggering twice is an error.
    """

    __slots__ = (
        "sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
        # Service-phase stamps, assigned only by service centers when a
        # job enters service (see ServiceCenter._start / Disk._dispatch).
        # Left unset on every other event; the profiler reads them with
        # getattr(ev, ..., None) to split queueing from service time.
        "svc_start", "svc_ms", "svc_seek_ms",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables invoked as ``cb(event)`` when the event is processed.
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False if the event was failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-ms."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._push(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` thrown."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._push(delay, self)
        return self

    def _fire(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed delay (created already triggered)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._push(delay, self)


class _Callback(Event):
    """Internal: a pre-triggered event that calls ``fn(*args)`` when fired.

    This is the allocation-light fast path behind :meth:`Simulator.call_at`
    / :meth:`Simulator.call_after` — one slotted object, no closure, no
    ``succeed`` round-trip.  It is pushed exactly once at construction, so
    its position in the ``(time, seq)`` order is identical to the
    ``Event`` + lambda chain it replaced; golden digests cannot observe
    the difference.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, sim: "Simulator", fn: Callable[..., None],
                 args: tuple[Any, ...]) -> None:
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._fn = fn
        self._args = args

    def _fire(self) -> None:
        self._processed = True
        self._fn(*self._args)
        if self.callbacks:
            callbacks, self.callbacks = self.callbacks, []
            for cb in callbacks:
                cb(self)


class AllOf(Event):
    """Fires when *all* child events have fired; value = list of values.

    Used by nodes that fan out block fetches to several sources and resume
    when the last reply arrives.  An empty iterable fires immediately.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._values: list[Any] = [None] * len(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.callbacks.append(self._make_child_cb(i))

    def _make_child_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            """Collect child event values; fire when the last lands."""
            if not ev.ok:
                if not self._triggered:
                    self.fail(ev.value)
                return
            self._values[index] = ev.value
            self._pending -= 1
            if self._pending == 0 and not self._triggered:
                self.succeed(self._values)

        return cb


class AnyOf(Event):
    """Fires when the *first* child event fires; value = that event's value."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in events:
            ev.callbacks.append(self._child_cb)

    def _child_cb(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed(ev.value)
        else:
            self.fail(ev.value)


class Process(Event):
    """Drives a generator; itself an event that fires when the generator ends.

    The generator yields :class:`Event` objects; the process resumes with
    the event's value when it fires (or has the failure exception thrown
    into it).  The process's own value is the generator's return value.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        self._gen = gen
        # Bootstrap on the next kernel step so creation order == start order.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None)

    def _resume(self, ev: Event) -> None:
        try:
            if ev.ok:
                target = self._gen.send(ev.value)
            else:
                target = self._gen.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # propagate model bugs loudly
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        if target.processed:
            # Already fired: resume on the next kernel step with its value.
            imm = Event(self.sim)
            imm.callbacks.append(self._resume)
            if target.ok:
                imm.succeed(target.value)
            else:
                imm.fail(target.value)
        else:
            target.callbacks.append(self._resume)


class Scheduler(Protocol):
    """The pending-event set: a priority queue ordered by ``(time, seq)``.

    Implementations must dequeue in strict ``(time, seq)`` order — the
    determinism contract every golden digest rests on.  ``seq`` values
    are assigned (monotonically) by the :class:`Simulator`; schedulers
    only store and order them.
    """

    def push(self, when: float, seq: int, event: Event) -> None:
        """Insert an entry.  ``when`` is absolute simulation time."""
        ...  # pragma: no cover - protocol

    def pop(self) -> tuple[float, int, Event]:
        """Remove and return the least entry; raises IndexError if empty."""
        ...  # pragma: no cover - protocol

    def peek_time(self) -> float:
        """Time of the least entry, or ``inf`` if empty."""
        ...  # pragma: no cover - protocol

    def __len__(self) -> int:
        """Number of pending entries."""
        ...  # pragma: no cover - protocol


class HeapScheduler:
    """The reference scheduler: a binary heap of ``(time, seq, event)``.

    ``heapq`` is C-implemented and O(log n); with the modest queue
    depths of the cluster model (hundreds of pending events) it is very
    hard to beat, which is why it stays the default and the ground truth
    the differential tests compare against.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []

    def push(self, when: float, seq: int, event: Event) -> None:
        heapq.heappush(self._heap, (when, seq, event))

    def pop(self) -> tuple[float, int, Event]:
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)


_MIN_BUCKETS = 8
_MAX_BUCKETS = 1 << 16


class CalendarScheduler:
    """A Brown calendar queue: pending events bucketed by time.

    The time axis is divided into ``width``-ms *days* (buckets); a year
    is ``nbuckets`` days, and times map to ``int(t / width) % nbuckets``
    — events a full year out share buckets with near-term ones and are
    skipped by the ``< bucket_top`` check during the scan.  Each bucket
    is a list kept sorted by ``(time, seq)`` via :func:`bisect.insort`,
    so dequeue order is *identical* to the heap's: strict ``(time, seq)``
    ties-broken-by-schedule-order.  Enqueue and dequeue are O(1)
    amortized while the queue obeys the sizing invariant
    (``nbuckets/2 <= count <= 2*nbuckets``), which :meth:`_resize`
    maintains by re-bucketing with a width sampled from the current
    inter-event gaps — a deterministic function of queue content, never
    of wall time.

    Scheduling into the past (before the last popped entry) is the one
    thing the bucket scan cannot survive; the :class:`Simulator` already
    forbids it (negative delays raise), and :meth:`push` raises
    :class:`SimulationError` if handed one anyway.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_count", "_cur",
                 "_bucket_top", "_last_when")

    def __init__(self, nbuckets: int = _MIN_BUCKETS, width: float = 1.0) -> None:
        if nbuckets < 1:
            raise ValueError("nbuckets must be >= 1")
        if width <= 0.0:
            raise ValueError("width must be positive")
        self._count = 0
        self._last_when = 0.0
        self._setup(nbuckets, width)

    def _setup(self, nbuckets: int, width: float) -> None:
        """(Re)build empty buckets and point the scan at ``_last_when``."""
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(nbuckets)
        ]
        day = int(self._last_when / width)
        self._cur = day % nbuckets
        self._bucket_top = (day + 1) * width

    def push(self, when: float, seq: int, event: Event) -> None:
        if when < self._last_when:
            # A real error, not an assert: under ``python -O`` an assert
            # would vanish and the bucket scan would silently corrupt.
            raise SimulationError(
                f"calendar queue: push into the past "
                f"({when} < {self._last_when})"
            )
        insort(self._buckets[int(when / self._width) % self._nbuckets],
               (when, seq, event))
        self._count += 1
        if self._count > (self._nbuckets << 1) and self._nbuckets < _MAX_BUCKETS:
            self._resize()

    def _scan(self) -> int:
        """Index of the bucket holding the least entry (queue non-empty).

        Walks at most one year from the current day; if nothing lands
        within it (a big time gap), falls back to a direct min scan and
        jumps the calendar to that entry's day.  Updates ``_cur`` /
        ``_bucket_top`` so the next scan resumes where this one ended —
        callers that do NOT remove the returned entry (peeks) must save
        and restore that state, because committing it is only valid once
        ``_last_when`` advances past the skipped buckets.
        """
        i = self._cur
        top = self._bucket_top
        width = self._width
        buckets = self._buckets
        n = self._nbuckets
        for _ in range(n):
            b = buckets[i]
            if b and b[0][0] < top:
                self._cur = i
                self._bucket_top = top
                return i
            i += 1
            if i == n:
                i = 0
            top += width
        # Rare: next event is over a year away.  Direct search — bucket
        # heads compare by (time, seq), so the minimum is unambiguous.
        best_i = -1
        best: tuple[float, int, Event] | None = None
        for j, b in enumerate(buckets):
            if b and (best is None or b[0] < best):
                best = b[0]
                best_i = j
        assert best is not None
        day = int(best[0] / width)
        self._cur = best_i
        self._bucket_top = (day + 1) * width
        return best_i

    def pop(self) -> tuple[float, int, Event]:
        if not self._count:
            raise IndexError("pop from an empty calendar queue")
        entry = self._buckets[self._scan()].pop(0)
        self._count -= 1
        self._last_when = entry[0]
        if self._count < (self._nbuckets >> 2) and self._nbuckets > _MIN_BUCKETS:
            self._resize()
        return entry

    def peek_time(self) -> float:
        if not self._count:
            return float("inf")
        # _scan() commits the scan position (_cur/_bucket_top) as it
        # skips empty buckets, which is only safe when the found entry
        # is actually removed.  A peek leaves _last_when untouched, so a
        # later *legal* push (when >= _last_when) may land in a bucket
        # behind a committed position and dequeue out of order.  Peek
        # must therefore be side-effect-free: restore the scan state.
        cur, top = self._cur, self._bucket_top
        when = self._buckets[self._scan()][0][0]
        self._cur, self._bucket_top = cur, top
        return when

    def __len__(self) -> int:
        return self._count

    def _resize(self) -> None:
        """Re-bucket so mean occupancy returns to ~1 entry per bucket.

        Deterministic by construction: the new bucket count is the next
        power of two covering the entry count, and the new width is
        twice the mean gap over (up to) the 32 soonest entries — both
        pure functions of the queue's current content.
        """
        entries: list[tuple[float, int, Event]] = []
        for b in self._buckets:
            entries.extend(b)
        entries.sort()  # by (time, seq); seq uniqueness makes this total
        nbuckets = _MIN_BUCKETS
        while nbuckets < len(entries) and nbuckets < _MAX_BUCKETS:
            nbuckets <<= 1
        head = entries[:32]
        gaps = [b[0] - a[0] for a, b in zip(head, head[1:])]
        mean_gap = (sum(gaps) / len(gaps)) if gaps else 0.0
        width = max(2.0 * mean_gap, 1e-9) if mean_gap > 0.0 else self._width
        self._setup(nbuckets, width)
        # Entries arrive in (time, seq) order, so each bucket's append
        # stream is already sorted — no insort needed on rebuild.
        buckets = self._buckets
        for entry in entries:
            buckets[int(entry[0] / width) % nbuckets].append(entry)


#: Scheduler registry: name -> zero-argument factory.  ``heap`` is the
#: reference implementation; ``calendar`` must stay observationally
#: identical (the differential tests enforce it).
SCHEDULERS: dict[str, Callable[[], "Scheduler"]] = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}

#: Environment knob consulted when ``Simulator(scheduler=None)``.
SCHEDULER_ENV = "REPRO_SCHEDULER"


def default_scheduler_name() -> str:
    """The scheduler chosen by the environment (default ``heap``)."""
    return os.environ.get(SCHEDULER_ENV) or "heap"


class Simulator:
    """The event loop: pending ``(time, seq, event)`` triples behind a
    :class:`Scheduler`.

    ``seq`` breaks timestamp ties in schedule order, which makes runs
    deterministic regardless of scheduler internals.  ``scheduler`` may
    be a registry name (``"heap"`` / ``"calendar"``), a ready
    :class:`Scheduler` instance, or ``None`` to consult the
    ``REPRO_SCHEDULER`` environment variable.
    """

    __slots__ = ("_now", "_sched", "_seq", "_event_count", "_step_hooks")

    def __init__(self, scheduler: Union[str, "Scheduler", None] = None) -> None:
        self._now: float = 0.0
        if scheduler is None:
            scheduler = default_scheduler_name()
        if isinstance(scheduler, str):
            try:
                factory = SCHEDULERS[scheduler]
            except KeyError:
                raise SimulationError(
                    f"unknown scheduler {scheduler!r}; "
                    f"choose from {sorted(SCHEDULERS)}"
                ) from None
            scheduler = factory()
        self._sched: Scheduler = scheduler
        self._seq = 0
        self._event_count = 0
        # Observability hooks fired after each processed event; empty on
        # the hot path (one truthiness check per step when unused).
        self._step_hooks: list[Callable[["Simulator"], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total events processed so far (for budget checks in tests)."""
        return self._event_count

    @property
    def scheduler(self) -> "Scheduler":
        """The active pending-event scheduler."""
        return self._sched

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a plain callback at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at into the past: {when} < {self._now}")
        ev = _Callback(self, fn, args)
        self._push(when - self._now, ev)
        return ev

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a plain callback ``delay`` ms from now."""
        ev = _Callback(self, fn, args)
        self._push(delay, ev)  # validates delay >= 0
        return ev

    # -- kernel --------------------------------------------------------------
    def _push(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        # The tie-break contract: seq is assigned here and ONLY here,
        # strictly increasing across every scheduler implementation, so
        # same-timestamp events fire in schedule order.  The assertion
        # guards the latent fragility of a subclass or scheduler ever
        # recycling sequence numbers.
        seq = self._seq + 1
        assert seq > self._seq, "sequence numbers must be strictly monotonic"
        self._seq = seq
        self._sched.push(self._now + delay, seq, event)

    # -- observability hooks -------------------------------------------------
    def add_step_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Call ``hook(sim)`` after every processed event.

        This is the attachment point for samplers and tracers (see
        :mod:`repro.obs`); hooks must not schedule into the past and
        should be cheap — they run on the kernel hot path.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Detach a previously added step hook."""
        self._step_hooks.remove(hook)

    def step(self) -> None:
        """Process the single next event."""
        when, _seq, event = self._sched.pop()
        self._now = when
        self._event_count += 1
        event._fire()
        if self._step_hooks:
            for hook in self._step_hooks:
                hook(self)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the calendar is empty."""
        return self._sched.peek_time()

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop: Event | None = None,
    ) -> None:
        """Run until the calendar drains, ``until`` is reached, ``stop``
        fires, or ``max_events`` more events have been processed.

        ``until`` is exclusive in the usual DES sense: an event scheduled
        exactly at ``until`` is *not* processed, and ``now`` is advanced to
        ``until``.
        """
        sched = self._sched
        if until is None and max_events is None and stop is None:
            # The unconditional drain — every experiment's hot loop.
            # Same semantics as the general loop below, minus the three
            # per-event guard checks and the step() call indirection.
            # For the reference heap the loop reads the entry list
            # directly, skipping the per-event Scheduler method frames.
            if type(sched) is HeapScheduler:
                heap = sched._heap
                heappop = heapq.heappop
                while heap:
                    when, _seq, event = heappop(heap)
                    self._now = when
                    self._event_count += 1
                    event._fire()
                    if self._step_hooks:
                        for hook in self._step_hooks:
                            hook(self)
                return
            pop = sched.pop
            while len(sched):
                when, _seq, event = pop()
                self._now = when
                self._event_count += 1
                event._fire()
                if self._step_hooks:
                    for hook in self._step_hooks:
                        hook(self)
            return
        budget = max_events if max_events is not None else -1
        while len(sched):
            if stop is not None and stop.processed:
                return
            if until is not None and sched.peek_time() >= until:
                self._now = until
                return
            if budget == 0:
                return
            self.step()
            if budget > 0:
                budget -= 1
        if until is not None and until > self._now:
            self._now = until
