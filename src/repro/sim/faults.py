"""Deterministic fault injection: plans, the injector, failure semantics.

The paper evaluates a perfect cluster; its protocol nevertheless has an
implicit failure story ("fall back to the home node's disk") that only
matters when something breaks.  This module makes breakage a first-class,
*deterministic* simulation input:

* :class:`FaultPlan` — an immutable, seeded schedule of fault events
  (node crashes/restarts, link drops, disk stalls, LAN degradation),
  serializable to JSON so a chaotic run can be replayed exactly.
* :class:`FaultInjector` — installs a plan into a running simulation,
  flips cluster state at the scheduled instants, and answers the
  liveness queries (:meth:`~FaultInjector.is_down`,
  :meth:`~FaultInjector.link_ok`) the protocol layers consult.
* :data:`NULL_FAULTS` — the disabled injector every component defaults
  to.  Its queries are constants and it schedules nothing, so a run
  without faults creates *zero* extra kernel events and reproduces the
  golden traces byte-for-byte.
* :class:`RequestAborted` — the explicit failure a request raises when
  its data is unreachable after bounded retries.  Failure is fail-stop
  and *loud*: requests terminate with an error class, they never hang.

The fault model (see DESIGN.md S14): a crash is fail-stop — the node's
memory (and every master copy in it) is lost and its disk is unreachable
until restart; a restarted node comes back cold.  Detection is modeled
as a fixed timeout (:class:`~repro.params.FaultParams.detect_timeout_ms`)
rather than a live protocol exchange, which keeps the zero-fault event
stream untouched.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from .rng import stream
from .stats import CounterSet

if TYPE_CHECKING:
    from ..cluster.cluster import Cluster
    from ..obs import Observability
    from ..params import SimParams
    from .engine import Simulator

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_FAULTS",
    "RequestAborted",
]

#: Recognized fault-event kinds.
FAULT_KINDS = (
    "crash",        # node loses memory; disk unreachable until restart
    "restart",      # node rejoins, cold
    "link_down",    # the (node, peer) link drops messages
    "link_up",      # the link recovers
    "disk_stall",   # node's disk head freezes for extra_ms
    "lan_degrade",  # every wire hop gains extra_ms of latency
    "lan_restore",  # wire latency back to nominal
)


class RequestAborted(RuntimeError):
    """A request's data was unreachable after bounded retries.

    Raised inside protocol coroutines; the serving layer catches it and
    reports the request's service class as ``"failed"`` — the explicit
    "degraded, never hung" contract of the fault model.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (times in simulated ms)."""

    kind: str
    at_ms: float
    #: Affected node (crash/restart/disk_stall) or link endpoint A.
    node: int | None = None
    #: Link endpoint B (link_down / link_up only).
    peer: int | None = None
    #: Duration (disk_stall) or added latency (lan_degrade), in ms.
    extra_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.at_ms < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind in ("crash", "restart", "disk_stall") and self.node is None:
            raise ValueError(f"{self.kind} requires a node")
        if self.kind in ("link_down", "link_up") and (
            self.node is None or self.peer is None
        ):
            raise ValueError(f"{self.kind} requires both link endpoints")
        if self.kind == "disk_stall" and self.extra_ms <= 0:
            raise ValueError("disk_stall requires a positive duration")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`\\ s.

    Hashable (so it can live in a frozen ``ExperimentConfig``) and
    JSON-round-trippable (so a chaos run can be archived and replayed).
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at_ms))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def horizon_ms(self) -> float:
        """Time of the last scheduled event (0 for an empty plan)."""
        return self.events[-1].at_ms if self.events else 0.0

    # -- construction -------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (used by tests to prove zero-fault neutrality)."""
        return cls(())

    @classmethod
    def random(
        cls,
        seed: int,
        horizon_ms: float,
        num_nodes: int,
        crashes_per_node: float = 1.0,
        mean_downtime_frac: float = 0.15,
        link_drops: int = 0,
        link_down_frac: float = 0.05,
        disk_stalls: int = 0,
        stall_frac: float = 0.05,
        lan_degrade_ms: float = 0.0,
        lan_degrade_frac: float = 0.25,
    ) -> "FaultPlan":
        """A seeded random schedule over ``[0, horizon_ms)``.

        ``crashes_per_node`` is the *expected* crash count per node over
        the horizon (each node draws a Poisson count); downtimes are
        exponential with mean ``mean_downtime_frac * horizon_ms``.  The
        generator guarantees at least one node is up at every instant —
        a fully dark cluster has no behavior worth simulating — and that
        a node never crashes while already down.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        if num_nodes < 1:
            raise ValueError("need at least one node")
        rng = stream(seed, "faults", "plan")
        events: list[FaultEvent] = []

        # Per-node non-overlapping crash windows.
        candidates: list[tuple[float, float, int]] = []
        for node in range(num_nodes):
            count = int(rng.poisson(crashes_per_node))
            starts = sorted(float(t) for t in rng.uniform(0.0, horizon_ms, count))
            prev_end = 0.0
            for start in starts:
                if start < prev_end:
                    continue
                down = float(rng.exponential(mean_downtime_frac * horizon_ms))
                end = start + max(down, 1e-6)
                candidates.append((start, end, node))
                prev_end = end
        # Accept in crash-time order, refusing any crash that would leave
        # the cluster with zero live nodes at that instant.
        accepted: list[tuple[float, float, int]] = []
        for start, end, node in sorted(candidates):
            concurrent = sum(1 for s, e, _ in accepted if s <= start < e)
            if concurrent + 1 >= num_nodes:
                continue
            accepted.append((start, end, node))
            events.append(FaultEvent("crash", start, node=node))
            events.append(FaultEvent("restart", end, node=node))

        for _ in range(link_drops):
            if num_nodes < 2:
                break
            a, b = (int(i) for i in rng.choice(num_nodes, size=2, replace=False))
            start = float(rng.uniform(0.0, horizon_ms))
            down = max(float(rng.exponential(link_down_frac * horizon_ms)), 1e-6)
            events.append(FaultEvent("link_down", start, node=a, peer=b))
            events.append(FaultEvent("link_up", start + down, node=a, peer=b))

        for _ in range(disk_stalls):
            node = int(rng.integers(num_nodes))
            start = float(rng.uniform(0.0, horizon_ms))
            dur = max(float(rng.exponential(stall_frac * horizon_ms)), 1e-6)
            events.append(FaultEvent("disk_stall", start, node=node, extra_ms=dur))

        if lan_degrade_ms > 0.0:
            start = float(rng.uniform(0.0, horizon_ms * (1.0 - lan_degrade_frac)))
            events.append(FaultEvent("lan_degrade", start, extra_ms=lan_degrade_ms))
            events.append(
                FaultEvent("lan_restore", start + lan_degrade_frac * horizon_ms)
            )
        return cls(tuple(events))

    # -- serialization ------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a stable JSON document."""
        return json.dumps(
            {"events": [asdict(ev) for ev in self.events]},
            indent=2, sort_keys=True,
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        doc = json.loads(text)
        return cls(tuple(FaultEvent(**ev) for ev in doc["events"]))

    def dump(self, path: str) -> None:
        """Write the plan as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan previously written with :meth:`dump`."""
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_json(fp.read())


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live cluster simulation.

    Protocol layers hold a reference and consult the liveness queries on
    their fault paths; repair logic (directory purge, cache clear)
    registers via the listener lists and runs *synchronously inside* the
    fault event, so no request ever observes a half-crashed node.
    """

    #: Distinguishes a real injector from :data:`NULL_FAULTS` with one
    #: attribute read — protocol fault paths are guarded by this flag.
    active = True

    __slots__ = (
        "plan", "params", "counters", "tracer",
        "crash_listeners", "restart_listeners", "fault_listeners",
        "sim", "cluster", "_backoff_rng", "_down", "_lost_links", "_lan_extra",
    )

    def __init__(self, plan: FaultPlan, params: SimParams, seed: int = 0,
                 obs: Observability | None = None) -> None:
        from ..obs.tracing import NULL_TRACER

        self.plan = plan
        self.params = params
        self.counters = CounterSet()
        self.tracer = obs.tracer if obs is not None else NULL_TRACER
        if obs is not None:
            self.counters.bind(obs.registry, "faults")
        #: Called as ``fn(node_id)`` synchronously when a node crashes —
        #: the middleware's directory-repair hook.
        self.crash_listeners: list[Callable[[int], None]] = []
        #: Called as ``fn(node_id)`` when a node restarts (cold).
        self.restart_listeners: list[Callable[[int], None]] = []
        #: Called as ``fn(event)`` after *every* applied fault — the
        #: chaos property tests check invariants at each fault boundary.
        self.fault_listeners: list[Callable[[FaultEvent], None]] = []
        self.sim = None
        self.cluster = None
        self._backoff_rng = stream(seed, "faults", "backoff")
        self._down: set = set()
        self._lost_links: set = set()
        self._lan_extra = 0.0

    def install(self, sim: Simulator, cluster: Cluster) -> None:
        """Schedule the plan's events and hook the cluster's network."""
        self.sim = sim
        self.cluster = cluster
        cluster.network.faults = self
        for ev in self.plan.events:
            sim.call_at(ev.at_ms, self._apply, ev)

    # -- liveness queries ---------------------------------------------------
    def is_down(self, node_id: int) -> bool:
        """True while ``node_id`` is crashed."""
        return node_id in self._down

    def link_ok(self, a: int | None, b: int | None) -> bool:
        """True unless the (a, b) link is currently dropped."""
        if a is None or b is None or a == b:
            return True
        return frozenset((a, b)) not in self._lost_links

    def extra_latency_ms(self) -> float:
        """Added per-hop wire latency while the LAN is degraded."""
        return self._lan_extra

    def alive_node_ids(self) -> list[int]:
        """Ids of currently-up nodes, ascending."""
        return [n.node_id for n in self.cluster.nodes if n.up]

    def backoff_ms(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        ``base * 2^attempt``, multiplied by a jitter factor in
        ``[1, 1 + jitter)`` drawn from a dedicated RNG stream, hard-capped
        at ``backoff_cap_ms`` — retries can spread out but can never
        starve a request (the `_retry_after` fix this PR ships).
        """
        f = self.params.faults
        base = f.backoff_base_ms * (2.0 ** attempt)
        jittered = base * (1.0 + f.backoff_jitter * float(self._backoff_rng.random()))
        return min(jittered, f.backoff_cap_ms)

    # -- event application --------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        kind = ev.kind
        if kind == "crash":
            if ev.node in self._down:
                return
            self._down.add(ev.node)
            self.cluster.nodes[ev.node].crash()
            self.counters.incr("node_crashes")
            self.tracer.point("fault", node=ev.node, kind="crash")
            for fn in self.crash_listeners:
                fn(ev.node)
        elif kind == "restart":
            if ev.node not in self._down:
                return
            self._down.discard(ev.node)
            self.cluster.nodes[ev.node].restore()
            self.counters.incr("node_restarts")
            self.tracer.point("fault", node=ev.node, kind="restart")
            for fn in self.restart_listeners:
                fn(ev.node)
        elif kind == "link_down":
            self._lost_links.add(frozenset((ev.node, ev.peer)))
            self.counters.incr("link_drops")
            self.tracer.point("fault", node=ev.node, kind="link_down", peer=ev.peer)
        elif kind == "link_up":
            self._lost_links.discard(frozenset((ev.node, ev.peer)))
            self.counters.incr("link_recoveries")
        elif kind == "disk_stall":
            self.cluster.nodes[ev.node].disk.stall(ev.extra_ms)
            self.counters.incr("disk_stalls")
            self.tracer.point("fault", node=ev.node, kind="disk_stall",
                              ms=ev.extra_ms)
        elif kind == "lan_degrade":
            self._lan_extra = ev.extra_ms
            self.counters.incr("lan_degrades")
            self.tracer.point("fault", node=None, kind="lan_degrade",
                              ms=ev.extra_ms)
        elif kind == "lan_restore":
            self._lan_extra = 0.0
            self.counters.incr("lan_restores")
        for fn in self.fault_listeners:
            fn(ev)


class NullFaultInjector:
    """Disabled injector: constant answers, zero scheduled events.

    Every component defaults to :data:`NULL_FAULTS`, so the fault
    machinery costs one attribute read per guarded path and a fault-free
    run's kernel event stream is byte-identical to pre-fault builds
    (the golden-trace tests pin this).
    """

    active = False

    __slots__ = ()

    def is_down(self, node_id: int) -> bool:
        return False

    def link_ok(self, a: int, b: int) -> bool:
        return True

    def extra_latency_ms(self) -> float:
        return 0.0

    def backoff_ms(self, attempt: int) -> float:
        return 0.0


#: Process-wide disabled injector (components default to this).
NULL_FAULTS = NullFaultInjector()
