"""Deterministic random-number streams.

Every stochastic component gets its own independent stream derived from
``(root_seed, *key)`` so that (a) runs are bit-for-bit reproducible and
(b) changing the number of draws in one component never perturbs another
— the standard discipline for comparative simulation studies (the same
trace stream must hit CC-Basic and PRESS identically).
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

__all__ = ["stream", "derive_seed"]

_Key = Union[int, str]


def _key_to_int(key: _Key) -> int:
    """Map a stream-key component to a stable 32-bit integer.

    Strings hash via CRC32 (stable across processes and Python versions,
    unlike ``hash``).
    """
    if isinstance(key, bool):  # bool is an int subclass; be explicit
        return int(key)
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    raise TypeError(f"stream keys must be int or str, got {type(key).__name__}")


def derive_seed(root_seed: int, *key: _Key) -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` for the stream named by ``key``."""
    entropy = [root_seed & 0xFFFFFFFF] + [_key_to_int(k) for k in key]
    return np.random.SeedSequence(entropy)


def stream(root_seed: int, *key: _Key) -> np.random.Generator:
    """An independent :class:`numpy.random.Generator` for ``key``.

    Example::

        gen = stream(42, "trace", "rutgers")
    """
    return np.random.default_rng(derive_seed(root_seed, *key))
