"""Service centers: the building block of the hardware model.

The paper: "our simulator ... is event driven and models hardware
components as service centers with finite queues."  A
:class:`ServiceCenter` has ``capacity`` parallel servers and a bounded
FIFO queue; jobs carry a fixed service demand in milliseconds.  CPUs,
NICs, buses and the router are plain service centers; the disk (which
needs state-dependent service times and a reorderable queue) subclasses
the queue-management core in :mod:`repro.cluster.disk`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from .engine import Event, Simulator
from .stats import UtilizationTracker

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

__all__ = ["QueueFullError", "ServiceCenter"]


class QueueFullError(RuntimeError):
    """A job arrived at a service center whose finite queue was full."""

    def __init__(self, center: "ServiceCenter") -> None:
        super().__init__(f"queue full at service center {center.name!r}")
        self.center = center


class ServiceCenter:
    """``capacity`` servers fed by one bounded FIFO queue.

    ``submit(demand_ms)`` returns an :class:`Event` that fires when the
    job's service completes.  If the queue is full the event *fails* with
    :class:`QueueFullError`, which a waiting process sees as a raised
    exception — overload is loud, never silent.
    """

    __slots__ = ("sim", "name", "capacity", "queue_limit", "utilization",
                 "_queue", "_in_service", "completed", "dropped")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: int = 1,
        queue_limit: int = 100_000,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.queue_limit = queue_limit
        #: Busy-time integral, feeds Figure 6a.
        self.utilization = UtilizationTracker(capacity, sim.now)
        self._queue: deque[tuple[float, Event]] = deque()
        self._in_service = 0
        #: Total jobs completed since construction (not windowed).
        self.completed = 0
        #: Total jobs dropped because the queue was full.
        self.dropped = 0

    # -- client API ---------------------------------------------------------
    def submit(self, demand_ms: float, value: Any = None) -> Event:
        """Enqueue a job needing ``demand_ms`` of service.

        The returned event fires with ``value`` when service completes.
        """
        if demand_ms < 0:
            raise ValueError(f"negative service demand: {demand_ms!r}")
        done = self.sim.event()
        if self._in_service < self.capacity:
            self._start(demand_ms, done, value)
        elif len(self._queue) < self.queue_limit:
            self._queue.append((demand_ms, done))
            done._value = value  # stash; delivered on completion
        else:
            self.dropped += 1
            done.fail(QueueFullError(self))
        return done

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting those in service)."""
        return len(self._queue)

    @property
    def load(self) -> int:
        """Jobs in the center: waiting plus in service.

        PRESS's load-aware dispatcher reads this.
        """
        return len(self._queue) + self._in_service

    # -- internals ------------------------------------------------------------
    def _start(self, demand_ms: float, done: Event, value: Any) -> None:
        self._in_service += 1
        self.utilization.on_start(self.sim.now)
        # Stamp service entry on the completion event so the profiler can
        # split the wait into queueing vs. service after the fact.
        done.svc_start = self.sim.now
        done.svc_ms = demand_ms
        self.sim.call_after(demand_ms, self._finish, done, value)

    def _finish(self, done: Event, value: Any) -> None:
        self._in_service -= 1
        self.utilization.on_stop(self.sim.now)
        self.completed += 1
        # Batched dequeue: drain every startable job in one pass.  A
        # single completion frees exactly one server, so the loop body
        # runs at most once today (same event stream as the old
        # single-dequeue — golden-pinned); it only iterates further if
        # capacity grows while jobs wait, instead of stranding them.
        queue = self._queue
        while queue and self._in_service < self.capacity:
            demand_ms, next_done = queue.popleft()
            stashed = next_done._value
            next_done._value = None
            self._start(demand_ms, next_done, stashed)
        done.succeed(value)

    def reset_stats(self) -> None:
        """Start a fresh measurement window (end of warm-up)."""
        self.utilization.reset(self.sim.now)

    def metrics(self) -> dict:
        """Current occupancy statistics for the metrics registry."""
        return {
            "completed": self.completed,
            "dropped": self.dropped,
            "queue_length": len(self._queue),
            "in_service": self._in_service,
            "utilization": self.utilization.utilization(self.sim.now),
        }

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register this center as a collector under its own name."""
        registry.register_collector(self.name, self.metrics)
