"""Measurement instruments for simulations.

The paper measures *steady-state* behaviour: caches are warmed first, then
throughput, mean response time, hit rates and per-resource utilization are
collected.  Every instrument here therefore supports ``reset(now)`` so the
warm-up phase can be discarded without restarting the run.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

__all__ = [
    "UtilizationTracker",
    "ThroughputMeter",
    "RunningStats",
    "ReservoirQuantiles",
    "CounterSet",
    "WindowedSeries",
]


class UtilizationTracker:
    """Time-integral of busy servers for one service center.

    Utilization over the measured window is
    ``busy_time / (capacity * elapsed)`` — the quantity Figure 6a plots per
    resource (disk / CPU / NIC).
    """

    __slots__ = ("capacity", "_busy", "_last_change", "_busy_integral", "_window_start")

    def __init__(self, capacity: int = 1, now: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._busy = 0
        self._last_change = now
        self._busy_integral = 0.0
        self._window_start = now

    def _accumulate(self, now: float) -> None:
        self._busy_integral += self._busy * (now - self._last_change)
        self._last_change = now

    def on_start(self, now: float) -> None:
        """A server became busy at ``now``."""
        self._accumulate(now)
        self._busy += 1
        if self._busy > self.capacity:
            raise ValueError("more busy servers than capacity")

    def on_stop(self, now: float) -> None:
        """A server became idle at ``now``."""
        self._accumulate(now)
        self._busy -= 1
        if self._busy < 0:
            raise ValueError("negative busy count")

    def reset(self, now: float) -> None:
        """Discard history; start a fresh measurement window at ``now``."""
        self._accumulate(now)
        self._busy_integral = 0.0
        self._window_start = now

    @property
    def busy(self) -> int:
        """Number of currently busy servers."""
        return self._busy

    def utilization(self, now: float) -> float:
        """Mean utilization in [0, 1] over the current window."""
        elapsed = now - self._window_start
        if elapsed <= 0.0:
            return 0.0
        integral = self._busy_integral + self._busy * (now - self._last_change)
        return integral / (self.capacity * elapsed)


class ThroughputMeter:
    """Counts completions and reports a rate over the measurement window."""

    __slots__ = ("_count", "_window_start")

    def __init__(self, now: float = 0.0) -> None:
        self._count = 0
        self._window_start = now

    def record(self) -> None:
        """One unit of work (a request) completed."""
        self._count += 1

    def reset(self, now: float) -> None:
        """Zero the counter and restart the window at ``now``."""
        self._count = 0
        self._window_start = now

    @property
    def count(self) -> int:
        """Completions since the window started."""
        return self._count

    def per_second(self, now: float) -> float:
        """Completions per second (sim time is in ms)."""
        elapsed_ms = now - self._window_start
        if elapsed_ms <= 0.0:
            return 0.0
        return self._count / (elapsed_ms / 1000.0)


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, x: float) -> None:
        """Add one observation."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def reset(self) -> None:
        """Discard all observations."""
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator; 0.0 for n < 2)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)


class ReservoirQuantiles:
    """Fixed-size deterministic reservoir for approximate quantiles.

    Keeps every k-th observation once the reservoir fills (systematic
    sampling).  Deterministic by construction — no RNG — so repeated runs
    report identical percentiles.
    """

    __slots__ = ("_capacity", "_samples", "_seen", "_stride")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._samples: list[float] = []
        self._seen = 0
        self._stride = 1

    def record(self, x: float) -> None:
        """Add one observation (may be subsampled)."""
        if self._seen % self._stride == 0:
            if len(self._samples) >= self._capacity:
                # Halve the resolution: keep every other sample.
                self._samples = self._samples[::2]
                self._stride *= 2
            if self._seen % self._stride == 0:
                self._samples.append(x)
        self._seen += 1

    def reset(self) -> None:
        """Discard all observations."""
        self._samples.clear()
        self._seen = 0
        self._stride = 1

    def quantile(self, q: float) -> float:
        """Approximate q-quantile, q in [0, 1]; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        idx = min(len(data) - 1, int(round(q * (len(data) - 1))))
        return data[idx]

    @property
    def count(self) -> int:
        """Observations seen (not the reservoir size)."""
        return self._seen


class WindowedSeries:
    """A time series binned into fixed-width windows of simulated time.

    Two accumulation modes:

    * :meth:`add` drops a point sample (e.g. one completed request) into
      the window containing ``t`` — rendering rates per window;
    * :meth:`add_interval` spreads ``value`` over ``[t0, t1)``
      proportionally to each window's overlap — rendering busy-time
      integrals (utilization) and time-averaged queue depths.

    Windows are indexed from ``t_origin``; only touched windows are
    stored, so sparse series stay cheap.
    """

    __slots__ = ("window_ms", "t_origin", "_bins")

    def __init__(self, window_ms: float, t_origin: float = 0.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self.t_origin = float(t_origin)
        self._bins: dict[int, float] = {}

    def _index(self, t: float) -> int:
        return int((t - self.t_origin) // self.window_ms)

    def add(self, t: float, value: float = 1.0) -> None:
        """Add a point sample at time ``t``."""
        idx = self._index(t)
        self._bins[idx] = self._bins.get(idx, 0.0) + value

    def add_interval(self, t0: float, t1: float, value: float = 1.0) -> None:
        """Spread ``value`` (a rate, per ms) over the interval ``[t0, t1)``.

        Each overlapped window accumulates ``value * overlap_ms`` — so a
        busy interval with ``value=1.0`` integrates busy-time, and
        dividing a window's total by ``window_ms`` recovers the mean
        level over that window.
        """
        if t1 < t0:
            raise ValueError("interval end precedes start")
        if t1 == t0:
            return
        first, last = self._index(t0), self._index(t1)
        for idx in range(first, last + 1):
            lo = self.t_origin + idx * self.window_ms
            hi = lo + self.window_ms
            overlap = min(t1, hi) - max(t0, lo)
            if overlap > 0.0:
                self._bins[idx] = self._bins.get(idx, 0.0) + value * overlap

    @property
    def empty(self) -> bool:
        """True when nothing has been accumulated."""
        return not self._bins

    def window_range(self) -> tuple[int, int]:
        """(first_index, last_index) of touched windows; (0, -1) if empty."""
        if not self._bins:
            return (0, -1)
        return (min(self._bins), max(self._bins))

    def values(self, first: int | None = None,
               last: int | None = None) -> list[float]:
        """Dense per-window totals over ``[first, last]`` (default: the
        touched range), zero-filled where nothing accumulated."""
        lo, hi = self.window_range()
        if first is None:
            first = lo
        if last is None:
            last = hi
        return [self._bins.get(i, 0.0) for i in range(first, last + 1)]

    def window_start(self, index: int) -> float:
        """Simulated time at which window ``index`` begins."""
        return self.t_origin + index * self.window_ms


class CounterSet:
    """A named bundle of integer counters (hit/miss/forward/... events)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> None:
        """Increment ``name`` by ``by`` (creates it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def bind(self, registry: MetricsRegistry, prefix: str) -> None:
        """Expose this bundle through a shared
        :class:`~repro.obs.metrics.MetricsRegistry` under ``prefix``.

        Registered as a collector, so the registry reads :meth:`as_dict`
        only at snapshot time — ``incr`` stays a plain dict update on the
        simulation hot path.
        """
        registry.register_collector(prefix, self.as_dict)

    def ratio(self, numerator: str, *denominator_parts: str) -> float:
        """``numerator / sum(denominator_parts)`` with a 0-safe denominator.

        With no ``denominator_parts``, the denominator is the sum of every
        counter (useful for hit-rate style fractions).
        """
        if denominator_parts:
            denom = sum(self.get(p) for p in denominator_parts)
        else:
            # simlint: ordered -- integer counter sum; order-independent.
            denom = sum(self._counts.values())
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom
