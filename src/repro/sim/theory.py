"""Closed-form queueing results used to validate the simulator.

A discrete-event simulator earns trust by reproducing textbook queueing
theory before anything else.  ``tests/test_sim_theory.py`` drives
:class:`~repro.sim.servicecenter.ServiceCenter` with synthetic arrival
processes and checks the measurements against these formulas:

* the **utilization law** ``U = λ·E[S]``;
* **M/M/1** and **M/D/1** mean waiting times (Pollaczek-Khinchine);
* **Little's law** ``L = λ·W``.

All formulas use arrival rate ``lam`` (jobs per ms) and mean service
time ``service_ms`` (ms), matching the simulator's units.
"""

from __future__ import annotations

__all__ = [
    "utilization",
    "mm1_wait_ms",
    "md1_wait_ms",
    "mg1_wait_ms",
    "little_l",
]


def utilization(lam: float, service_ms: float) -> float:
    """Utilization law: the fraction of time the server is busy."""
    if lam < 0 or service_ms < 0:
        raise ValueError("rates and times must be non-negative")
    return lam * service_ms


def mg1_wait_ms(lam: float, service_ms: float, service_scv: float) -> float:
    """Pollaczek-Khinchine mean *queueing* delay for M/G/1 (ms).

    ``service_scv`` is the squared coefficient of variation of service
    time (0 = deterministic, 1 = exponential).  Requires utilization < 1.
    """
    rho = utilization(lam, service_ms)
    if not 0 <= rho < 1:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return (rho * service_ms * (1.0 + service_scv)) / (2.0 * (1.0 - rho))


def mm1_wait_ms(lam: float, service_ms: float) -> float:
    """Mean queueing delay of M/M/1 (exponential service), ms."""
    return mg1_wait_ms(lam, service_ms, service_scv=1.0)


def md1_wait_ms(lam: float, service_ms: float) -> float:
    """Mean queueing delay of M/D/1 (deterministic service), ms."""
    return mg1_wait_ms(lam, service_ms, service_scv=0.0)


def little_l(lam: float, wait_ms: float) -> float:
    """Little's law: mean number in system given rate and mean time."""
    if lam < 0 or wait_ms < 0:
        raise ValueError("rates and times must be non-negative")
    return lam * wait_ms
