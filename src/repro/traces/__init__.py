"""Workload infrastructure (system S9 in DESIGN.md).

* :class:`~repro.traces.model.TraceSpec` / :class:`~repro.traces.model.Trace`
  — the data model.
* :func:`~repro.traces.synthetic.generate` — Table-2-calibrated synthesis.
* :mod:`~repro.traces.datasets` — the paper's four workloads.
* :mod:`~repro.traces.clf` — Common Log Format parsing for real logs.
* :mod:`~repro.traces.analysis` — Figure 1 / Table 2 / hit-bound math.
"""

from .analysis import (
    bytes_for_request_fraction,
    recency_reference_fraction,
    popularity_cdf,
    table2_row,
    theoretical_max_hit_rate,
)
from .clf import parse_clf_line, parse_clf_lines
from .datasets import SPECS, TRACE_NAMES, load, scaled, spec
from .io import load_trace, save_trace
from .model import Trace, TraceSpec
from .synthetic import generate, lognormal_sizes_kb, zipf_weights

__all__ = [
    "Trace",
    "TraceSpec",
    "generate",
    "zipf_weights",
    "lognormal_sizes_kb",
    "SPECS",
    "TRACE_NAMES",
    "spec",
    "load",
    "scaled",
    "popularity_cdf",
    "bytes_for_request_fraction",
    "theoretical_max_hit_rate",
    "table2_row",
    "parse_clf_line",
    "parse_clf_lines",
    "save_trace",
    "load_trace",
    "recency_reference_fraction",
]
