"""Trace analysis: the quantities Figure 1, Table 2 and Figure 4 report.

All functions operate on any :class:`~repro.traces.model.Trace`
(synthetic or parsed from a real log).
"""

from __future__ import annotations


import numpy as np

from .model import Trace

__all__ = [
    "popularity_cdf",
    "bytes_for_request_fraction",
    "theoretical_max_hit_rate",
    "table2_row",
    "recency_reference_fraction",
]


def popularity_cdf(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1's two curves.

    Files are sorted by decreasing request frequency; returns
    ``(cum_request_fraction, cum_size_mb)``, both length ``num_files``:
    element *k* covers the *k+1* most popular files.
    """
    counts = trace.request_counts()
    order = np.argsort(-counts, kind="stable")
    cum_req = np.cumsum(counts[order]) / trace.num_requests
    cum_mb = np.cumsum(trace.sizes_kb[order]) / 1024.0
    return cum_req, cum_mb


def bytes_for_request_fraction(trace: Trace, fraction: float) -> float:
    """MB of the hottest files needed to cover ``fraction`` of requests.

    The paper's Figure 1 anchor: "in order to cache 99% of the requests,
    494 MB of memory is needed" (Rutgers).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    cum_req, cum_mb = popularity_cdf(trace)
    idx = int(np.searchsorted(cum_req, fraction))
    idx = min(idx, len(cum_mb) - 1)
    return float(cum_mb[idx])


def theoretical_max_hit_rate(trace: Trace, total_memory_mb: float) -> float:
    """Best possible hit rate with ``total_memory_mb`` of aggregate cache.

    Greedy upper bound: cache the most-requested files first until memory
    runs out.  Figure 4 compares measured hit rates against this bound
    ("96% ... compared to the theoretical maximum of 99% for 512 MB of
    total memory").
    """
    if total_memory_mb <= 0:
        return 0.0
    cum_req, cum_mb = popularity_cdf(trace)
    idx = int(np.searchsorted(cum_mb, total_memory_mb, side="right"))
    if idx == 0:
        return 0.0
    return float(cum_req[min(idx - 1, len(cum_req) - 1)])


def table2_row(trace: Trace) -> dict[str, float]:
    """One row of Table 2, computed from the trace itself."""
    return {
        "num_files": trace.num_files,
        "avg_file_kb": trace.mean_file_kb,
        "num_requests": trace.num_requests,
        "avg_request_kb": trace.mean_request_kb,
        "file_set_mb": trace.file_set_mb,
    }


def recency_reference_fraction(trace: Trace, window: int = 256) -> float:
    """Fraction of requests whose file was requested within the previous
    ``window`` requests.

    A direct read-out of short-term temporal locality: i.i.d. Zipf
    streams score whatever popularity alone produces; traces generated
    with ``temporal_alpha > 0`` (and real logs) score higher.  Used by
    ablation A8 and the trace-calibration tests.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    recent: dict = {}
    hits = 0
    reqs = trace.requests
    for i, f in enumerate(reqs):
        f = int(f)
        last = recent.get(f)
        if last is not None and i - last <= window:
            hits += 1
        recent[f] = i
    return hits / len(reqs)
