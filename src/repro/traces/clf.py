"""Common Log Format parser.

The paper's traces (Calgary, ClarkNet, NASA, Rutgers) were standard web
server access logs.  This parser turns any NCSA Common Log Format file
into the same :class:`~repro.traces.model.Trace` object the synthetic
generator emits, so a user who *does* have the original logs (or their
own) can rerun every experiment on real data::

    trace = parse_clf_lines(open("access_log"))

Filtering matches standard web-caching practice (and Arlitt &
Williamson's methodology): only successful (2xx/304) GET requests with a
usable URL are kept; query strings are stripped; a file's size is the
largest size observed for its URL (log sizes vary with aborted
transfers).
"""

from __future__ import annotations

import re
from collections.abc import Iterable
import numpy as np

from .model import Trace, TraceSpec

__all__ = ["parse_clf_lines", "parse_clf_line", "CLFRecord"]

# host ident authuser [date] "request" status bytes
_CLF_RE = re.compile(
    r'^(?P<host>\S+)\s+\S+\s+\S+\s+'
    r'\[(?P<date>[^\]]*)\]\s+'
    r'"(?P<request>[^"]*)"\s+'
    r"(?P<status>\d{3})\s+"
    r"(?P<size>\d+|-)\s*$"
)


class CLFRecord(tuple):
    """(url, status, size_bytes) of one parsed log line."""

    __slots__ = ()

    def __new__(cls, url: str, status: int, size_bytes: int):
        return super().__new__(cls, (url, status, size_bytes))

    @property
    def url(self) -> str:
        """Requested URL, query string and fragment stripped."""
        return self[0]

    @property
    def status(self) -> int:
        """HTTP status code."""
        return self[1]

    @property
    def size_bytes(self) -> int:
        """Bytes transferred (0 when the log field was '-')."""
        return self[2]


def parse_clf_line(line: str) -> CLFRecord | None:
    """Parse one log line; None for malformed lines.

    Only the fields the trace model needs are extracted.
    """
    m = _CLF_RE.match(line.strip())
    if m is None:
        return None
    request = m.group("request").split()
    if len(request) < 2:
        return None
    method, url = request[0].upper(), request[1]
    if method != "GET":
        return None
    url = url.split("?", 1)[0].split("#", 1)[0]
    if not url:
        return None
    size_field = m.group("size")
    size_bytes = 0 if size_field == "-" else int(size_field)
    return CLFRecord(url, int(m.group("status")), size_bytes)


def parse_clf_lines(
    lines: Iterable[str],
    name: str = "clf",
    min_size_bytes: int = 1,
) -> Trace:
    """Build a :class:`Trace` from CLF lines.

    Keeps GETs with status 200 or 304; 304s contribute requests but not
    sizes.  URLs whose size never exceeds ``min_size_bytes`` are dropped
    (zero-byte entries are usually redirects or errors).
    """
    url_ids: dict[str, int] = {}
    max_size: list[int] = []
    request_urls: list[int] = []
    for line in lines:
        rec = parse_clf_line(line)
        if rec is None or rec.status not in (200, 304):
            continue
        fid = url_ids.get(rec.url)
        if fid is None:
            fid = len(url_ids)
            url_ids[rec.url] = fid
            max_size.append(0)
        if rec.status == 200 and rec.size_bytes > max_size[fid]:
            max_size[fid] = rec.size_bytes
        request_urls.append(fid)
    if not request_urls:
        raise ValueError("no usable GET requests in log")

    # Drop files that never showed a real size; remap ids densely.
    keep = [fid for fid, s in enumerate(max_size) if s >= min_size_bytes]
    if not keep:
        raise ValueError("no files with usable sizes in log")
    remap = {fid: i for i, fid in enumerate(keep)}
    sizes_kb = np.array([max_size[fid] / 1024.0 for fid in keep])
    requests = np.array(
        [remap[fid] for fid in request_urls if fid in remap], dtype=np.int64
    )
    if len(requests) == 0:
        raise ValueError("all requests referenced size-less files")

    pseudo = TraceSpec(
        name=name,
        num_files=len(keep),
        num_requests=len(requests),
        mean_file_kb=float(sizes_kb.mean()),
    )
    return Trace(spec=pseudo, sizes_kb=sizes_kb, requests=requests)
