"""The paper's four workloads (Table 2), reconstructed.

The published PDF's Table 2 cells were corrupted by text extraction
(sizes lost digits, several columns merged), so the specs below are
reconstructed from three anchors that *did* survive, plus the public
record for these classic traces:

* Rutgers: Figure 1's caption and axis survive — the file set is 789 MB
  ("78.93MB" in the extraction, with a dropped digit: the same figure
  shows 494 MB covering 99% of requests, so the set must exceed 494 MB)
  and caching 99% of requests needs 494 MB (62.6% of the bytes).
* All four traces were chosen "because they have relatively large working
  set sizes compared to other publicly available traces", yet small
  enough that 4-512 MB of per-node memory spans the interesting regime on
  4-8 nodes.
* Calgary, ClarkNet and NASA are the Arlitt & Williamson [3] traces:
  mean transfer sizes in the 10-25 KB range, tens of thousands of
  distinct files, 0.5-3.5 M requests.

Each spec's ``zipf_theta`` is tuned so the request-weighted CDF matches
the Figure 1 shape (validated in ``tests/test_traces.py``); absolute
request counts are kept moderate because experiments subsample anyway.
"""

from __future__ import annotations


from .model import Trace, TraceSpec
from .synthetic import generate

__all__ = ["SPECS", "TRACE_NAMES", "spec", "load", "scaled"]

SPECS: dict[str, TraceSpec] = {
    "calgary": TraceSpec(
        name="calgary",
        num_files=7_500,
        num_requests=700_000,
        mean_file_kb=19.0,      # ~139 MB file set
        zipf_theta=1.10,
        size_sigma=1.4,
        size_popularity_rho=0.1,
        seed=11,
    ),
    "clarknet": TraceSpec(
        name="clarknet",
        num_files=30_000,
        num_requests=1_600_000,
        mean_file_kb=14.5,      # ~425 MB file set
        zipf_theta=1.08,
        size_sigma=1.4,
        size_popularity_rho=0.1,
        seed=12,
    ),
    "nasa": TraceSpec(
        name="nasa",
        num_files=8_000,
        num_requests=1_400_000,
        mean_file_kb=30.0,      # ~234 MB file set
        zipf_theta=1.10,
        size_sigma=1.5,
        size_popularity_rho=0.1,
        seed=13,
    ),
    "rutgers": TraceSpec(
        name="rutgers",
        num_files=38_000,
        num_requests=500_000,
        mean_file_kb=21.3,      # ~790 MB file set (789 MB in Fig. 1)
        zipf_theta=1.08,        # 99% of requests within ~63% of the bytes
        size_sigma=1.4,         # (Figure 1 anchor: 494 MB / 789 MB = 0.626)
        size_popularity_rho=0.1,
        seed=14,
    ),
}

#: Paper ordering: Figure 2's panels (a)-(d).
TRACE_NAMES: list[str] = ["calgary", "clarknet", "nasa", "rutgers"]


def spec(name: str) -> TraceSpec:
    """Spec for one of the paper's traces."""
    try:
        return SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace {name!r}; choose from {TRACE_NAMES}"
        ) from None


def load(name: str) -> Trace:
    """Generate the full-size synthetic trace for ``name``."""
    return generate(spec(name))


def scaled(name: str, factor: float, num_requests: int = 0) -> Trace:
    """A ``factor``-scaled version of trace ``name`` (see
    :meth:`~repro.traces.model.TraceSpec.scaled`).

    ``num_requests`` > 0 additionally pins the trace length — simulation
    experiments usually want a few thousand requests regardless of scale.
    """
    s = spec(name).scaled(factor)
    if num_requests > 0:
        s = s.with_requests(num_requests)
    return generate(s)
