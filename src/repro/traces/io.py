"""Trace persistence.

Generating the full-size synthetic traces takes seconds, but parsing a
multi-gigabyte real access log does not — so traces can be saved to a
compact ``.npz`` and reloaded instantly.  The format stores the request
stream and file sizes as numpy arrays plus the spec fields needed to
reconstruct provenance.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

import numpy as np

from .model import Trace, TraceSpec

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``trace`` to ``path`` (numpy ``.npz``, compressed)."""
    spec_json = json.dumps(
        {"format_version": _FORMAT_VERSION, "spec": asdict(trace.spec)}
    )
    np.savez_compressed(
        path,
        sizes_kb=trace.sizes_kb,
        requests=trace.requests,
        meta=np.frombuffer(spec_json.encode("utf-8"), dtype=np.uint8),
    )


def load_trace(path: str | os.PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            sizes = data["sizes_kb"]
            requests = data["requests"]
        except KeyError as exc:
            raise ValueError(f"{path!s} is not a saved trace") from exc
    version = meta.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} in {path!s}"
        )
    spec = TraceSpec(**meta["spec"])
    return Trace(spec=spec, sizes_kb=sizes, requests=requests)
