"""Trace data model.

A :class:`Trace` is what every experiment consumes: an ordered stream of
whole-file GET requests over a fixed file set.  Timing information is
deliberately absent — the paper ignores it ("To measure the maximum
achievable throughput of the cluster, we ignore the timing information
present in the traces") and drives the server with closed-loop clients.

Both the synthetic generators (:mod:`repro.traces.synthetic`) and the
Common-Log-Format parser (:mod:`repro.traces.clf`) produce this type, so
real logs drop into any experiment unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterator

import numpy as np

__all__ = ["TraceSpec", "Trace"]


@dataclass(frozen=True)
class TraceSpec:
    """Statistical profile of a workload (one paper Table 2 row).

    The four named instances live in :mod:`repro.traces.datasets`.  The
    real mid-1990s logs are not redistributable, so the generator
    synthesizes a trace matching these aggregates plus the Figure 1
    popularity shape; DESIGN.md §4.5 records the substitution.
    """

    name: str
    #: Distinct files.
    num_files: int
    #: Requests in the trace.
    num_requests: int
    #: Mean file size (KB) — Table 2 "Avg. file size".
    mean_file_kb: float
    #: Zipf exponent of the popularity distribution (Figure 1 shape).
    zipf_theta: float = 0.8
    #: Lognormal sigma of the size body (Arlitt & Williamson report
    #: heavy-tailed sizes; ~1.4 reproduces their spread).
    size_sigma: float = 1.4
    #: Rank correlation between popularity and smallness: 1 = the most
    #: popular file is the smallest, 0 = independent.  Arlitt &
    #: Williamson's invariant is a mild negative size-popularity
    #: correlation.
    size_popularity_rho: float = 0.3
    #: Short-term temporal locality beyond popularity: each request is,
    #: with this probability, a re-reference drawn from the recent
    #: request window instead of the popularity distribution.  0 = the
    #: paper-default i.i.d. Zipf stream (see DESIGN.md §4.5); real logs
    #: sit around 0.1-0.3 (ablation A8 sweeps it).
    temporal_alpha: float = 0.0
    #: Number of recent requests the re-reference draw samples from.
    temporal_window: int = 256
    #: RNG seed for the generator.
    seed: int = 1

    def __post_init__(self):
        if self.num_files < 1 or self.num_requests < 1:
            raise ValueError("need at least one file and one request")
        if self.mean_file_kb <= 0:
            raise ValueError("mean_file_kb must be positive")
        if self.zipf_theta < 0:
            raise ValueError("zipf_theta must be >= 0")
        if not 0.0 <= self.size_popularity_rho <= 1.0:
            raise ValueError("size_popularity_rho must be in [0, 1]")
        if not 0.0 <= self.temporal_alpha < 1.0:
            raise ValueError("temporal_alpha must be in [0, 1)")
        if self.temporal_window < 1:
            raise ValueError("temporal_window must be >= 1")

    @property
    def file_set_mb(self) -> float:
        """Expected file-set size in MB (Table 2 "File set size")."""
        return self.num_files * self.mean_file_kb / 1024.0

    def scaled(self, factor: float, *, min_files: int = 50,
               min_requests: int = 500) -> "TraceSpec":
        """A statistically similar but ``factor``-times-smaller workload.

        File and request counts shrink together; per-file sizes and the
        popularity shape are unchanged, so cache-behaviour experiments
        scale node memory by the same factor and keep the working-set /
        memory ratio of the full-size run.  Used by the benchmark harness
        to keep pure-Python simulation affordable.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            name=f"{self.name}@{factor:g}",
            num_files=max(min_files, int(round(self.num_files * factor))),
            num_requests=max(min_requests, int(round(self.num_requests * factor))),
        )

    def with_requests(self, num_requests: int) -> "TraceSpec":
        """Same workload profile with a different trace length."""
        return replace(self, num_requests=num_requests)


@dataclass
class Trace:
    """A concrete request stream over a concrete file set."""

    #: Provenance: the spec that generated it, or a parser-made pseudo-spec.
    spec: TraceSpec
    #: Per-file sizes in KB, indexed by file id.
    sizes_kb: np.ndarray
    #: The request stream: file id per request, in order.
    requests: np.ndarray

    def __post_init__(self):
        self.sizes_kb = np.asarray(self.sizes_kb, dtype=np.float64)
        self.requests = np.asarray(self.requests, dtype=np.int64)
        if self.sizes_kb.ndim != 1 or self.requests.ndim != 1:
            raise ValueError("sizes_kb and requests must be 1-D")
        if len(self.sizes_kb) == 0 or len(self.requests) == 0:
            raise ValueError("empty trace")
        if (self.sizes_kb <= 0).any():
            raise ValueError("all file sizes must be positive")
        if self.requests.min() < 0 or self.requests.max() >= len(self.sizes_kb):
            raise ValueError("request references file id out of range")

    # -- aggregates (Table 2 columns) --------------------------------------
    @property
    def num_files(self) -> int:
        """Distinct files in the file set."""
        return len(self.sizes_kb)

    @property
    def num_requests(self) -> int:
        """Length of the request stream."""
        return len(self.requests)

    @property
    def mean_file_kb(self) -> float:
        """Average file size (Table 2 "Avg. file size")."""
        return float(self.sizes_kb.mean())

    @property
    def mean_request_kb(self) -> float:
        """Average *request* size — popularity-weighted file size
        (Table 2 "Avg. request size")."""
        return float(self.sizes_kb[self.requests].mean())

    @property
    def file_set_mb(self) -> float:
        """Total bytes across distinct files, in MB."""
        return float(self.sizes_kb.sum() / 1024.0)

    @property
    def total_requested_mb(self) -> float:
        """Total bytes moved if every request is fully served, in MB."""
        return float(self.sizes_kb[self.requests].sum() / 1024.0)

    # -- access ------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self.requests)

    def head(self, n: int) -> "Trace":
        """The first ``n`` requests over the same file set."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return Trace(self.spec, self.sizes_kb, self.requests[:n])

    def request_counts(self) -> np.ndarray:
        """Per-file request counts (length ``num_files``)."""
        return np.bincount(self.requests, minlength=self.num_files)
