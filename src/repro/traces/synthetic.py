"""Synthetic web-trace generation calibrated to the paper's Table 2.

The real Calgary / ClarkNet / NASA / Rutgers logs from 1995-2001 are not
redistributable (and not available offline), so we synthesize traces that
match what the experiments actually depend on:

* the **aggregates** in Table 2 — file count, mean file size, request
  count, mean request size, file-set size;
* the **popularity skew** of Figure 1 — a Zipf-like request distribution
  whose request-weighted CDF concentrates ~99% of requests on a fraction
  of the byte set (494 MB of 789 MB for Rutgers);
* the Arlitt & Williamson invariants the paper cites [3]: heavy-tailed
  (lognormal-body) file sizes and a mild negative correlation between
  popularity and size (popular files tend small), which is what makes the
  average *request* size smaller than the average *file* size.

Requests are drawn i.i.d. from the popularity distribution.  Real traces
add short-term temporal locality on top; with LRU-family policies the
popularity skew dominates steady-state hit rates, and i.i.d. draws keep
every run's statistics interpretable.  (Documented limitation, DESIGN.md
§4.5.)
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import stream
from .model import Trace, TraceSpec

__all__ = ["generate", "zipf_weights", "lognormal_sizes_kb"]


def zipf_weights(n: int, theta: float) -> np.ndarray:
    """Normalized Zipf(θ) probabilities over ranks 0..n-1 (rank 0 hottest)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-theta)
    return w / w.sum()


def lognormal_sizes_kb(
    n: int, mean_kb: float, sigma: float, rng: np.random.Generator,
    min_kb: float = 0.5, max_kb: float = 4096.0,
) -> np.ndarray:
    """Heavy-tailed file sizes with an exact mean of ``mean_kb``.

    Sizes are lognormal, clipped to [min_kb, max_kb], then rescaled so the
    sample mean hits ``mean_kb`` exactly — Table 2's aggregate columns are
    then reproduced by construction, not just in expectation.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not min_kb < mean_kb < max_kb:
        raise ValueError("need min_kb < mean_kb < max_kb")
    # lognormal mean = exp(mu + sigma^2/2) -> pick mu for the target mean.
    mu = np.log(mean_kb) - sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=n)
    sizes = np.clip(sizes, min_kb, max_kb)
    # Rescale (iterating because clipping interacts with scaling).
    for _ in range(8):
        factor = mean_kb / sizes.mean()
        if abs(factor - 1.0) < 1e-9:
            break
        sizes = np.clip(sizes * factor, min_kb, max_kb)
    return sizes


def _popularity_ranks(
    sizes_kb: np.ndarray, rho: float, rng: np.random.Generator
) -> np.ndarray:
    """Assign popularity ranks so smaller files tend to rank hotter.

    ``rho`` in [0, 1]: 0 = ranks independent of size, 1 = strictly
    smallest-first.  Implemented by ranking on a noisy copy of the size
    order: score = (1-rho) * random + rho * size_percentile.
    """
    n = len(sizes_kb)
    size_pct = np.argsort(np.argsort(sizes_kb)) / max(1, n - 1)
    score = (1.0 - rho) * rng.random(n) + rho * size_pct
    # Lowest score -> rank 0 (hottest).
    order = np.argsort(score, kind="stable")
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n)
    return ranks


def _add_temporal_locality(
    requests: np.ndarray, alpha: float, window: int, rng: np.random.Generator
) -> np.ndarray:
    """Overlay short-term re-references on an i.i.d. request stream.

    With probability ``alpha`` each request is replaced by a uniform
    draw from the previous ``window`` requests — a simple LRU-stack
    locality model that leaves the long-run popularity distribution
    essentially unchanged (re-references are drawn from it) while
    boosting small-cache hit rates, the way real logs do.
    """
    if alpha <= 0.0:
        return requests
    out = requests.copy()
    redo = rng.random(len(out)) < alpha
    picks = rng.integers(1, window + 1, size=len(out))
    for i in np.nonzero(redo)[0]:
        if i == 0:
            continue
        back = min(int(picks[i]), i)
        out[i] = out[i - back]
    return out


def generate(spec: TraceSpec) -> Trace:
    """Generate the synthetic trace for ``spec`` (deterministic per seed)."""
    size_rng = stream(spec.seed, "trace", spec.name, "sizes")
    rank_rng = stream(spec.seed, "trace", spec.name, "ranks")
    req_rng = stream(spec.seed, "trace", spec.name, "requests")

    sizes = lognormal_sizes_kb(
        spec.num_files, spec.mean_file_kb, spec.size_sigma, size_rng
    )
    ranks = _popularity_ranks(sizes, spec.size_popularity_rho, rank_rng)
    weights = zipf_weights(spec.num_files, spec.zipf_theta)
    # File f's request probability is the weight of its popularity rank.
    probs = weights[ranks]
    requests = req_rng.choice(spec.num_files, size=spec.num_requests, p=probs)
    requests = _add_temporal_locality(
        requests, spec.temporal_alpha, spec.temporal_window,
        stream(spec.seed, "trace", spec.name, "temporal"),
    )
    return Trace(spec=spec, sizes_kb=sizes, requests=requests)
