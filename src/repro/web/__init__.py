"""Web service layer and measurement harness (system S8 in DESIGN.md).

* :class:`~repro.web.server.CoopCacheWebServer` — GET service over the
  cooperative caching middleware.
* :class:`~repro.web.client.ClosedLoopDriver` — the paper's measurement
  protocol (closed-loop clients, warm-up, steady-state stats).
"""

from .client import HTTP_REQUEST_KB, ClosedLoopDriver, ClusterService, WorkloadResult
from .server import CoopCacheWebServer

__all__ = [
    "CoopCacheWebServer",
    "ClosedLoopDriver",
    "ClusterService",
    "WorkloadResult",
    "HTTP_REQUEST_KB",
]
