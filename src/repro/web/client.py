"""Closed-loop HTTP clients and the measurement harness.

The paper's measurement protocol, reproduced exactly:

* "we ignore the timing information present in the traces.  Each HTTP
  client generates a new request as soon as the previous one has been
  served" — a fixed population of closed-loop clients draining a shared
  trace cursor, which measures *maximum achievable throughput*;
* "we also measure throughput only after the caches have been warmed up"
  — the first ``warmup_frac`` of the trace runs unmeasured, then every
  statistic (throughput window, response times, utilizations, hit
  counters) is reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator
from typing import Protocol

from ..cluster.cluster import Cluster
from ..cluster.node import Node
from ..sim.engine import Event, Simulator
from ..sim.faults import NULL_FAULTS
from ..sim.stats import ReservoirQuantiles, RunningStats, ThroughputMeter
from ..traces.model import Trace

__all__ = ["ClusterService", "WorkloadResult", "ClosedLoopDriver"]

#: KB of an HTTP GET request message.
HTTP_REQUEST_KB = 0.3


class ClusterService(Protocol):
    """What the driver needs from a server implementation."""

    def handle(self, node: Node, file_id: int) -> Generator[Event, object, None]:
        """Process one request at ``node``; a simulation coroutine."""
        ...

    def reset_stats(self) -> None:
        """Discard warm-up counters."""
        ...


@dataclass
class WorkloadResult:
    """Steady-state measurements of one run."""

    #: Requests completed per second after warm-up.
    throughput_rps: float
    #: Mean response time (ms) after warm-up.
    mean_response_ms: float
    #: Response-time percentiles (ms) after warm-up.
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Requests measured (excludes warm-up).
    measured_requests: int
    #: Cluster-mean utilization per resource class.
    utilization: dict[str, float] = field(default_factory=dict)
    #: Maximum per-node utilization per resource class.
    max_utilization: dict[str, float] = field(default_factory=dict)
    #: Simulated milliseconds in the measurement window.
    window_ms: float = 0.0
    #: Mean response time per service class ("local"/"remote"/"disk"/...),
    #: for services whose handle() reports one (Figure 5 analysis).
    response_by_class_ms: dict[str, float] = field(default_factory=dict)
    #: Measured request count per service class.
    requests_by_class: dict[str, int] = field(default_factory=dict)
    #: Measured requests that terminated as "failed" under fault
    #: injection (excluded from throughput and response moments; their
    #: latency still shows up in ``response_by_class_ms["failed"]``).
    failed_requests: int = 0
    #: Simulated time at the end of the whole run, warm-up included
    #: (baseline horizon for sizing a fault plan over the same trace).
    total_ms: float = 0.0


class ClosedLoopDriver:
    """Runs a trace through a service with closed-loop clients."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        service: ClusterService,
        trace: Trace,
        num_clients: int = 64,
        warmup_frac: float = 0.25,
        obs=None,
        faults=None,
    ):
        if num_clients < 1:
            raise ValueError("need at least one client")
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError("warmup_frac must be in [0, 1)")
        self.sim = sim
        self.cluster = cluster
        self.service = service
        self.trace = trace
        self.num_clients = num_clients
        self.warmup_count = int(trace.num_requests * warmup_frac)
        self._cursor = 0
        self._issued_measured = 0
        self._warmed = warmup_frac == 0.0
        self.throughput = ThroughputMeter(sim.now)
        self.response = RunningStats()
        self.quantiles = ReservoirQuantiles()
        self.response_by_class: dict[str, RunningStats] = {}
        self.failed_requests = 0
        self._faults = faults if faults is not None else NULL_FAULTS
        self._warm_time: float = sim.now
        # Whole-run (warm-up included) response-time histogram in the
        # shared registry; never reset, so trace-derived totals match.
        self._response_hist = (
            obs.registry.histogram("client.response_ms")
            if obs is not None else None
        )
        # When profiling, each request gets a *client-side* root span
        # covering router + wire + server work + reply — exactly the
        # client-observed elapsed time the response statistics measure,
        # so offline phase attribution can sum to mean_response_ms.
        prof = getattr(obs, "profiler", None)
        self._prof = prof if (prof is not None and prof.enabled) else None
        self._tracer = obs.tracer if obs is not None else None
        # Windowed SLO evaluation over measured completions; None (the
        # default) keeps the record path identical to pre-SLO builds.
        self._slo = getattr(obs, "slo", None)

    # -- the client loop -----------------------------------------------------
    def _next_request(self) -> int | None:
        """Shared trace cursor: the measured stream is the trace order
        regardless of how many clients drain it."""
        if self._cursor >= self.trace.num_requests:
            return None
        idx = self._cursor
        self._cursor += 1
        if not self._warmed and idx >= self.warmup_count:
            self._begin_measurement()
        return int(self.trace.requests[idx])

    def _begin_measurement(self) -> None:
        """End of warm-up: reset every statistic to steady state."""
        self._warmed = True
        self._warm_time = self.sim.now
        self.cluster.reset_stats()
        self.service.reset_stats()
        self.throughput.reset(self.sim.now)
        self.response.reset()
        self.quantiles.reset()
        self.response_by_class.clear()
        self.failed_requests = 0

    def _pick_node(self) -> Generator[Event, object, Node | None]:
        """DNS pick with a bounded retry loop when the cluster is dark.

        Fault-free, :meth:`~repro.cluster.dns.RoundRobinDNS.pick` never
        returns None and this adds zero kernel events.  Under fault
        injection an all-nodes-down instant costs detection timeouts and
        capped backoffs, and past the retry budget returns None — the
        request then fails instead of hanging.
        """
        node = self.cluster.dns.pick()
        if node is not None:
            return node
        fparams = self.cluster.params.faults
        for attempt in range(fparams.max_retries):
            yield self.sim.timeout(fparams.detect_timeout_ms)
            delay = self._faults.backoff_ms(attempt)
            if delay > 0.0:
                yield self.sim.timeout(delay)
            node = self.cluster.dns.pick()
            if node is not None:
                return node
        return None

    def _client(self) -> Generator[Event, object, None]:
        params = self.cluster.params
        net = self.cluster.network
        while True:
            file_id = self._next_request()
            if file_id is None:
                return
            measured = self._warmed
            start = self.sim.now
            node = yield from self._pick_node()
            if node is None:
                # Every node stayed down past the retry budget.
                self._record(measured, start, "failed")
                continue
            if self._prof is None:
                # Front-end: router forwards, request crosses the LAN.
                yield self.cluster.router.forward()
                yield from net.transfer(None, node, HTTP_REQUEST_KB)
                service_class = yield self.sim.process(
                    self.service.handle(node, file_id)
                )
                # Reply wire latency back to the client.
                yield self.sim.timeout(params.network.latency_ms)
            else:
                prof = self._prof
                root = self._tracer.start(
                    "client", node=node.node_id, file=file_id
                )
                yield from prof.wait(
                    root, None, "router", self.cluster.router.forward()
                )
                yield from net.transfer(None, node, HTTP_REQUEST_KB,
                                        prof=prof, parent=root)
                service_class = yield self.sim.process(
                    self.service.handle(node, file_id, parent=root)
                )
                yield from prof.wait(
                    root, None, "wire",
                    self.sim.timeout(params.network.latency_ms),
                )
                root.finish(
                    measured=measured,
                    cls=service_class if isinstance(service_class, str)
                    else None,
                )
            self._record(measured, start, service_class)

    def _record(self, measured: bool, start: float, service_class) -> None:
        """Fold one finished (or failed) request into the statistics.

        Failed requests are counted — and their latency kept under
        ``response_by_class["failed"]`` — but excluded from throughput
        and the response moments: an aborted request delivered nothing,
        so folding its (short) latency in would *flatter* the faulted
        system.
        """
        if self._response_hist is not None:
            self._response_hist.observe(self.sim.now - start)
        if not measured:
            return
        elapsed = self.sim.now - start
        if self._slo is not None:
            self._slo.observe(self.sim.now, elapsed,
                              service_class == "failed")
        if service_class == "failed":
            self.failed_requests += 1
        else:
            self.throughput.record()
            self.response.record(elapsed)
            self.quantiles.record(elapsed)
        if isinstance(service_class, str):
            stats = self.response_by_class.get(service_class)
            if stats is None:
                stats = RunningStats()
                self.response_by_class[service_class] = stats
            stats.record(elapsed)

    # -- orchestration ----------------------------------------------------------
    def run(self) -> WorkloadResult:
        """Drain the whole trace; returns steady-state measurements."""
        clients = [self.sim.process(self._client()) for _ in range(self.num_clients)]
        done = self.sim.all_of(clients)
        self.sim.run()
        if not done.processed:  # pragma: no cover - deadlock guard
            raise RuntimeError("workload did not complete (deadlocked clients)")
        for client in clients:
            if not client.ok:
                raise RuntimeError("client process failed") from client.value
        now = self.sim.now
        return WorkloadResult(
            throughput_rps=self.throughput.per_second(now),
            mean_response_ms=self.response.mean,
            p50_ms=self.quantiles.quantile(0.50),
            p95_ms=self.quantiles.quantile(0.95),
            p99_ms=self.quantiles.quantile(0.99),
            measured_requests=self.throughput.count,
            utilization=self.cluster.utilization(),
            max_utilization=self.cluster.max_utilization(),
            window_ms=now - self._warm_time,
            response_by_class_ms={
                cls: stats.mean
                for cls, stats in self.response_by_class.items()
            },
            requests_by_class={
                cls: stats.n
                for cls, stats in self.response_by_class.items()
            },
            failed_requests=self.failed_requests,
            total_ms=now,
        )
