"""Web server layered on the cooperative caching middleware.

The paper's server stack is deliberately boring — "an off-the-shelf web
server and round-robin DNS" — with all cleverness in the middleware.  A
request for file *f* at node *n* costs:

1. URL parsing on *n*'s CPU (Table 1 "Parsing time");
2. the middleware read (:meth:`repro.core.CoopCacheLayer.read`);
3. reply serving on *n*'s CPU (Table 1 "Serving time", size-dependent);
4. *n*'s NIC occupancy pushing the reply onto the LAN.

Any object with this module's ``handle(node, file_id)`` / ``reset_stats``
shape plugs into the closed-loop client harness — the PRESS baseline
implements the same interface.

When built with an :class:`~repro.obs.Observability` bundle, every GET
becomes one trace (a root ``request`` span whose children are the
middleware's protocol hops) and per-class request counters accumulate in
the shared registry.
"""

from __future__ import annotations

from collections.abc import Generator

from ..cache.block import FileLayout
from ..cluster.node import Node
from ..core.middleware import CoopCacheLayer
from ..obs.profile import NULL_PROFILER
from ..obs.tracing import NULL_TRACER
from ..sim.engine import Event
from ..sim.faults import RequestAborted

__all__ = ["CoopCacheWebServer"]


class CoopCacheWebServer:
    """HTTP GET service over :class:`~repro.core.CoopCacheLayer`."""

    def __init__(self, layer: CoopCacheLayer, obs=None):
        self.layer = layer
        self.params = layer.params
        self.layout: FileLayout = layer.layout
        self.tracer = obs.tracer if obs is not None else NULL_TRACER
        self.prof = getattr(obs, "profiler", NULL_PROFILER) or NULL_PROFILER
        self._registry = obs.registry if obs is not None else None

    def handle(
        self, node: Node, file_id: int, parent=None
    ) -> Generator[Event, object, str]:
        """Coroutine: fully process one GET for ``file_id`` at ``node``.

        Returns the request's service class ("local" / "remote" /
        "disk") for per-class response-time accounting.  ``parent`` is
        the caller's span (the client driver's, when profiling).
        """
        cpu = self.params.cpu
        prof = self.prof
        span = self.tracer.start(
            "request", parent=parent, node=node.node_id, file=file_id
        )
        yield from prof.wait(span, node.node_id, "cpu",
                             node.cpu.submit(cpu.parse_ms))
        try:
            service_class = yield from self.layer.read(
                node, file_id, span=span
            )
        except RequestAborted:
            # Bounded retries exhausted (fault injection): the request
            # terminates loudly as "failed" — degraded, never hung.
            span.finish(cls="failed", error=True)
            if self._registry is not None:
                self._registry.counter("requests_failed").incr()
            return "failed"
        size_kb = self.layout.size_kb(file_id)
        yield from prof.wait(span, node.node_id, "cpu",
                             node.cpu.submit(cpu.serve_ms(size_kb)))
        # Reply to the client over the shared LAN.
        yield from prof.wait(
            span, node.node_id, "nic",
            node.nic.submit(self.params.network.transfer_ms(size_kb)),
        )
        span.finish(cls=service_class)
        if self._registry is not None:
            self._registry.counter(f"requests_{service_class}").incr()
        return service_class

    def reset_stats(self) -> None:
        """Discard warm-up counters (hit rates become steady-state)."""
        self.layer.counters.reset()

    def hit_rates(self):
        """Steady-state block hit rates (Figure 4)."""
        return self.layer.hit_rates()
