"""Fast tests for the ablation studies (tiny monkeypatched workloads)."""

import numpy as np
import pytest

import repro.experiments.ablations as abl
from repro.traces import Trace, TraceSpec


def tiny_trace(n_files=10, n_requests=250, seed=8):
    rng = np.random.default_rng(seed)
    reqs = (rng.random(n_requests) ** 2 * n_files).astype(int)
    return Trace(
        spec=TraceSpec("tiny", n_files, n_requests, 16.0),
        sizes_kb=np.full(n_files, 16.0),
        requests=np.clip(reqs, 0, n_files - 1),
    )


@pytest.fixture(autouse=True)
def small_world(monkeypatch):
    """Shrink every ablation to a toy workload and few clients."""
    monkeypatch.setattr(abl.defaults, "NUM_CLIENTS", 4)
    monkeypatch.setattr(abl.defaults, "SCALE", 0.01)
    monkeypatch.setattr(abl.defaults, "workload", lambda name: tiny_trace())


class TestA1Hints:
    def test_shape_and_render(self):
        data = abl.a1_hints(accuracies=(1.0, 0.5))
        assert [p["accuracy"] for p in data["points"]] == [1.0, 0.5]
        assert data["perfect_rps"] > 0
        out = abl.render_a1(data)
        assert "hint-based directory" in out

    def test_perfect_hints_near_parity(self, monkeypatch):
        # A1's claim is hints-vs-*perfect*: an inherited REPRO_DIRECTORY
        # would swap the baseline and make the ratio meaningless.
        monkeypatch.delenv("REPRO_DIRECTORY", raising=False)
        data = abl.a1_hints(accuracies=(1.0,))
        assert data["points"][0]["vs_perfect"] == pytest.approx(1.0, abs=0.1)


class TestA2Hotspot:
    def test_shape_and_render(self):
        data = abl.a2_hotspot(hot_fraction=0.2, num_nodes=2)
        assert data["spread_rps"] > 0 and data["concentrated_rps"] > 0
        assert 0 < data["ratio"] < 3
        assert "concentrated/spread" in abl.render_a2(data)


class TestA3WholeFile:
    def test_shape_and_render(self):
        data = abl.a3_wholefile(memories_mb=[0.125], num_nodes=2)
        p = data["points"][0]
        assert p["block_rps"] > 0 and p["wholefile_rps"] > 0
        assert "granularity" in abl.render_a3(data)


class TestA4DiskSched:
    def test_shape_and_render(self):
        data = abl.a4_disksched(mem_mb=0.125)
        assert len(data["points"]) == 4
        combos = {(p["policy"], p["disk"]) for p in data["points"]}
        assert combos == {("basic", "fifo"), ("basic", "scan"),
                          ("kmc", "fifo"), ("kmc", "scan")}
        assert "disk scheduling" in abl.render_a4(data)


class TestA5Lan:
    def test_shape_and_render(self):
        data = abl.a5_lan(mem_mb=0.125, configs=("lan-1gb",))
        p = data["points"][0]
        assert p["press_rps"] > 0 and p["kmc_rps"] > 0
        assert p["ratio"] == pytest.approx(p["kmc_rps"] / p["press_rps"])
        assert "LAN sensitivity" in abl.render_a5(data)


class TestA6Replacement:
    def test_shape_and_render(self):
        data = abl.a6_replacement(mem_mb=0.125)
        by = {(p["policy"], p["forward"]): p for p in data["points"]}
        assert len(by) == 4
        assert by[("kmc", False)]["forwards"] == 0
        assert "replacement components" in abl.render_a6(data)


class TestA7Writes:
    def test_shape_and_render(self):
        data = abl.a7_writes(mem_mb=0.125, write_ratios=(0.0, 0.5),
                             num_nodes=2)
        by = {p["write_ratio"]: p for p in data["points"]}
        assert by[0.0]["back_flushes"] == 0
        assert by[0.5]["through_flushes"] > 0
        assert by[0.5]["back_invalidations"] >= 0
        out = abl.render_a7(data)
        assert "read/write workloads" in out


class TestA8Temporal:
    def test_shape_and_render(self, monkeypatch):
        # A8 regenerates traces from the spec, so hand it a real (small)
        # synthetic spec instead of the hand-built fixture trace.
        from repro.traces import TraceSpec, generate

        spec = TraceSpec("mini", 30, 400, 12.0, zipf_theta=1.0)
        monkeypatch.setattr(
            abl.defaults, "workload", lambda name: generate(spec)
        )
        data = abl.a8_temporal(mem_mb=0.125, alphas=(0.0, 0.5), num_nodes=2)
        pts = {p["alpha"]: p for p in data["points"]}
        assert pts[0.5]["recency"] >= pts[0.0]["recency"] - 0.02
        assert all(p["press_rps"] > 0 and p["kmc_rps"] > 0
                   for p in data["points"])
        assert "temporal locality" in abl.render_a8(data)
