"""Tests for the timing-free cache simulators, including the cross-check
against the full event-driven simulator."""

import numpy as np
import pytest

from repro.analytic import AnalyticCoopCache, AnalyticPress
from repro.cache.block import FileLayout
from repro.params import DEFAULT_PARAMS
from repro.traces import Trace, TraceSpec


def make_layout(n_files=8, file_kb=16.0):
    return FileLayout([file_kb] * n_files, DEFAULT_PARAMS)


def make_trace(n_files=8, n_requests=400, file_kb=16.0, seed=3):
    rng = np.random.default_rng(seed)
    reqs = (rng.random(n_requests) ** 2 * n_files).astype(int)
    return Trace(
        spec=TraceSpec("t", n_files, n_requests, file_kb),
        sizes_kb=np.full(n_files, file_kb),
        requests=np.clip(reqs, 0, n_files - 1),
    )


class TestAnalyticCoopCache:
    def test_first_access_is_disk(self):
        sim = AnalyticCoopCache(2, make_layout(), capacity_blocks=16)
        sim.access(0, 0)
        assert sim.counts == {"local": 0, "remote": 0, "disk": 2}

    def test_repeat_is_local(self):
        sim = AnalyticCoopCache(2, make_layout(), capacity_blocks=16)
        sim.access(0, 0)
        sim.access(0, 0)
        assert sim.counts["local"] == 2

    def test_other_node_is_remote(self):
        sim = AnalyticCoopCache(2, make_layout(), capacity_blocks=16)
        sim.access(0, 0)
        sim.access(1, 0)
        assert sim.counts["remote"] == 2

    def test_kmc_beats_basic_on_skewed_trace(self):
        layout = make_layout(n_files=30)
        trace = make_trace(n_files=30, n_requests=3000)
        # Cache far smaller than the file set: policy differences show.
        kmc = AnalyticCoopCache(4, layout, 8, policy="kmc").run(trace)
        basic = AnalyticCoopCache(4, layout, 8, policy="basic").run(trace)
        assert kmc["total"] >= basic["total"]

    def test_forwarding_helps_or_is_neutral(self):
        layout = make_layout(n_files=30)
        trace = make_trace(n_files=30, n_requests=3000)
        fwd = AnalyticCoopCache(4, layout, 8, forward_on_evict=True).run(trace)
        nofwd = AnalyticCoopCache(4, layout, 8, forward_on_evict=False).run(trace)
        assert fwd["total"] >= nofwd["total"] - 0.02

    def test_hit_rates_sum_to_one(self):
        sim = AnalyticCoopCache(4, make_layout(), 8)
        hr = sim.run(make_trace())
        assert hr["local"] + hr["remote"] + hr["disk"] == pytest.approx(1.0)

    def test_bigger_cache_not_worse(self):
        layout = make_layout(n_files=30)
        trace = make_trace(n_files=30, n_requests=2000)
        small = AnalyticCoopCache(4, layout, 4).run(trace)
        big = AnalyticCoopCache(4, layout, 32).run(trace)
        assert big["total"] >= small["total"]

    def test_single_node(self):
        sim = AnalyticCoopCache(1, make_layout(), 8)
        hr = sim.run(make_trace(), warmup_frac=0.0)
        assert hr["remote"] == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AnalyticCoopCache(0, make_layout(), 8)
        sim = AnalyticCoopCache(1, make_layout(), 8)
        with pytest.raises(ValueError):
            sim.run(make_trace(), warmup_frac=1.0)

    def test_empty_hit_rates(self):
        sim = AnalyticCoopCache(2, make_layout(), 8)
        assert sim.hit_rates()["total"] == 0.0


class TestAnalyticPress:
    def test_adoption_then_hits(self):
        sim = AnalyticPress(2, make_layout(), capacity_kb=64.0)
        sim.access(0, 0)
        sim.access(0, 0)
        sim.access(1, 0)
        assert sim.counts["disk"] == 2
        assert sim.counts["local"] + sim.counts["remote"] == 4

    def test_single_copy_kept(self):
        sim = AnalyticPress(4, make_layout(), capacity_kb=64.0)
        for node in range(4):
            sim.access(node, 0)
        assert sim.directory.copies(0) == 1

    def test_oversized_file_never_cached(self):
        layout = FileLayout([100.0], DEFAULT_PARAMS)
        sim = AnalyticPress(2, layout, capacity_kb=50.0)
        sim.access(0, 0)
        sim.access(0, 0)
        assert sim.counts["disk"] == 26  # 13 blocks, twice

    def test_run_and_rates(self):
        sim = AnalyticPress(4, make_layout(), capacity_kb=64.0)
        hr = sim.run(make_trace())
        assert hr["local"] + hr["remote"] + hr["disk"] == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            AnalyticPress(0, make_layout(), 64.0)


class TestCrossValidation:
    """The full event simulator must track sequential semantics."""

    def test_full_sim_hit_rate_tracks_analytic_single_client(self):
        # With ONE closed-loop client there is no concurrency, so the
        # full simulator should match the analytic replay very closely.
        from repro.experiments import ExperimentConfig, run_experiment

        n_files = 20
        trace = make_trace(n_files=n_files, n_requests=600)
        layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)

        analytic = AnalyticCoopCache(4, layout, 16, policy="kmc").run(
            trace, warmup_frac=0.25
        )
        full = run_experiment(
            ExperimentConfig(
                system="cc-kmc",
                trace=trace,
                num_nodes=4,
                mem_mb_per_node=16 * 8 / 1024.0,
                num_clients=1,
                warmup_frac=0.25,
            )
        )
        assert full.hit_rates["total"] == pytest.approx(
            analytic["total"], abs=0.05
        )
        assert full.hit_rates["disk"] == pytest.approx(
            analytic["disk"], abs=0.05
        )

    def test_kmc_advantage_visible_in_both(self):
        n_files = 30
        trace = make_trace(n_files=n_files, n_requests=1200)
        layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
        a_kmc = AnalyticCoopCache(4, layout, 8, policy="kmc").run(trace)
        a_basic = AnalyticCoopCache(4, layout, 8, policy="basic").run(trace)

        from repro.experiments import ExperimentConfig, run_experiment

        mem = 8 * 8 / 1024.0
        f_kmc = run_experiment(ExperimentConfig(
            system="cc-kmc", trace=trace, num_nodes=4,
            mem_mb_per_node=mem, num_clients=1))
        f_basic = run_experiment(ExperimentConfig(
            system="cc-sched", trace=trace, num_nodes=4,
            mem_mb_per_node=mem, num_clients=1))
        # Ordering agrees between the two simulators.
        assert (a_kmc["total"] >= a_basic["total"]) == (
            f_kmc.hit_rates["total"] >= f_basic.hit_rates["total"]
        )
