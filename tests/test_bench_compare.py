"""Tests for the benchmark trajectory schema and the regression gate."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare_records,
    dump_record,
    extract_throughput_metrics,
    load_record,
    params_digest,
    render_compare,
    wrap_result,
)
from repro.bench.__main__ import main as bench_main


def make_record(metrics, params=None, name="fig2"):
    rec = wrap_result(name, {"raw": True}, seed=0,
                      params=params or {"scale": 0.02})
    rec["metrics"] = dict(metrics)
    return rec


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------
class TestSchema:
    def test_wrap_result_carries_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        rec = wrap_result("fig2", {"x": 1}, seed=7,
                          params={"scale": 0.02, "requests": 800})
        assert rec["schema_version"] == SCHEMA_VERSION
        assert rec["name"] == "fig2"
        assert rec["git_sha"] == "cafebabe"
        assert rec["seed"] == 7
        assert rec["params_digest"] == params_digest(rec["params"])
        assert len(rec["params_digest"]) == 16

    def test_params_digest_is_order_independent(self):
        assert params_digest({"a": 1, "b": 2}) \
            == params_digest({"b": 2, "a": 1})
        assert params_digest({"a": 1}) != params_digest({"a": 2})

    def test_extract_fig2_shape(self):
        data = {
            "rutgers": {
                "memory_mb": [4, 16],
                "throughput_rps": {"cc-kmc": [100.0, 300.0],
                                   "press": [90.0, 250.0]},
            },
        }
        metrics = extract_throughput_metrics(data)
        assert metrics == {
            "rutgers.throughput_rps.cc-kmc": 200.0,
            "rutgers.throughput_rps.press": 170.0,
        }

    def test_extract_a10_shape_uses_self_describing_labels(self):
        data = {"systems": [
            {"system": "cc-kmc",
             "points": [{"name": "faultfree", "throughput_rps": 500.0},
                        {"name": "crashy", "throughput_rps": 400.0}]},
        ]}
        metrics = extract_throughput_metrics(data)
        assert metrics == {
            "systems.cc-kmc.points.faultfree.throughput_rps": 500.0,
            "systems.cc-kmc.points.crashy.throughput_rps": 400.0,
        }

    def test_dump_load_round_trip_sorted(self, tmp_path):
        rec = make_record({"m": 1.0})
        path = tmp_path / "BENCH_fig2.json"
        dump_record(rec, path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == load_record(path)
        # sorted keys: "data" before "git_sha" before "metrics"
        assert text.index('"data"') < text.index('"git_sha"') \
            < text.index('"metrics"')


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------
class TestCompare:
    def test_clean_pass(self):
        base = make_record({"a": 100.0, "b": 50.0})
        cur = make_record({"a": 99.0, "b": 51.0})
        result = compare_records(cur, base)
        assert result.ok
        assert result.compared == 2
        assert "ok — no metric regressed" in render_compare(result)

    def test_exactly_ten_percent_drop_fails(self):
        """The acceptance bar: a synthetic 10% regression exits nonzero —
        the boundary is inclusive."""
        base = make_record({"a": 100.0})
        cur = make_record({"a": 90.0})
        result = compare_records(cur, base, threshold=0.10)
        assert not result.ok
        assert result.regressions[0]["metric"] == "a"
        assert "REGRESSION" in render_compare(result)

    def test_improvement_never_fails(self):
        base = make_record({"a": 100.0})
        cur = make_record({"a": 140.0})
        result = compare_records(cur, base)
        assert result.ok
        assert result.improvements

    def test_missing_metric_fails(self):
        base = make_record({"a": 100.0, "gone": 10.0})
        cur = make_record({"a": 100.0})
        result = compare_records(cur, base)
        assert not result.ok
        assert result.missing == ["gone"]
        assert "MISSING gone" in render_compare(result)

    def test_params_digest_mismatch_fails(self):
        base = make_record({"a": 100.0}, params={"scale": 0.02})
        cur = make_record({"a": 100.0}, params={"scale": 0.05})
        result = compare_records(cur, base)
        assert not result.ok and result.params_mismatch
        assert "params digest mismatch" in render_compare(result)

    def test_zero_baseline_metric_is_skipped(self):
        base = make_record({"a": 0.0})
        cur = make_record({"a": 0.0})
        result = compare_records(cur, base)
        assert result.ok and result.compared == 0

    def test_threshold_validation(self):
        base = make_record({"a": 1.0})
        with pytest.raises(ValueError):
            compare_records(base, base, threshold=0.0)
        with pytest.raises(ValueError):
            compare_records(base, base, threshold=1.0)


# ---------------------------------------------------------------------------
# CLI gate
# ---------------------------------------------------------------------------
class TestCliGate:
    def _write(self, tmp_path, name, metrics, params=None):
        path = tmp_path / name
        dump_record(make_record(metrics, params=params), path)
        return path

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_fig2.json", {"a": 100.0})
        rec = self._write(tmp_path, "BENCH_fig2.json", {"a": 89.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_fig2.json", {"a": 100.0})
        rec = self._write(tmp_path, "BENCH_fig2.json", {"a": 95.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
        ]) == 0

    def test_missing_baseline_skips_unless_strict(self, tmp_path, capsys):
        rec = self._write(tmp_path, "BENCH_new.json", {"a": 1.0})
        empty = tmp_path / "baselines"
        empty.mkdir()
        assert bench_main([
            "compare", str(rec), "--baselines", str(empty),
        ]) == 0
        assert "no baseline" in capsys.readouterr().out
        assert bench_main([
            "compare", str(rec), "--baselines", str(empty), "--strict",
        ]) == 1

    def test_explicit_baseline_file(self, tmp_path):
        base = self._write(tmp_path, "base.json", {"a": 100.0})
        rec = self._write(tmp_path, "cur.json", {"a": 50.0})
        assert bench_main([
            "compare", str(rec), "--baseline", str(base),
        ]) == 1

    def test_explicit_baseline_rejects_multiple_records(
        self, tmp_path, capsys
    ):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        rec = self._write(tmp_path, "cur.json", {"a": 1.0})
        assert bench_main([
            "compare", str(rec), str(rec), "--baseline", str(base),
        ]) == 2

    def test_custom_threshold(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_x.json", {"a": 100.0})
        rec = self._write(tmp_path, "BENCH_x.json", {"a": 94.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--threshold", "0.05",
        ]) == 1
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--threshold", "0.10",
        ]) == 0
