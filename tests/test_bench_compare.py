"""Tests for the benchmark trajectory schema and the regression gate."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare_records,
    dump_record,
    extract_throughput_metrics,
    load_record,
    params_digest,
    render_compare,
    wrap_result,
)
from repro.bench.__main__ import main as bench_main


def make_record(metrics, params=None, name="fig2"):
    rec = wrap_result(name, {"raw": True}, seed=0,
                      params=params or {"scale": 0.02})
    rec["metrics"] = dict(metrics)
    return rec


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------
class TestSchema:
    def test_wrap_result_carries_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        rec = wrap_result("fig2", {"x": 1}, seed=7,
                          params={"scale": 0.02, "requests": 800})
        assert rec["schema_version"] == SCHEMA_VERSION
        assert rec["name"] == "fig2"
        assert rec["git_sha"] == "cafebabe"
        assert rec["seed"] == 7
        assert rec["params_digest"] == params_digest(rec["params"])
        assert len(rec["params_digest"]) == 16

    def test_params_digest_is_order_independent(self):
        assert params_digest({"a": 1, "b": 2}) \
            == params_digest({"b": 2, "a": 1})
        assert params_digest({"a": 1}) != params_digest({"a": 2})

    def test_extract_fig2_shape(self):
        data = {
            "rutgers": {
                "memory_mb": [4, 16],
                "throughput_rps": {"cc-kmc": [100.0, 300.0],
                                   "press": [90.0, 250.0]},
            },
        }
        metrics = extract_throughput_metrics(data)
        assert metrics == {
            "rutgers.throughput_rps.cc-kmc": 200.0,
            "rutgers.throughput_rps.press": 170.0,
        }

    def test_extract_a10_shape_uses_self_describing_labels(self):
        data = {"systems": [
            {"system": "cc-kmc",
             "points": [{"name": "faultfree", "throughput_rps": 500.0},
                        {"name": "crashy", "throughput_rps": 400.0}]},
        ]}
        metrics = extract_throughput_metrics(data)
        assert metrics == {
            "systems.cc-kmc.points.faultfree.throughput_rps": 500.0,
            "systems.cc-kmc.points.crashy.throughput_rps": 400.0,
        }

    def test_dump_load_round_trip_sorted(self, tmp_path):
        rec = make_record({"m": 1.0})
        path = tmp_path / "BENCH_fig2.json"
        dump_record(rec, path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == load_record(path)
        # sorted keys: "data" before "git_sha" before "metrics"
        assert text.index('"data"') < text.index('"git_sha"') \
            < text.index('"metrics"')


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------
class TestCompare:
    def test_clean_pass(self):
        base = make_record({"a": 100.0, "b": 50.0})
        cur = make_record({"a": 99.0, "b": 51.0})
        result = compare_records(cur, base)
        assert result.ok
        assert result.compared == 2
        assert "ok — no metric regressed" in render_compare(result)

    def test_exactly_ten_percent_drop_fails(self):
        """The acceptance bar: a synthetic 10% regression exits nonzero —
        the boundary is inclusive."""
        base = make_record({"a": 100.0})
        cur = make_record({"a": 90.0})
        result = compare_records(cur, base, threshold=0.10)
        assert not result.ok
        assert result.regressions[0]["metric"] == "a"
        assert "REGRESSION" in render_compare(result)

    def test_improvement_never_fails(self):
        base = make_record({"a": 100.0})
        cur = make_record({"a": 140.0})
        result = compare_records(cur, base)
        assert result.ok
        assert result.improvements

    def test_missing_metric_fails(self):
        base = make_record({"a": 100.0, "gone": 10.0})
        cur = make_record({"a": 100.0})
        result = compare_records(cur, base)
        assert not result.ok
        assert result.missing == ["gone"]
        assert "MISSING gone" in render_compare(result)

    def test_params_digest_mismatch_fails(self):
        base = make_record({"a": 100.0}, params={"scale": 0.02})
        cur = make_record({"a": 100.0}, params={"scale": 0.05})
        result = compare_records(cur, base)
        assert not result.ok and result.params_mismatch
        assert "params digest mismatch" in render_compare(result)

    def test_zero_baseline_metric_is_skipped(self):
        base = make_record({"a": 0.0})
        cur = make_record({"a": 0.0})
        result = compare_records(cur, base)
        assert result.ok and result.compared == 0

    def test_threshold_validation(self):
        base = make_record({"a": 1.0})
        with pytest.raises(ValueError):
            compare_records(base, base, threshold=0.0)
        with pytest.raises(ValueError):
            compare_records(base, base, threshold=1.0)


# ---------------------------------------------------------------------------
# CLI gate
# ---------------------------------------------------------------------------
class TestCliGate:
    def _write(self, tmp_path, name, metrics, params=None):
        path = tmp_path / name
        dump_record(make_record(metrics, params=params), path)
        return path

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_fig2.json", {"a": 100.0})
        rec = self._write(tmp_path, "BENCH_fig2.json", {"a": 89.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_fig2.json", {"a": 100.0})
        rec = self._write(tmp_path, "BENCH_fig2.json", {"a": 95.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
        ]) == 0

    def test_missing_baseline_skips_unless_strict(self, tmp_path, capsys):
        rec = self._write(tmp_path, "BENCH_new.json", {"a": 1.0})
        empty = tmp_path / "baselines"
        empty.mkdir()
        assert bench_main([
            "compare", str(rec), "--baselines", str(empty),
        ]) == 0
        assert "no baseline" in capsys.readouterr().out
        # Strict missing-baseline is its own exit code, distinct from a
        # regression.
        assert bench_main([
            "compare", str(rec), "--baselines", str(empty), "--strict",
        ]) == 3

    def test_exit_codes_are_distinct_and_pinned(self, tmp_path, capsys):
        """The documented contract: 0 clean / 1 regression / 2 usage /
        3 strict-missing-baseline, and regression wins over missing."""
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_ok.json", {"a": 100.0})
        ok = self._write(tmp_path, "BENCH_ok.json", {"a": 100.0})
        self._write(baselines, "BENCH_bad.json", {"a": 100.0})
        bad = self._write(tmp_path, "BENCH_bad.json", {"a": 50.0})
        orphan = self._write(tmp_path, "BENCH_orphan.json", {"a": 1.0})

        assert bench_main([
            "compare", str(ok), "--baselines", str(baselines),
        ]) == 0
        assert bench_main([
            "compare", str(bad), "--baselines", str(baselines),
        ]) == 1
        assert bench_main([
            "compare", str(ok), str(ok), "--baseline", str(ok),
        ]) == 2
        assert bench_main([
            "compare", str(orphan), "--baselines", str(baselines),
            "--strict",
        ]) == 3
        # Precedence: a real regression outranks a missing baseline.
        assert bench_main([
            "compare", str(bad), str(orphan),
            "--baselines", str(baselines), "--strict",
        ]) == 1
        capsys.readouterr()

    def test_unreadable_record_is_a_usage_error(self, tmp_path, capsys):
        """Cannot-read-your-input must not masquerade as a regression."""
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        assert bench_main([
            "compare", str(tmp_path / "missing.json"),
            "--baselines", str(baselines),
        ]) == 2
        garbage = tmp_path / "BENCH_garbage.json"
        garbage.write_text("not json {")
        assert bench_main([
            "compare", str(garbage), "--baselines", str(baselines),
        ]) == 2
        # A corrupt committed baseline is also a usage error, not a pass.
        self._write(tmp_path, "BENCH_ok.json", {"a": 100.0})
        (baselines / "BENCH_ok.json").write_text("not json {")
        assert bench_main([
            "compare", str(tmp_path / "BENCH_ok.json"),
            "--baselines", str(baselines),
        ]) == 2
        err = capsys.readouterr().err
        assert "cannot read record" in err
        assert "cannot read baseline" in err

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench_main(["compare", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "3  --strict" in out

    def test_explicit_baseline_file(self, tmp_path):
        base = self._write(tmp_path, "base.json", {"a": 100.0})
        rec = self._write(tmp_path, "cur.json", {"a": 50.0})
        assert bench_main([
            "compare", str(rec), "--baseline", str(base),
        ]) == 1

    def test_explicit_baseline_rejects_multiple_records(
        self, tmp_path, capsys
    ):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        rec = self._write(tmp_path, "cur.json", {"a": 1.0})
        assert bench_main([
            "compare", str(rec), str(rec), "--baseline", str(base),
        ]) == 2

    def test_custom_threshold(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_x.json", {"a": 100.0})
        rec = self._write(tmp_path, "BENCH_x.json", {"a": 94.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--threshold", "0.05",
        ]) == 1
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--threshold", "0.10",
        ]) == 0


# ---------------------------------------------------------------------------
# compare --all
# ---------------------------------------------------------------------------
class TestCompareAll:
    """`compare --all` gates every BENCH_*.json in one invocation."""

    def _write(self, tmp_path, name, metrics, params=None):
        path = tmp_path / name
        dump_record(make_record(metrics, params=params), path)
        return path

    def test_all_gates_every_record_in_dir(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_a.json", {"m": 100.0})
        self._write(baselines, "BENCH_b.json", {"m": 100.0})
        self._write(tmp_path, "BENCH_a.json", {"m": 99.0})
        self._write(tmp_path, "BENCH_b.json", {"m": 101.0})
        # Only BENCH_*.json is picked up, not other JSON lying around.
        (tmp_path / "not-a-record.json").write_text("{}")
        assert bench_main([
            "compare", "--all", "--dir", str(tmp_path),
            "--baselines", str(baselines),
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("no metric regressed") == 2

    def test_all_trips_on_any_regression(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_ok.json", {"m": 100.0})
        self._write(baselines, "BENCH_bad.json", {"m": 100.0})
        self._write(tmp_path, "BENCH_ok.json", {"m": 100.0})
        self._write(tmp_path, "BENCH_bad.json", {"m": 50.0})
        assert bench_main([
            "compare", "--all", "--dir", str(tmp_path),
            "--baselines", str(baselines),
        ]) == 1
        capsys.readouterr()

    def test_all_skips_unbaselined_records(self, tmp_path, capsys):
        """The CI semantics: sched/ring/sweep-smoke records have no
        committed baseline and must stay ungated under --all."""
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines, "BENCH_gated.json", {"m": 100.0})
        self._write(tmp_path, "BENCH_gated.json", {"m": 100.0})
        self._write(tmp_path, "BENCH_sweep_smoke.json", {"m": 1.0})
        assert bench_main([
            "compare", "--all", "--dir", str(tmp_path),
            "--baselines", str(baselines),
        ]) == 0
        assert "no baseline" in capsys.readouterr().out
        # --strict still turns the skip into the distinct exit code.
        assert bench_main([
            "compare", "--all", "--dir", str(tmp_path),
            "--baselines", str(baselines), "--strict",
        ]) == 3
        capsys.readouterr()

    def test_all_with_records_is_usage_error(self, tmp_path, capsys):
        rec = self._write(tmp_path, "BENCH_x.json", {"m": 1.0})
        assert bench_main(["compare", str(rec), "--all"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_no_records_and_no_all_is_usage_error(self, capsys):
        assert bench_main(["compare"]) == 2
        assert "no records" in capsys.readouterr().err

    def test_all_over_empty_dir_is_usage_error(self, tmp_path, capsys):
        """Zero matches must not masquerade as a clean gate."""
        assert bench_main([
            "compare", "--all", "--dir", str(tmp_path),
        ]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# explain hook
# ---------------------------------------------------------------------------
class TestExplain:
    def _attr_file(self, tmp_path, name, mean, phases):
        from repro.obs.schema import as_report

        doc = as_report("attribution", {
            "requests": 100,
            "mean_response_ms": mean,
            "mean_residual_ms": 0.0,
            "phase_means_ms": phases,
            "by_class": {},
            "binding_resource": None,
        })
        path = tmp_path / name
        path.write_text(json.dumps(doc, indent=2, sort_keys=True))
        return path

    def _bench_pair(self, tmp_path, base_val, cur_val):
        baselines = tmp_path / "baselines"
        baselines.mkdir(exist_ok=True)
        path = baselines / "BENCH_fig2.json"
        dump_record(make_record({"a": base_val}), path)
        rec = tmp_path / "BENCH_fig2.json"
        dump_record(make_record({"a": cur_val}), rec)
        return rec, baselines

    def test_tripped_gate_emits_explain_report(self, tmp_path, capsys):
        rec, baselines = self._bench_pair(tmp_path, 100.0, 50.0)
        attr_base = self._attr_file(tmp_path, "attr-base.json", 6.0,
                                    {"disk.queue": 5.0, "cpu.service": 1.0})
        attr_cur = self._attr_file(tmp_path, "attr-cur.json", 8.0,
                                   {"disk.queue": 7.0, "cpu.service": 1.0})
        out_path = tmp_path / "explain.json"
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--explain-baseline", str(attr_base),
            "--explain-current", str(attr_cur),
            "--explain-out", str(out_path),
        ]) == 1
        out = capsys.readouterr().out
        assert "explain: differential attribution" in out
        assert "regression explained by: disk.queue" in out
        doc = json.loads(out_path.read_text())
        assert doc["kind"] == "diff"
        assert doc["regressed_phase"] == "disk.queue"

    def test_clean_gate_skips_explain(self, tmp_path, capsys):
        rec, baselines = self._bench_pair(tmp_path, 100.0, 100.0)
        attr = self._attr_file(tmp_path, "attr.json", 6.0,
                               {"disk.queue": 6.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--explain-baseline", str(attr),
            "--explain-current", str(attr),
        ]) == 0
        assert "explain" not in capsys.readouterr().out

    def test_explain_flags_must_pair(self, tmp_path, capsys):
        rec, baselines = self._bench_pair(tmp_path, 100.0, 100.0)
        attr = self._attr_file(tmp_path, "attr.json", 6.0,
                               {"disk.queue": 6.0})
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--explain-baseline", str(attr),
        ]) == 2
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--explain-out", str(tmp_path / "x.json"),
        ]) == 2
        capsys.readouterr()

    def test_unreadable_explain_input_keeps_gate_exit(
        self, tmp_path, capsys
    ):
        """A broken attribution artifact must not mask the regression."""
        rec, baselines = self._bench_pair(tmp_path, 100.0, 50.0)
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        assert bench_main([
            "compare", str(rec), "--baselines", str(baselines),
            "--explain-baseline", str(bad),
            "--explain-current", str(bad),
        ]) == 1
        assert "cannot read attribution" in capsys.readouterr().err
