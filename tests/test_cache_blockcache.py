"""Unit tests for BlockCache, GlobalDirectory and HomeMap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import BlockCache, BlockId, CacheFullError, GlobalDirectory, HomeMap


def b(i):
    return BlockId(0, i)


class TestBlockCache:
    def test_insert_and_contains(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=1.0)
        assert b(1) in c and c.is_master(b(1))
        assert len(c) == 1

    def test_capacity_enforced(self):
        c = BlockCache(0, 2)
        c.insert(b(1), master=True, age=1.0)
        c.insert(b(2), master=False, age=2.0)
        assert c.is_full
        with pytest.raises(CacheFullError):
            c.insert(b(3), master=True, age=3.0)

    def test_duplicate_insert_raises(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=1.0)
        with pytest.raises(KeyError):
            c.insert(b(1), master=False, age=2.0)

    def test_free_slots(self):
        c = BlockCache(0, 3)
        assert c.free_slots == 3
        c.insert(b(1), master=True, age=1.0)
        assert c.free_slots == 2

    def test_master_nonmaster_counts(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=1.0)
        c.insert(b(2), master=False, age=2.0)
        c.insert(b(3), master=False, age=3.0)
        assert c.num_masters == 1 and c.num_nonmasters == 2

    def test_oldest_across_both_sets(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=5.0)
        c.insert(b(2), master=False, age=3.0)
        assert c.oldest() == (b(2), 3.0, False)

    def test_oldest_tie_prefers_nonmaster(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=3.0)
        c.insert(b(2), master=False, age=3.0)
        assert c.oldest() == (b(2), 3.0, False)

    def test_oldest_empty(self):
        assert BlockCache(0, 4).oldest() is None
        assert BlockCache(0, 4).oldest_age() == float("inf")

    def test_oldest_nonmaster_only_masters(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=1.0)
        assert c.oldest_nonmaster() is None

    def test_touch_refreshes(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=1.0)
        c.insert(b(2), master=False, age=2.0)
        c.touch(b(1), 10.0)
        assert c.oldest() == (b(2), 2.0, False)
        assert c.age_of(b(1)) == 10.0

    def test_remove_returns_masterness(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=1.0)
        c.insert(b(2), master=False, age=2.0)
        assert c.remove(b(1)) is True
        assert c.remove(b(2)) is False
        assert len(c) == 0

    def test_promote_to_master_keeps_age(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=False, age=7.0)
        c.promote_to_master(b(1))
        assert c.is_master(b(1))
        assert c.age_of(b(1)) == 7.0
        assert c.num_nonmasters == 0

    def test_forwarded_old_block_becomes_victim(self):
        # A forwarded master arriving with an ancient age must become the
        # next eviction victim, not sit at the MRU end.
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=100.0)
        c.insert(b(2), master=True, age=200.0)
        c.insert(b(3), master=True, age=0.5)  # forwarded, ancient
        assert c.oldest() == (b(3), 0.5, True)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(0, 0)

    def test_stats_snapshot(self):
        c = BlockCache(3, 4)
        c.insert(b(1), master=True, age=1.0)
        c.insert(b(2), master=False, age=2.0)
        c.mark_dirty(b(1))
        assert c.stats() == {
            "node": 3, "capacity_blocks": 4, "masters": 1,
            "nonmasters": 1, "dirty": 1, "free_slots": 2,
        }

    def test_clear_routes_through_remove(self):
        """clear() must decrement every counter through the single remove
        code path — an attached scope sees each block leave."""

        class Recorder:
            def __init__(self):
                self.removed = []

            def on_insert(self, node_id, key, master, kb=None):
                pass

            def on_remove(self, node_id, key, master, kb=None):
                self.removed.append((key, master))

        rec = Recorder()
        c = BlockCache(0, 4, scope=rec)
        c.insert(b(1), master=True, age=1.0)
        c.insert(b(2), master=False, age=2.0)
        c.mark_dirty(b(1))
        lost = c.clear()
        assert set(lost) == {b(1), b(2)}
        assert lost[0] == b(1)  # masters first
        assert set(rec.removed) == {(b(1), True), (b(2), False)}
        assert len(c) == 0 and c.num_dirty == 0
        assert c.stats()["free_slots"] == 4

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert_m", "insert_n", "touch", "remove"]),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_and_counts_invariants(self, ops):
        cap = 4
        c = BlockCache(0, cap)
        model = {}  # block -> is_master
        clock = 0.0
        for op, i in ops:
            blk = b(i)
            clock += 1.0
            if op.startswith("insert") and blk not in model and len(model) < cap:
                master = op == "insert_m"
                c.insert(blk, master=master, age=clock)
                model[blk] = master
            elif op == "touch" and blk in model:
                c.touch(blk, clock)
            elif op == "remove" and blk in model:
                assert c.remove(blk) == model.pop(blk)
            assert len(c) == len(model) <= cap
            assert c.num_masters == sum(model.values())
            assert c.num_nonmasters == len(model) - sum(model.values())
            assert c.is_full == (len(model) == cap)


class TestGlobalDirectory:
    def test_lookup_absent(self):
        assert GlobalDirectory().lookup(b(1)) is None

    def test_set_and_lookup(self):
        d = GlobalDirectory()
        d.set_master(b(1), 3)
        assert d.lookup(b(1)) == 3
        assert len(d) == 1

    def test_move_master(self):
        d = GlobalDirectory()
        d.set_master(b(1), 3)
        d.set_master(b(1), 5)
        assert d.lookup(b(1)) == 5
        assert len(d) == 1

    def test_clear_master(self):
        d = GlobalDirectory()
        d.set_master(b(1), 3)
        d.clear_master(b(1))
        assert d.lookup(b(1)) is None
        d.clear_master(b(1))  # idempotent

    def test_masters_at(self):
        d = GlobalDirectory()
        d.set_master(b(1), 0)
        d.set_master(b(2), 0)
        d.set_master(b(3), 1)
        assert d.masters_at(0) == 2 and d.masters_at(1) == 1

    def test_census(self):
        d = GlobalDirectory()
        assert d.census() == {}
        d.set_master(b(1), 0)
        d.set_master(b(2), 0)
        d.set_master(b(3), 1)
        assert d.census() == {0: 2, 1: 1}
        d.clear_master(b(2))
        assert d.census() == {0: 1, 1: 1}


class TestHomeMap:
    def test_round_robin_spread(self):
        h = HomeMap(num_files=10, num_nodes=4)
        assert [h.home_of(f) for f in range(10)] == [f % 4 for f in range(10)]

    def test_concentrated(self):
        h = HomeMap(num_files=5, num_nodes=4, strategy="concentrated")
        assert all(h.home_of(f) == 0 for f in range(5))

    def test_concentrate_subset(self):
        h = HomeMap(num_files=10, num_nodes=4)
        h.concentrate([1, 2, 3], node_id=2)
        assert h.home_of(1) == h.home_of(2) == h.home_of(3) == 2
        assert h.home_of(0) == 0

    def test_concentrate_bad_node(self):
        h = HomeMap(num_files=10, num_nodes=4)
        with pytest.raises(ValueError):
            h.concentrate([1], node_id=7)

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            HomeMap(5, 2, strategy="random")

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            HomeMap(0, 2)
        with pytest.raises(ValueError):
            HomeMap(2, 0)
