"""Unit + property tests for AgedLRU and FileLayout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import AgedLRU, BlockId, FileLayout
from repro.params import SimParams


def b(i):
    return BlockId(0, i)


class TestAgedLRU:
    def test_empty(self):
        lru = AgedLRU()
        assert len(lru) == 0
        assert lru.oldest() is None
        assert lru.oldest_age() == float("inf")

    def test_add_and_oldest(self):
        lru = AgedLRU()
        lru.add(b(1), 10.0)
        lru.add(b(2), 5.0)
        lru.add(b(3), 7.0)
        assert lru.oldest() == (b(2), 5.0)

    def test_add_duplicate_raises(self):
        lru = AgedLRU()
        lru.add(b(1), 1.0)
        with pytest.raises(KeyError):
            lru.add(b(1), 2.0)

    def test_touch_reorders(self):
        lru = AgedLRU()
        lru.add(b(1), 1.0)
        lru.add(b(2), 2.0)
        lru.touch(b(1), 3.0)
        assert lru.oldest() == (b(2), 2.0)

    def test_touch_missing_raises(self):
        with pytest.raises(KeyError):
            AgedLRU().touch(b(1), 1.0)

    def test_touch_backwards_raises(self):
        lru = AgedLRU()
        lru.add(b(1), 5.0)
        with pytest.raises(ValueError):
            lru.touch(b(1), 4.0)

    def test_touch_same_age_ok(self):
        lru = AgedLRU()
        lru.add(b(1), 5.0)
        lru.touch(b(1), 5.0)
        assert lru.age_of(b(1)) == 5.0

    def test_remove_returns_age(self):
        lru = AgedLRU()
        lru.add(b(1), 9.0)
        assert lru.remove(b(1)) == 9.0
        assert b(1) not in lru

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AgedLRU().remove(b(1))

    def test_pop_oldest_sequence(self):
        lru = AgedLRU()
        for i, age in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            lru.add(b(i), age)
        popped = [lru.pop_oldest() for _ in range(5)]
        assert [age for _, age in popped] == [1.0, 2.0, 3.0, 4.0, 5.0]
        with pytest.raises(KeyError):
            lru.pop_oldest()

    def test_equal_ages_break_by_insertion_order(self):
        lru = AgedLRU()
        lru.add(b(1), 1.0)
        lru.add(b(2), 1.0)
        assert lru.pop_oldest()[0] == b(1)
        assert lru.pop_oldest()[0] == b(2)

    def test_stale_entries_skipped_after_churn(self):
        lru = AgedLRU()
        lru.add(b(1), 1.0)
        for t in range(2, 50):
            lru.touch(b(1), float(t))
        lru.add(b(2), 0.5)
        assert lru.oldest() == (b(2), 0.5)

    def test_compact_preserves_order(self):
        lru = AgedLRU()
        for i in range(20):
            lru.add(b(i), float(i))
        for i in range(0, 20, 2):
            lru.touch(b(i), 100.0 + i)
        before = lru.oldest()
        lru.compact()
        assert lru.heap_size == len(lru)
        assert lru.oldest() == before

    def test_iter_and_contains(self):
        lru = AgedLRU()
        lru.add(b(1), 1.0)
        lru.add(b(2), 2.0)
        assert set(lru) == {b(1), b(2)}
        assert b(1) in lru and b(3) not in lru

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "touch", "remove", "pop"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_reference_model(self, ops):
        """AgedLRU behaves like a dict + argmin reference implementation."""
        lru = AgedLRU()
        model = {}  # block -> (age, seq)
        clock = 0.0
        seq = 0
        for op, i in ops:
            blk = b(i)
            clock += 1.0
            seq += 1
            if op == "add" and blk not in model:
                lru.add(blk, clock)
                model[blk] = (clock, seq)
            elif op == "touch" and blk in model:
                lru.touch(blk, clock)
                model[blk] = (clock, seq)
            elif op == "remove" and blk in model:
                assert lru.remove(blk) == model.pop(blk)[0]
            elif op == "pop" and model:
                blk2, age = lru.pop_oldest()
                expect = min(model, key=lambda k: model[k])
                assert blk2 == expect and age == model.pop(expect)[0]
            # Invariants after every step:
            assert len(lru) == len(model)
            if model:
                exp_oldest = min(model, key=lambda k: model[k])
                got = lru.oldest()
                assert got is not None and got[0] == exp_oldest
            else:
                assert lru.oldest() is None


class TestFileLayout:
    def make(self, sizes):
        return FileLayout(sizes, SimParams())

    def test_num_blocks_rounding(self):
        layout = self.make([1.0, 8.0, 8.5, 16.0, 100.0])
        assert [layout.num_blocks(f) for f in range(5)] == [1, 1, 2, 2, 13]

    def test_num_extents(self):
        layout = self.make([1.0, 64.0, 65.0, 200.0])
        assert [layout.num_extents(f) for f in range(4)] == [1, 1, 2, 4]

    def test_block_size_kb_partial_tail(self):
        layout = self.make([20.0])
        assert layout.block_size_kb(BlockId(0, 0)) == 8.0
        assert layout.block_size_kb(BlockId(0, 1)) == 8.0
        assert layout.block_size_kb(BlockId(0, 2)) == pytest.approx(4.0)

    def test_block_size_exact_multiple(self):
        layout = self.make([16.0])
        assert layout.block_size_kb(BlockId(0, 1)) == 8.0

    def test_block_out_of_range(self):
        layout = self.make([8.0])
        with pytest.raises(IndexError):
            layout.block_size_kb(BlockId(0, 1))

    def test_blocks_iterator(self):
        layout = self.make([20.0])
        assert list(layout.blocks(0)) == [BlockId(0, i) for i in range(3)]

    def test_extent_of(self):
        layout = self.make([200.0])
        assert layout.extent_of(BlockId(0, 0)) == 0
        assert layout.extent_of(BlockId(0, 7)) == 0
        assert layout.extent_of(BlockId(0, 8)) == 1

    def test_totals(self):
        layout = self.make([8.0, 16.0])
        assert layout.total_blocks() == 3
        assert layout.total_size_kb() == pytest.approx(24.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            self.make([8.0, 0.0])

    def test_block_sizes_sum_to_file_size(self):
        layout = self.make([13.7, 64.0, 1.0, 100.3])
        for f in range(4):
            total = sum(layout.block_size_kb(blk) for blk in layout.blocks(f))
            assert total == pytest.approx(layout.size_kb(f))
