"""Chaos property tests: random fault schedules against all four systems.

Three properties, each over hypothesis-drawn seeded :class:`FaultPlan`\\ s:

* **degraded, never hung** — under any generated schedule, every issued
  request terminates (served or explicitly "failed"); the closed-loop
  driver itself raises on deadlocked clients, and the measured counts
  must account for the whole post-warm-up trace;
* **consistent at every fault boundary** — the middleware's full
  ``check_invariants`` runs synchronously after *each* applied fault
  event (via ``fault_listeners``), so directory repair can never leave a
  half-crashed view behind;
* **replayable** — the same (seed, plan) pair produces byte-identical
  traces, so any chaotic failure can be archived and re-run exactly.

The workload is deliberately small (120 rutgers-shaped requests); the
point is interleaving faults with live protocol traffic, not load.
"""

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.core.config import variant
from repro.experiments.runner import (
    ExperimentConfig,
    _build_cc,
    _build_press,
    run_experiment,
)
from repro.obs import Observability
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, FaultPlan
from repro.traces import datasets
from repro.web.client import ClosedLoopDriver

SYSTEMS = ("press", "cc-basic", "cc-sched", "cc-kmc")


@lru_cache(maxsize=None)
def _workload():
    return datasets.scaled("rutgers", 0.005, num_requests=120)


def _config(system, num_nodes, faults=None):
    return ExperimentConfig(
        system=system,
        trace=_workload(),
        num_nodes=num_nodes,
        mem_mb_per_node=0.25,
        num_clients=6,
        seed=0,
        faults=faults if faults is not None else FaultPlan.none(),
    )


@lru_cache(maxsize=None)
def _horizon_ms(system, num_nodes):
    """Fault-free run length: the window a plan should spread over."""
    result = run_experiment(_config(system, num_nodes))
    return result.workload.total_ms


def _plan(plan_seed, system, num_nodes, crashes_per_node=1.5):
    return FaultPlan.random(
        plan_seed,
        _horizon_ms(system, num_nodes),
        num_nodes,
        crashes_per_node=crashes_per_node,
        link_drops=1,
        disk_stalls=1,
    )


@settings(max_examples=8, deadline=None)
@given(
    system=st.sampled_from(SYSTEMS),
    num_nodes=st.integers(min_value=2, max_value=5),
    plan_seed=st.integers(min_value=0, max_value=10_000),
)
def test_every_request_terminates(system, num_nodes, plan_seed):
    plan = _plan(plan_seed, system, num_nodes)
    cfg = _config(system, num_nodes, faults=plan)
    result = run_experiment(cfg)  # raises on any deadlocked client
    wl = result.workload
    measured = cfg.trace.num_requests - int(
        cfg.trace.num_requests * cfg.warmup_frac
    )
    # Served + failed covers the whole measured stream: nothing hung,
    # nothing vanished.
    assert wl.measured_requests + wl.failed_requests == measured
    assert wl.failed_requests <= measured
    fc = result.fault_counters
    assert fc.get("node_crashes", 0) == sum(
        1 for e in plan.events if e.kind == "crash"
    )


@settings(max_examples=8, deadline=None)
@given(
    system=st.sampled_from(["cc-basic", "cc-sched", "cc-kmc"]),
    num_nodes=st.integers(min_value=2, max_value=5),
    plan_seed=st.integers(min_value=0, max_value=10_000),
)
def test_invariants_hold_at_every_fault_boundary(system, num_nodes, plan_seed):
    plan = _plan(plan_seed, system, num_nodes)
    cfg = _config(system, num_nodes, faults=plan)
    sim = Simulator()
    faults = FaultInjector(plan, cfg.params, seed=cfg.seed)
    cluster, service = _build_cc(cfg, sim, variant(system), faults=faults)
    faults.install(sim, cluster)
    boundaries = []

    def check(ev):
        service.layer.check_invariants()  # raises on inconsistency
        boundaries.append(ev.kind)

    faults.fault_listeners.append(check)
    driver = ClosedLoopDriver(
        sim, cluster, service, cfg.trace,
        num_clients=cfg.num_clients, warmup_frac=cfg.warmup_frac,
        faults=faults,
    )
    driver.run()
    assert len(boundaries) == len(plan)  # every event applied + checked
    service.layer.check_invariants()     # and the final state is clean


@settings(max_examples=4, deadline=None)
@given(
    system=st.sampled_from(SYSTEMS),
    plan_seed=st.integers(min_value=0, max_value=10_000),
)
def test_identical_seed_and_plan_replay_identically(system, plan_seed):
    num_nodes = 4
    plan = _plan(plan_seed, system, num_nodes)
    cfg = _config(system, num_nodes, faults=plan)

    def digest():
        obs = Observability(trace=True)
        run_experiment(cfg, obs=obs)
        return obs.tracer.digest(), obs.registry.to_json()

    assert digest() == digest()


def test_press_survives_total_entry_pressure():
    """A pinned heavy schedule on PRESS: with every file replicated on
    every disk, the entry node always has a local fallback — failures
    come only from the entry node itself dying, never from a hang."""
    plan = _plan(99, "press", 3, crashes_per_node=3.0)
    result = run_experiment(_config("press", 3, faults=plan))
    wl = result.workload
    assert wl.measured_requests + wl.failed_requests == 90
    assert result.fault_counters.get("node_crashes", 0) > 0
