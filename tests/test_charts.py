"""Tests for the terminal chart renderers."""

import pytest

from repro.experiments.charts import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart(
            [1, 2, 4, 8],
            {"a": [0, 1, 2, 3], "b": [3, 2, 1, 0]},
            width=20,
            height=8,
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "*" in out and "o" in out  # two series glyphs
        assert "* a" in out and "o b" in out  # legend
        assert "1" in lines[-2] and "8" in lines[-2]  # x ticks

    def test_y_range_labels(self):
        out = line_chart([0, 1], {"s": [0.0, 100.0]}, width=10, height=5)
        assert "100" in out and "0" in out

    def test_flat_series(self):
        out = line_chart([0, 1, 2], {"s": [5.0, 5.0, 5.0]})
        assert "*" in out

    def test_single_point(self):
        out = line_chart([1], {"s": [2.0]}, width=10, height=4)
        assert "*" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})

    def test_empty_x(self):
        with pytest.raises(ValueError):
            line_chart([], {"s": []})

    def test_no_series(self):
        with pytest.raises(ValueError):
            line_chart([1], {})

    def test_axis_labels(self):
        out = line_chart([1, 2], {"s": [1, 2]}, y_label="req/s",
                         x_label="MB/node")
        assert "req/s" in out and "MB/node" in out

    def test_deterministic(self):
        args = ([1, 2, 3], {"a": [3.0, 1.0, 2.0]})
        assert line_chart(*args) == line_chart(*args)


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["press", "cc-kmc"], [100.0, 80.0], width=20)
        lines = out.splitlines()
        assert lines[0].strip().startswith("press")
        assert lines[0].count("#") > lines[1].count("#")
        assert "100" in lines[0] and "80" in lines[1]

    def test_zero_value_no_bar(self):
        out = bar_chart(["x", "y"], [0.0, 1.0])
        assert out.splitlines()[0].count("#") == 0

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="Chart")
        assert out.splitlines()[0] == "Chart"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
