"""Tests for the experiments CLI."""

import numpy as np
import pytest

from repro.experiments import cli
from repro.obs.schema import OUTPUT_SCHEMA_VERSION
from repro.traces import Trace, TraceSpec


def tiny_trace(n_files=8, n_requests=150, seed=2):
    rng = np.random.default_rng(seed)
    return Trace(
        spec=TraceSpec("tiny", n_files, n_requests, 16.0),
        sizes_kb=np.full(n_files, 16.0),
        requests=rng.integers(0, n_files, size=n_requests),
    )


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "a6" in out

    def test_no_args_lists(self, capsys):
        assert cli.main([]) == 0
        assert "artifacts:" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert cli.main(["fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_table1_renders(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "# table1 #" in out

    def test_simulation_artifact_with_tiny_workload(self, capsys, monkeypatch):
        from repro.experiments import defaults

        monkeypatch.setattr(defaults, "workload", lambda name: tiny_trace())
        monkeypatch.setattr(defaults, "NUM_CLIENTS", 4)
        monkeypatch.setattr(
            defaults, "memory_points_mb", lambda points=None: [0.125]
        )
        assert cli.main(["fig6a"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out

    def test_artifact_registry_complete(self):
        expected = {
            "table1", "table2",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b",
            "fig_ring",
            "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10",
        }
        assert set(cli.ARTIFACTS) == expected


class TestRunAndAnalyzeCli:
    @pytest.fixture()
    def tiny_defaults(self, monkeypatch):
        from repro.experiments import defaults

        monkeypatch.setattr(defaults, "workload", lambda name: tiny_trace())
        monkeypatch.setattr(defaults, "NUM_CLIENTS", 4)

    def test_run_profile_prints_report(self, capsys, tiny_defaults, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert cli.main([
            "run", "--profile", "--mem-mb", "0.25",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "critical-path profile" in out
        assert "total = mean response" in out
        assert "binding resource:" in out
        assert trace.exists() and metrics.exists()

    def test_analyze_all_outputs(self, capsys, tiny_defaults, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert cli.main([
            "run", "--profile", "--mem-mb", "0.25",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()

        perfetto = tmp_path / "perfetto.json"
        ts_out = tmp_path / "ts.json"
        assert cli.main([
            "analyze", str(trace), str(metrics),
            "--report", "--perfetto", str(perfetto),
            "--timeseries-out", str(ts_out), "--top", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "binding resource:" in out
        assert "top 2 slowest" in out
        # Both exports are valid JSON with the expected top-level shape.
        import json

        doc = json.loads(perfetto.read_text())
        assert "traceEvents" in doc and doc["traceEvents"]
        ts = json.loads(ts_out.read_text())
        assert ts["windows"]

    def test_analyze_defaults_to_report(self, capsys, tiny_defaults, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert cli.main([
            "run", "--profile", "--mem-mb", "0.25", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert cli.main(["analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "dominant phase group" in out  # no metrics file given

    def test_run_cachestats_dumps_and_summarizes(
        self, capsys, tiny_defaults, tmp_path
    ):
        dump = tmp_path / "cachescope.jsonl"
        assert cli.main([
            "run", "--mem-mb", "0.25", "--cachestats", str(dump),
        ]) == 0
        out = capsys.readouterr().out
        assert "duplicate share" in out and "violations=" in out
        assert dump.exists()
        import json

        first = json.loads(dump.read_text().splitlines()[0])
        assert first["kind"] == "summary"
        assert "violations" in first["totals"]

    def test_analyze_cache_renders_report(
        self, capsys, tiny_defaults, tmp_path
    ):
        dump = tmp_path / "cachescope.jsonl"
        assert cli.main([
            "run", "--mem-mb", "0.25", "--cachestats", str(dump),
        ]) == 0
        capsys.readouterr()
        # --cache works without a TRACE argument.
        assert cli.main(["analyze", "--cache", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "cache behavior (end of run)" in out
        assert "master-evicted-while-replica-held" in out

    def test_analyze_requires_trace_or_cache(self, capsys):
        assert cli.main(["analyze"]) == 2
        assert "TRACE" in capsys.readouterr().err

    def test_analyze_cache_missing_file_errors(self, capsys):
        assert cli.main(["analyze", "--cache", "/nonexistent.jsonl"]) == 2
        assert "cannot read cache dump" in capsys.readouterr().err

    def test_analyze_json_stdout_and_file(
        self, capsys, tiny_defaults, tmp_path
    ):
        import json

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert cli.main([
            "run", "--mem-mb", "0.25",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()

        assert cli.main([
            "analyze", str(trace), str(metrics), "--json", "-",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert doc["kind"] == "attribution"
        assert doc["requests"] > 0
        assert "phase_means_ms" in doc and "by_class" in doc
        assert doc["binding_resource"] is not None
        # --json alone suppresses the default text report.
        assert "critical-path attribution" not in out

        json_out = tmp_path / "attr.json"
        assert cli.main([
            "analyze", str(trace), "--json", str(json_out),
        ]) == 0
        doc = json.loads(json_out.read_text())
        assert doc["binding_resource"] is None  # no metrics file given

    def test_verbose_flag_stripped(self, capsys):
        assert cli.main(["-v", "list"]) == 0
        assert "artifacts:" in capsys.readouterr().out

    def test_run_without_profile_has_no_report(
        self, capsys, tiny_defaults, tmp_path
    ):
        assert cli.main(["run", "--mem-mb", "0.25"]) == 0
        assert "critical-path profile" not in capsys.readouterr().out

    def test_run_with_slo_spec(self, capsys, tiny_defaults, tmp_path):
        import json

        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({
            "window_ms": 10.0, "latency": {"p95_ms": 0.001},
        }))
        slo_out = tmp_path / "slo-report.json"
        trace = tmp_path / "trace.jsonl"
        assert cli.main([
            "run", "--mem-mb", "0.25", "--slo", str(spec),
            "--slo-out", str(slo_out), "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO evaluation" in out
        assert "alerts" in out
        doc = json.loads(slo_out.read_text())
        assert doc["kind"] == "slo"
        assert doc["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert doc["totals"]["alert_count"] >= 1
        # The alerts were emitted into the dumped trace too.
        alert_lines = [
            json.loads(line) for line in trace.read_text().splitlines()
            if json.loads(line)["name"] == "alert"
        ]
        assert len(alert_lines) == doc["totals"]["alert_count"]

    def test_run_bad_slo_spec_errors(self, capsys, tiny_defaults, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text('{"window_ms": -1.0}')
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "--mem-mb", "0.25", "--slo", str(spec)])
        assert exc.value.code == 2
        assert "SLO spec" in capsys.readouterr().err

    def test_slo_out_requires_slo(self, capsys, tiny_defaults, tmp_path):
        with pytest.raises(SystemExit) as exc:
            cli.main([
                "run", "--mem-mb", "0.25",
                "--slo-out", str(tmp_path / "r.json"),
            ])
        assert exc.value.code == 2

    def test_analyze_critical(self, capsys, tiny_defaults, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert cli.main([
            "run", "--profile", "--mem-mb", "0.25", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        crit_out = tmp_path / "crit.json"
        assert cli.main([
            "analyze", str(trace), "--critical",
            "--critical-out", str(crit_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "critical-path profile" in out
        assert "total = mean critical path" in out
        # --critical alone suppresses the default attribution report.
        assert "binding resource:" not in out
        doc = json.loads(crit_out.read_text())
        assert doc["kind"] == "critical"
        assert doc["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert doc["requests"] > 0

    def test_analyze_diff(self, capsys, tiny_defaults, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert cli.main([
            "run", "--profile", "--mem-mb", "0.25", "--trace", str(trace),
        ]) == 0
        attr = tmp_path / "attr.json"
        assert cli.main(["analyze", str(trace), "--json", str(attr)]) == 0
        capsys.readouterr()
        # Attribution JSON on one side, raw trace JSONL on the other.
        diff_out = tmp_path / "diff.json"
        assert cli.main([
            "analyze", "diff", str(attr), str(trace),
            "--json", str(diff_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "conservation check" in out
        assert "mean response unchanged" in out
        doc = json.loads(diff_out.read_text())
        assert doc["kind"] == "diff"
        assert doc["delta_ms"] == pytest.approx(0.0, abs=1e-9)
        assert abs(doc["conservation_residual_ms"]) < 1e-9

    def test_analyze_diff_bad_input(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all {")
        assert cli.main(["analyze", "diff", str(bad), str(bad)]) == 2
        assert "cannot read input" in capsys.readouterr().err


class TestChaosCli:
    @pytest.fixture()
    def tiny_defaults(self, monkeypatch):
        from repro.experiments import defaults

        monkeypatch.setattr(defaults, "workload", lambda name: tiny_trace())
        monkeypatch.setattr(defaults, "NUM_CLIENTS", 4)

    def test_chaos_generates_runs_and_archives(
        self, capsys, tiny_defaults, tmp_path
    ):
        plan_out = tmp_path / "plan.json"
        trace = tmp_path / "chaos.jsonl"
        metrics = tmp_path / "metrics.json"
        assert cli.main([
            "chaos", "--system", "cc-kmc", "--nodes", "3",
            "--mem-mb", "0.25", "--crashes-per-node", "2",
            "--link-drops", "1", "--disk-stalls", "1",
            "--plan-out", str(plan_out),
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out and "fault-free" in out
        assert plan_out.exists() and trace.exists() and metrics.exists()

    def test_chaos_replays_archived_plan(self, capsys, tiny_defaults, tmp_path):
        plan_out = tmp_path / "plan.json"
        assert cli.main([
            "chaos", "--system", "press", "--nodes", "3",
            "--mem-mb", "0.25", "--plan-out", str(plan_out),
        ]) == 0
        capsys.readouterr()
        assert cli.main([
            "chaos", "--system", "press", "--nodes", "3",
            "--mem-mb", "0.25", "--plan", str(plan_out),
        ]) == 0
        assert "replaying" in capsys.readouterr().out

    def test_chaos_missing_plan_file_errors(self, capsys, tiny_defaults):
        assert cli.main([
            "chaos", "--plan", "/nonexistent/plan.json",
        ]) == 2
        assert "plan" in capsys.readouterr().err.lower()

    def test_chaos_profile_attributes_fault_time(
        self, capsys, tiny_defaults, tmp_path
    ):
        assert cli.main([
            "chaos", "--system", "cc-kmc", "--nodes", "3",
            "--mem-mb", "0.25", "--crashes-per-node", "2", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical-path profile" in out
