"""Tests for the experiments CLI."""

import numpy as np
import pytest

from repro.experiments import cli
from repro.traces import Trace, TraceSpec


def tiny_trace(n_files=8, n_requests=150, seed=2):
    rng = np.random.default_rng(seed)
    return Trace(
        spec=TraceSpec("tiny", n_files, n_requests, 16.0),
        sizes_kb=np.full(n_files, 16.0),
        requests=rng.integers(0, n_files, size=n_requests),
    )


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "a6" in out

    def test_no_args_lists(self, capsys):
        assert cli.main([]) == 0
        assert "artifacts:" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert cli.main(["fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_table1_renders(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "# table1 #" in out

    def test_simulation_artifact_with_tiny_workload(self, capsys, monkeypatch):
        from repro.experiments import defaults, figures

        monkeypatch.setattr(defaults, "workload", lambda name: tiny_trace())
        monkeypatch.setattr(defaults, "NUM_CLIENTS", 4)
        monkeypatch.setattr(
            defaults, "memory_points_mb", lambda points=None: [0.125]
        )
        assert cli.main(["fig6a"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out

    def test_artifact_registry_complete(self):
        expected = {
            "table1", "table2",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b",
            "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9",
        }
        assert set(cli.ARTIFACTS) == expected
