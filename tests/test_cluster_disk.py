"""Unit tests for the disk model: seek accounting and scheduling."""

import pytest

from repro.cluster import FIFO, SCAN, Disk, DiskRequest
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator


def run_requests(requests, discipline, params=DEFAULT_PARAMS, stagger=0.0):
    """Submit all requests (optionally staggered) and run to completion."""
    sim = Simulator()
    disk = Disk(sim, "d", params, discipline=discipline)
    completions = []
    t = 0.0
    for req in requests:
        def submit(r=req):
            disk.submit(r).callbacks.append(
                lambda e: completions.append((sim.now, e.value))
            )
        if stagger:
            sim.call_at(t, submit)
            t += stagger
        else:
            submit()
    sim.run()
    return sim, disk, completions


def seq_requests(file_id, nextents, blocks_per_extent=8, block_kb=8.0):
    """A file read as one run per extent."""
    out = []
    for e in range(nextents):
        out.append(
            DiskRequest(
                file_id=file_id,
                extent=e,
                start_block=e * blocks_per_extent,
                nblocks=blocks_per_extent,
                size_kb=blocks_per_extent * block_kb,
            )
        )
    return out


class TestDiskRequest:
    def test_end_block(self):
        r = DiskRequest(1, 0, 4, 4, 32.0)
        assert r.end_block == 8

    def test_invalid_nblocks(self):
        with pytest.raises(ValueError):
            DiskRequest(1, 0, 0, 0, 8.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DiskRequest(1, 0, 0, 1, 0.0)

    def test_sort_key_order(self):
        a = DiskRequest(1, 0, 0, 1, 8.0)
        b = DiskRequest(1, 1, 8, 1, 8.0)
        c = DiskRequest(2, 0, 0, 1, 8.0)
        assert a.sort_key() < b.sort_key() < c.sort_key()


class TestSeekAccounting:
    def test_first_access_pays_both_seeks(self):
        sim, disk, _ = run_requests([DiskRequest(1, 0, 0, 1, 8.0)], FIFO)
        d = DEFAULT_PARAMS.disk
        expected = d.seek_ms + d.metadata_seek_ms + 8.0 * d.transfer_per_kb_ms
        assert sim.now == pytest.approx(expected)
        assert disk.seeks == 1 and disk.contiguous_hits == 0

    def test_continuation_within_extent_is_contiguous(self):
        reqs = [DiskRequest(1, 0, 0, 4, 32.0), DiskRequest(1, 0, 4, 4, 32.0)]
        _, disk, _ = run_requests(reqs, FIFO)
        assert disk.seeks == 1 and disk.contiguous_hits == 1

    def test_next_extent_pays_seek(self):
        # Extents are only contiguous internally (the paper's pre-allocation
        # guarantee), so crossing an extent boundary costs a fresh seek.
        reqs = seq_requests(1, nextents=2)
        _, disk, _ = run_requests(reqs, FIFO)
        assert disk.seeks == 2 and disk.contiguous_hits == 0

    def test_different_file_pays_seek(self):
        reqs = [DiskRequest(1, 0, 0, 4, 32.0), DiskRequest(2, 0, 0, 4, 32.0)]
        _, disk, _ = run_requests(reqs, FIFO)
        assert disk.seeks == 2

    def test_interleaving_under_fifo_all_seeks(self):
        # Two streams, runs interleaved a-x-b-y: every run seeks (the
        # paper's "12 seeks instead of 4" arithmetic).
        reqs = [
            DiskRequest(1, 0, 0, 2, 16.0),
            DiskRequest(2, 0, 0, 2, 16.0),
            DiskRequest(1, 0, 2, 2, 16.0),
            DiskRequest(2, 0, 2, 2, 16.0),
        ]
        _, disk, _ = run_requests(reqs, FIFO)
        assert disk.seeks == 4 and disk.contiguous_hits == 0

    def test_scan_undoes_interleaving(self):
        reqs = [
            DiskRequest(1, 0, 0, 2, 16.0),
            DiskRequest(2, 0, 0, 2, 16.0),
            DiskRequest(1, 0, 2, 2, 16.0),
            DiskRequest(2, 0, 2, 2, 16.0),
        ]
        _, disk, _ = run_requests(reqs, SCAN)
        # SCAN serves file 1 fully (seek + contiguous) then file 2
        # (seek + contiguous): 2 seeks instead of 4.
        assert disk.seeks == 2 and disk.contiguous_hits == 2

    def test_scan_faster_than_fifo_on_interleaved_streams(self):
        reqs = []
        for blk in range(0, 8, 2):
            reqs.append(DiskRequest(1, 0, blk, 2, 16.0))
            reqs.append(DiskRequest(2, 0, blk, 2, 16.0))
        sim_f, _, _ = run_requests(list(reqs), FIFO)
        sim_s, _, _ = run_requests(list(reqs), SCAN)
        assert sim_s.now < sim_f.now


class TestScanDiscipline:
    def test_sweep_order_by_file_then_extent(self):
        reqs = [
            DiskRequest(2, 0, 0, 1, 8.0),
            DiskRequest(1, 1, 8, 1, 8.0),
            DiskRequest(1, 0, 0, 1, 8.0),
        ]
        # Stagger so all arrive while the first is in service.
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=SCAN)
        served = []
        # Seed the disk with a long run so the rest queue up.
        disk.submit(DiskRequest(0, 0, 0, 8, 64.0)).callbacks.append(
            lambda e: served.append(e.value.file_id)
        )
        for r in reqs:
            disk.submit(r).callbacks.append(
                lambda e: served.append((e.value.file_id, e.value.extent))
            )
        sim.run()
        assert served == [0, (1, 0), (1, 1), (2, 0)]

    def test_scan_prefers_head_continuation(self):
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=SCAN)
        served = []
        disk.submit(DiskRequest(5, 0, 0, 2, 16.0)).callbacks.append(
            lambda e: served.append("first")
        )
        # Queued while first in service: a lower-keyed request and the
        # continuation of file 5.  Continuation must win.
        disk.submit(DiskRequest(1, 0, 0, 2, 16.0)).callbacks.append(
            lambda e: served.append("file1")
        )
        disk.submit(DiskRequest(5, 0, 2, 2, 16.0)).callbacks.append(
            lambda e: served.append("cont")
        )
        sim.run()
        assert served == ["first", "cont", "file1"]

    def test_scan_serves_immediate_resubmission_contiguously(self):
        # A stream that reads its blocks one at a time (submit block k+1
        # the instant block k completes) must keep head contiguity under
        # SCAN even with a competing request queued: the post-completion
        # dispatch is deferred one kernel step so the resubmission wins.
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=SCAN)

        def stream():
            for blk in range(3):
                yield disk.submit(DiskRequest(1, 0, blk, 1, 8.0))

        p = sim.process(stream())
        # Competing block from another file arrives mid-service of the
        # stream's first block.
        sim.call_after(1.0, disk.submit, DiskRequest(2, 0, 0, 1, 8.0))
        sim.run()
        assert p.ok
        # File 1's three blocks: 1 seek + 2 contiguous; file 2: 1 seek.
        assert disk.contiguous_hits == 2
        assert disk.seeks == 2

    def test_fifo_immediate_resubmission_interleaves(self):
        # Under FIFO the same pattern interleaves: the queued competitor
        # is served between the stream's blocks, costing seeks.
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=FIFO)

        def stream():
            for blk in range(3):
                yield disk.submit(DiskRequest(1, 0, blk, 1, 8.0))

        sim.process(stream())
        sim.call_after(1.0, disk.submit, DiskRequest(2, 0, 0, 1, 8.0))
        sim.run()
        assert disk.seeks >= 3  # competitor breaks the stream once

    def test_scan_wraps_to_lowest_key(self):
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=SCAN)
        served = []
        disk.submit(DiskRequest(9, 0, 0, 1, 8.0)).callbacks.append(
            lambda e: served.append(9)
        )
        disk.submit(DiskRequest(3, 0, 0, 1, 8.0)).callbacks.append(
            lambda e: served.append(3)
        )
        sim.run()
        # Head at file 9; nothing >= head, so wrap to file 3.
        assert served == [9, 3]


class TestDiskStats:
    def test_completed_and_kb(self):
        reqs = seq_requests(1, nextents=3)
        _, disk, _ = run_requests(reqs, SCAN)
        assert disk.completed == 3
        assert disk.reads_kb == pytest.approx(3 * 64.0)

    def test_utilization_is_one_while_backlogged(self):
        reqs = seq_requests(1, nextents=4)
        sim, disk, _ = run_requests(reqs, SCAN)
        assert disk.utilization.utilization(sim.now) == pytest.approx(1.0)

    def test_reset_stats(self):
        reqs = seq_requests(1, nextents=2)
        sim, disk, _ = run_requests(reqs, SCAN)
        disk.reset_stats()
        assert disk.seeks == 0 and disk.reads_kb == 0.0
        assert disk.service_stats.n == 0

    def test_queue_limit_drop(self):
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=FIFO, queue_limit=1)
        disk.submit(DiskRequest(1, 0, 0, 1, 8.0))   # in service
        disk.submit(DiskRequest(1, 0, 1, 1, 8.0))   # queued
        dropped = disk.submit(DiskRequest(1, 0, 2, 1, 8.0))
        assert dropped.triggered and not dropped.ok

    def test_invalid_discipline(self):
        with pytest.raises(ValueError):
            Disk(Simulator(), "d", DEFAULT_PARAMS, discipline="lifo")

    def test_load_property(self):
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS)
        disk.submit(DiskRequest(1, 0, 0, 1, 8.0))
        disk.submit(DiskRequest(1, 0, 1, 1, 8.0))
        assert disk.load == 2 and disk.queue_length == 1
        sim.run()
        assert disk.load == 0
