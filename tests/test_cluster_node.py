"""Unit tests for Node, Network, Router, RoundRobinDNS, Cluster."""

import pytest

from repro.cluster import Cluster, DiskRequest, Network, Node, RoundRobinDNS, Router
from repro.params import DEFAULT_PARAMS, SimParams
from repro.sim import Simulator


class TestNode:
    def test_components_exist(self):
        sim = Simulator()
        n = Node(sim, 0, DEFAULT_PARAMS)
        assert n.cpu.name == "node0.cpu"
        assert n.nic.name == "node0.nic"
        assert n.bus.name == "node0.bus"
        assert n.disk.name == "node0.disk"

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Node(Simulator(), -1, DEFAULT_PARAMS)

    def test_load_combines_cpu_and_disk(self):
        sim = Simulator()
        n = Node(sim, 0, DEFAULT_PARAMS)
        n.cpu.submit(5.0)
        n.disk.submit(DiskRequest(1, 0, 0, 1, 8.0))
        assert n.load == 2
        sim.run()
        assert n.load == 0

    def test_utilization_snapshot_keys(self):
        sim = Simulator()
        n = Node(sim, 0, DEFAULT_PARAMS)
        u = n.utilization()
        assert set(u) == {"cpu", "nic", "bus", "disk"}
        assert all(v == 0.0 for v in u.values())

    def test_reset_stats(self):
        sim = Simulator()
        n = Node(sim, 0, DEFAULT_PARAMS)
        n.cpu.submit(10.0)
        sim.run()
        n.reset_stats()
        sim.timeout(10.0)
        sim.run()
        assert n.utilization()["cpu"] == pytest.approx(0.0)


class TestNetwork:
    def test_transfer_time_includes_nic_and_latency(self):
        sim = Simulator()
        params = DEFAULT_PARAMS
        a, b = Node(sim, 0, params), Node(sim, 1, params)
        net = Network(sim, params)
        done = sim.process(net.transfer(a, b, 64.0))
        sim.run()
        expected = params.network.transfer_ms(64.0) + params.network.latency_ms
        assert sim.now == pytest.approx(expected)
        assert done.processed

    def test_loopback_is_free(self):
        sim = Simulator()
        a = Node(sim, 0, DEFAULT_PARAMS)
        net = Network(sim, DEFAULT_PARAMS)
        sim.process(net.transfer(a, a, 64.0))
        sim.run()
        assert sim.now == 0.0

    def test_external_source_latency_only(self):
        sim = Simulator()
        b = Node(sim, 1, DEFAULT_PARAMS)
        net = Network(sim, DEFAULT_PARAMS)
        sim.process(net.transfer(None, b, 1.0))
        sim.run()
        assert sim.now == pytest.approx(DEFAULT_PARAMS.network.latency_ms)

    def test_traffic_accounting(self):
        sim = Simulator()
        a, b = Node(sim, 0, DEFAULT_PARAMS), Node(sim, 1, DEFAULT_PARAMS)
        net = Network(sim, DEFAULT_PARAMS)
        sim.process(net.transfer(a, b, 10.0))
        sim.process(net.transfer(a, b, 20.0))
        sim.run()
        assert net.bytes_kb == pytest.approx(30.0)
        assert net.messages == 2
        net.reset_stats()
        assert net.bytes_kb == 0.0 and net.messages == 0

    def test_negative_size_rejected(self):
        sim = Simulator()
        net = Network(sim, DEFAULT_PARAMS)
        p = sim.process(net.transfer(None, None, -1.0))
        sim.run()
        # The generator raises on first resume; the process event fails.
        assert not p.ok and isinstance(p.value, ValueError)

    def test_nic_serializes_sends(self):
        sim = Simulator()
        params = DEFAULT_PARAMS
        a, b = Node(sim, 0, params), Node(sim, 1, params)
        net = Network(sim, params)
        sim.process(net.transfer(a, b, 125.0))
        sim.process(net.transfer(a, b, 125.0))
        sim.run()
        one = params.network.transfer_ms(125.0)
        # Two sends through one NIC serialize; latency overlaps the 2nd send.
        assert sim.now == pytest.approx(2 * one + params.network.latency_ms)


class TestRouterAndDNS:
    def test_router_forward_cost(self):
        sim = Simulator()
        r = Router(sim, DEFAULT_PARAMS)
        r.forward()
        sim.run()
        assert sim.now == pytest.approx(DEFAULT_PARAMS.router.forward_ms)

    def test_rr_dns_cycles(self):
        sim = Simulator()
        nodes = [Node(sim, i, DEFAULT_PARAMS) for i in range(3)]
        dns = RoundRobinDNS(nodes)
        picks = [dns.pick().node_id for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_rr_dns_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinDNS([])

    def test_rr_dns_nodes_property(self):
        sim = Simulator()
        nodes = [Node(sim, i, DEFAULT_PARAMS) for i in range(2)]
        assert len(RoundRobinDNS(nodes).nodes) == 2


class TestCluster:
    def test_builds_n_nodes(self):
        c = Cluster(Simulator(), DEFAULT_PARAMS, 8)
        assert len(c) == 8
        assert [n.node_id for n in c.nodes] == list(range(8))

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(Simulator(), DEFAULT_PARAMS, 0)

    def test_utilization_aggregates(self):
        sim = Simulator()
        c = Cluster(sim, DEFAULT_PARAMS, 2)
        c.nodes[0].cpu.submit(10.0)
        sim.run()
        u = c.utilization()
        assert u["cpu"] == pytest.approx(0.5)
        assert c.max_utilization()["cpu"] == pytest.approx(1.0)

    def test_reset_stats_propagates(self):
        sim = Simulator()
        c = Cluster(sim, DEFAULT_PARAMS, 2)
        c.nodes[0].cpu.submit(10.0)
        sim.run()
        c.reset_stats()
        sim.timeout(5.0)
        sim.run()
        assert c.utilization()["cpu"] == pytest.approx(0.0)

    def test_disk_discipline_applied(self):
        c = Cluster(Simulator(), DEFAULT_PARAMS, 2, disk_discipline="fifo")
        assert all(n.disk.discipline == "fifo" for n in c.nodes)


class TestParams:
    def test_blocks_of(self):
        p = SimParams()
        assert p.blocks_of(1.0) == 1
        assert p.blocks_of(8.0) == 1
        assert p.blocks_of(8.1) == 2
        assert p.blocks_of(64.0) == 8

    def test_extents_of(self):
        p = SimParams()
        assert p.extents_of(64.0) == 1
        assert p.extents_of(65.0) == 2

    def test_disk_read_ms_contiguous_cheaper(self):
        p = SimParams()
        assert p.disk.read_ms(64.0, contiguous=True) < p.disk.read_ms(
            64.0, contiguous=False
        )

    def test_with_overrides_is_copy(self):
        p = SimParams()
        q = p.with_overrides(block_kb=16)
        assert q.block_kb == 16 and p.block_kb == 8

    def test_cpu_helpers(self):
        p = SimParams()
        assert p.cpu.serve_ms(115.0) == pytest.approx(p.cpu.serve_fixed_ms + 1.0)
        assert p.cpu.file_request_ms(3) == pytest.approx(
            p.cpu.file_request_fixed_ms + 3 * p.cpu.file_request_per_block_ms
        )

    def test_lan_params_scaling(self):
        from repro.params import lan_params

        slow = lan_params(100)
        fast = lan_params(10000)
        assert slow.bandwidth_kb_per_ms < fast.bandwidth_kb_per_ms
        assert slow.latency_ms > fast.latency_ms

    def test_hardware_configs_registry(self):
        from repro.params import HARDWARE_CONFIGS

        assert "paper" in HARDWARE_CONFIGS
        assert HARDWARE_CONFIGS["lan-100mb"].network.bandwidth_kb_per_ms < 50
