"""Tests for the hint-based directory (ablation A1)."""

import pytest

from repro.cache import BlockId
from repro.core import CoopCacheConfig, CoopCacheService, HintDirectory
from repro.core.hints import HINT_TRAFFIC_OVERHEAD
from repro.sim.rng import stream


def b(i):
    return BlockId(0, i)


class TestHintDirectory:
    def test_perfect_accuracy_always_truthful(self):
        d = HintDirectory(1.0, 4, stream(0, "h"))
        d.set_master(b(1), 2)
        for _ in range(50):
            assert d.route_lookup(b(1)) == 2
            assert d.route_lookup(b(2)) is None
        assert d.wrong_hints == 0
        assert d.observed_accuracy == 1.0

    def test_zero_accuracy_never_truthful(self):
        d = HintDirectory(0.0, 4, stream(0, "h"))
        d.set_master(b(1), 2)
        for _ in range(50):
            assert d.route_lookup(b(1)) != 2
        assert d.wrong_hints == d.lookups == 100 - 50  # only the loop above

    def test_zero_accuracy_uncached_points_somewhere(self):
        d = HintDirectory(0.0, 4, stream(0, "h"))
        for _ in range(20):
            got = d.route_lookup(b(9))
            assert got is not None and 0 <= got < 4

    def test_observed_accuracy_near_nominal(self):
        d = HintDirectory(0.9, 8, stream(1, "h"))
        d.set_master(b(1), 3)
        for _ in range(2000):
            d.route_lookup(b(1))
        assert d.observed_accuracy == pytest.approx(0.9, abs=0.03)

    def test_truth_layer_unaffected(self):
        d = HintDirectory(0.0, 4, stream(0, "h"))
        d.set_master(b(1), 2)
        assert d.lookup(b(1)) == 2  # consistency ops stay exact

    def test_single_node_wrong_hint_degrades_to_none(self):
        d = HintDirectory(0.0, 1, stream(0, "h"))
        d.set_master(b(1), 0)
        # With one node there is no "other node" to mis-point at.
        assert d.route_lookup(b(1)) in (None, 0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            HintDirectory(1.5, 4, stream(0, "h"))
        with pytest.raises(ValueError):
            HintDirectory(0.5, 0, stream(0, "h"))


class TestHintedMiddleware:
    def make(self, accuracy):
        cfg = CoopCacheConfig(directory="hints", hint_accuracy=accuracy)
        return CoopCacheService(
            file_sizes_kb=[16.0] * 8,
            num_nodes=4,
            mem_mb_per_node=1.0,
            config=cfg,
            seed=7,
        )

    def run_workload(self, svc, n=80):
        import random

        rnd = random.Random(3)

        def driver():
            for _ in range(n):
                yield svc.submit(
                    svc.layer.read(svc.node(rnd.randrange(4)), rnd.randrange(8))
                )

        svc.submit(driver())
        svc.run()

    def test_hint_service_uses_hint_directory(self):
        svc = self.make(0.9)
        assert isinstance(svc.layer.directory, HintDirectory)

    def test_perfect_hints_match_perfect_directory_hit_rate(self):
        hinted = self.make(1.0)
        self.run_workload(hinted)
        perfect = CoopCacheService(
            file_sizes_kb=[16.0] * 8, num_nodes=4, mem_mb_per_node=1.0, seed=7
        )
        self.run_workload(perfect)
        assert hinted.layer.hit_rates() == perfect.layer.hit_rates()

    def test_wrong_hints_bounce_to_disk(self):
        svc = self.make(0.5)
        self.run_workload(svc)
        c = svc.layer.counters
        # Stale locations produce peer misses that fall back to disk.
        assert c.get("peer_miss") > 0
        svc.layer.check_invariants()

    def test_lower_accuracy_means_lower_remote_hit_rate(self):
        high = self.make(1.0)
        self.run_workload(high)
        low = self.make(0.3)
        self.run_workload(low)
        assert (
            low.layer.hit_rates()["remote"] <= high.layer.hit_rates()["remote"]
        )

    def test_hint_messages_carry_overhead(self):
        from repro.core.middleware import REQUEST_MSG_KB

        svc = self.make(0.9)
        assert svc.layer._msg_kb == pytest.approx(
            REQUEST_MSG_KB * (1 + HINT_TRAFFIC_OVERHEAD)
        )

    def test_invariants_hold_under_hints(self):
        svc = self.make(0.7)
        self.run_workload(svc, n=150)
        svc.layer.check_invariants()
