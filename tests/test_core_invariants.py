"""Property-based stress tests: protocol invariants under random workloads.

Whatever the access pattern, cluster shape, cache size, policy, or
concurrency level, at every quiescent point:

* no block has two master copies;
* the directory agrees with the caches about every resident master;
* no cache exceeds its capacity;
* block-access accounting (local + remote + disk + coalesced) matches the
  number of block accesses issued.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CoopCacheConfig, CoopCacheService


workload_strategy = st.fixed_dictionaries(
    {
        "num_nodes": st.integers(min_value=1, max_value=6),
        "num_files": st.integers(min_value=1, max_value=12),
        "file_kb": st.sampled_from([4.0, 8.0, 20.0, 64.0, 100.0]),
        "cache_blocks": st.integers(min_value=2, max_value=24),
        "policy": st.sampled_from(["basic", "kmc"]),
        "disk": st.sampled_from(["fifo", "scan"]),
        "forward": st.booleans(),
        "batch": st.integers(min_value=1, max_value=6),
        "accesses": st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=11),
            ),
            min_size=1,
            max_size=80,
        ),
    }
)


def build(spec):
    cfg = CoopCacheConfig(
        policy=spec["policy"],
        disk_discipline=spec["disk"],
        forward_on_evict=spec["forward"],
    )
    return CoopCacheService(
        file_sizes_kb=[spec["file_kb"]] * spec["num_files"],
        num_nodes=spec["num_nodes"],
        mem_mb_per_node=spec["cache_blocks"] * 8 / 1024.0,
        config=cfg,
    )


@given(workload_strategy)
@settings(max_examples=40, deadline=None)
def test_invariants_under_random_workloads(spec):
    svc = build(spec)
    layer = svc.layer
    pairs = [
        (n % spec["num_nodes"], f % spec["num_files"])
        for n, f in spec["accesses"]
    ]
    blocks_per_file = layer.layout.num_blocks(0)

    def driver():
        batch = []
        for node_id, file_id in pairs:
            batch.append(
                svc.submit(layer.read(svc.node(node_id), file_id))
            )
            if len(batch) >= spec["batch"]:
                yield svc.sim.all_of(batch)
                batch = []
        if batch:
            yield svc.sim.all_of(batch)

    svc.submit(driver())
    svc.run()

    layer.check_invariants()

    c = layer.counters
    accounted = (
        c.get("local_hit")
        + c.get("remote_hit")
        + c.get("disk_read")
        + c.get("coalesced")
        # A peer miss re-reads the block from disk, so those blocks are
        # counted under disk_read already; peer_miss is informational.
    )
    assert accounted == len(pairs) * blocks_per_file

    # Caches never exceed capacity and hold only blocks of real files.
    for cache in layer.caches:
        assert len(cache) <= cache.capacity_blocks
        for blk in list(cache._masters) + list(cache._nonmasters):  # noqa: SLF001
            assert 0 <= blk.file_id < spec["num_files"]
            assert 0 <= blk.index < blocks_per_file

    # Hit-rate fractions always form a distribution.
    hr = layer.hit_rates()
    assert hr["local"] + hr["remote"] + hr["disk"] == pytest.approx(1.0) or (
        hr == {"local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0}
    )


@given(workload_strategy)
@settings(max_examples=25, deadline=None)
def test_invariants_under_concurrent_reads_and_writes(spec):
    """Mixed read/write workloads with concurrency keep every invariant:
    single master per block, directory/cache agreement, capacity."""
    svc = build(spec)
    layer = svc.layer
    pairs = [
        (n % spec["num_nodes"], f % spec["num_files"], (n + f) % 3 == 0)
        for n, f in spec["accesses"]
    ]

    def driver():
        batch = []
        for node_id, file_id, is_write in pairs:
            gen = (
                layer.write(svc.node(node_id), file_id)
                if is_write
                else layer.read(svc.node(node_id), file_id)
            )
            batch.append(svc.submit(gen))
            if len(batch) >= spec["batch"]:
                yield svc.sim.all_of(batch)
                batch = []
        if batch:
            yield svc.sim.all_of(batch)

    svc.submit(driver())
    svc.run()
    layer.check_invariants()
    # Dirty blocks only ever live on resident masters.
    for cache in layer.caches:
        for blk in cache._dirty:  # noqa: SLF001 - invariant check
            assert cache.is_master(blk)


@given(workload_strategy)
@settings(max_examples=15, deadline=None)
def test_determinism_same_spec_same_outcome(spec):
    def run():
        svc = build(spec)
        pairs = [
            (n % spec["num_nodes"], f % spec["num_files"])
            for n, f in spec["accesses"]
        ]

        def driver():
            for node_id, file_id in pairs:
                yield svc.submit(svc.layer.read(svc.node(node_id), file_id))

        svc.submit(driver())
        svc.run()
        return svc.sim.now, svc.layer.counters.as_dict()

    assert run() == run()
