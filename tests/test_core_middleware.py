"""Protocol tests for the cooperative caching middleware.

These exercise the Section 3 protocol directly on small hand-built
clusters: hit classification, master designation, forwarding semantics
(second chance, no cascades, drop-if-youngest), the KMC rule, and the
in-flight races.
"""

import pytest

from repro.cache import BlockId
from repro.core import CoopCacheConfig, CoopCacheService, variant
from repro.core.api import blocks_for_mb


def make(num_files=4, file_kb=16.0, num_nodes=4, mem_mb=1.0, config=None, sizes=None):
    return CoopCacheService(
        file_sizes_kb=sizes if sizes is not None else [file_kb] * num_files,
        num_nodes=num_nodes,
        mem_mb_per_node=mem_mb,
        config=config or variant("cc-kmc"),
    )


def read_seq(svc, pairs):
    """Run (node_id, file_id) reads one after another."""

    def driver():
        for node_id, file_id in pairs:
            yield svc.submit(svc.layer.read(svc.node(node_id), file_id))

    svc.submit(driver())
    svc.run()


class TestBasicProtocol:
    def test_first_read_comes_from_disk_and_masters(self):
        svc = make()
        read_seq(svc, [(0, 0)])
        layer = svc.layer
        assert layer.counters.get("disk_read") == 2  # 16 KB = 2 blocks
        assert layer.counters.get("local_hit") == 0
        for blk in layer.layout.blocks(0):
            assert layer.caches[0].is_master(blk)
            assert layer.directory.lookup(blk) == 0

    def test_repeat_read_is_local_hit(self):
        svc = make()
        read_seq(svc, [(0, 0), (0, 0)])
        assert svc.layer.counters.get("local_hit") == 2
        assert svc.layer.counters.get("disk_read") == 2

    def test_other_node_gets_remote_hit_and_replica(self):
        svc = make()
        read_seq(svc, [(0, 0), (1, 0)])
        layer = svc.layer
        assert layer.counters.get("remote_hit") == 2
        for blk in layer.layout.blocks(0):
            assert blk in layer.caches[1]
            assert not layer.caches[1].is_master(blk)
            assert layer.directory.lookup(blk) == 0  # master unmoved

    def test_remote_hit_touches_master_by_default(self):
        svc = make()
        read_seq(svc, [(0, 0), (1, 0)])
        layer = svc.layer
        blk = BlockId(0, 0)
        # Master age at node 0 refreshed by the peer hit: it is no longer
        # the oldest thing in node 0's cache ordering vs a fresh block.
        assert layer.caches[0].age_of(blk) > 0.0

    def test_no_touch_on_peer_hit_when_disabled(self):
        cfg = variant("cc-kmc").with_overrides(touch_on_peer_hit=False)
        svc = make(config=cfg)
        read_seq(svc, [(0, 0)])
        layer = svc.layer
        ages_before = {
            blk: layer.caches[0].age_of(blk) for blk in layer.layout.blocks(0)
        }
        read_seq(svc, [(1, 0)])
        for blk, age in ages_before.items():
            assert layer.caches[0].age_of(blk) == age

    def test_disk_read_at_remote_home_transfers_master(self):
        # File 1's home is node 1 (round robin), but node 3 reads it.
        svc = make()
        read_seq(svc, [(3, 1)])
        layer = svc.layer
        for blk in layer.layout.blocks(1):
            assert layer.caches[3].is_master(blk)
            assert blk not in layer.caches[1]
        # The home node's disk did the read.
        assert svc.cluster.nodes[1].disk.completed > 0
        assert svc.cluster.nodes[3].disk.completed == 0

    def test_single_node_cluster_works(self):
        svc = make(num_nodes=1)
        read_seq(svc, [(0, 0), (0, 1), (0, 0)])
        assert svc.layer.counters.get("local_hit") == 2
        svc.layer.check_invariants()

    def test_hit_rates_accounting(self):
        svc = make()
        read_seq(svc, [(0, 0), (0, 0), (1, 0)])
        hr = svc.layer.hit_rates()
        # 6 block accesses: 2 disk, 2 local, 2 remote.
        assert hr["disk"] == pytest.approx(2 / 6)
        assert hr["local"] == pytest.approx(2 / 6)
        assert hr["remote"] == pytest.approx(2 / 6)
        assert hr["total"] == pytest.approx(4 / 6)

    def test_hit_rates_empty(self):
        svc = make()
        assert svc.layer.hit_rates() == {
            "local": 0.0, "remote": 0.0, "disk": 0.0, "total": 0.0
        }


class TestEviction:
    def test_nonmaster_victim_dropped_silently(self):
        # Node 0 fills with masters of file 0 plus replicas of file 1,
        # then needs room: the replica goes, no forwarding.
        sizes = [16.0, 16.0, 16.0]  # 2 blocks each
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0)  # 4 blocks per node
        read_seq(svc, [(1, 1), (0, 0), (0, 1), (0, 2)])
        layer = svc.layer
        assert layer.counters.get("evict_drop_nonmaster") == 2
        assert layer.counters.get("forwards") == 0
        # Masters of files 0 and 2 still at node 0.
        for f in (0, 2):
            for blk in layer.layout.blocks(f):
                assert layer.caches[0].is_master(blk)
        layer.check_invariants()

    def test_kmc_never_evicts_master_while_replica_resident(self):
        sizes = [16.0] * 4
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0)
        # Node 0: masters of file 0 (old), replicas of file 1 (younger).
        read_seq(svc, [(1, 1), (0, 0), (0, 1)])
        # Now node 0 is full (4 blocks). Reading file 2 must evict the
        # *replicas* even though the masters are older.
        read_seq(svc, [(0, 2)])
        layer = svc.layer
        for blk in layer.layout.blocks(0):
            assert layer.caches[0].is_master(blk)
        for blk in layer.layout.blocks(1):
            assert blk not in layer.caches[0]

    def test_basic_evicts_global_oldest_master(self):
        cfg = variant("cc-sched")  # basic policy, scan disk
        sizes = [16.0] * 4
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0, config=cfg)
        read_seq(svc, [(1, 1), (0, 0), (0, 1), (0, 2)])
        layer = svc.layer
        # Under basic LRU the oldest blocks at node 0 are file 0's
        # masters (read before file 1's replicas were touched), so they
        # are evicted (forwarded, since peers hold older? peers hold
        # file 1 masters older than file 0's -> no, node 1 read file 1
        # first so its blocks are oldest; forwarding happens).
        evicted_masters = (
            layer.counters.get("forwards")
            + layer.counters.get("evict_drop_master")
        )
        assert evicted_masters == 2
        layer.check_invariants()

    def test_forwarding_disabled_drops_masters(self):
        cfg = CoopCacheConfig(policy="basic", forward_on_evict=False)
        sizes = [16.0] * 4
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0, config=cfg)
        read_seq(svc, [(1, 1), (0, 0), (0, 1), (0, 2)])
        layer = svc.layer
        assert layer.counters.get("forwards") == 0
        assert layer.counters.get("evict_drop_master") == 2
        # Dropped masters left the directory.
        for blk in layer.layout.blocks(0):
            assert layer.directory.lookup(blk) is None


class TestForwarding:
    def _fill_node(self, svc, node_id, file_ids):
        read_seq(svc, [(node_id, f) for f in file_ids])

    def test_forwarded_master_lands_on_peer_with_oldest(self):
        sizes = [16.0] * 6
        # 4 blocks per node.
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0, config=variant("cc-sched"))
        # Node 1 reads file 5 first -> node 1 holds the oldest blocks.
        read_seq(svc, [(1, 5)])
        # Node 0 fills with files 0,1 then overflows with file 2.
        self._fill_node(svc, 0, [0, 1, 2])
        layer = svc.layer
        assert layer.counters.get("forwards") == 2
        assert layer.counters.get("forward_installed") == 2
        # File 0's masters moved to node 1.
        for blk in layer.layout.blocks(0):
            assert layer.caches[1].is_master(blk)
            assert layer.directory.lookup(blk) == 1
        layer.check_invariants()

    def test_forward_displaces_destination_oldest_without_cascade(self):
        sizes = [16.0] * 6
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0, config=variant("cc-sched"))
        read_seq(svc, [(1, 5), (1, 4)])  # node 1 full: masters 5,4
        self._fill_node(svc, 0, [0, 1, 2])
        layer = svc.layer
        # Node 1 dropped its own oldest (file 5's blocks) to make room;
        # those drops must NOT trigger further forwards (no cascades).
        assert layer.counters.get("forward_displaced") == 2
        assert layer.counters.get("forwards") == 2
        # The displaced masters are gone from the directory.
        dropped = [
            blk for blk in layer.layout.blocks(5)
            if layer.directory.lookup(blk) is None
        ]
        assert len(dropped) == 2
        layer.check_invariants()

    def test_globally_oldest_master_is_dropped_not_forwarded(self):
        sizes = [16.0] * 3
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0, config=variant("cc-sched"))
        # Only node 0 has anything cached; its oldest is globally oldest.
        self._fill_node(svc, 0, [0, 1, 2])
        layer = svc.layer
        assert layer.counters.get("forwards") == 0
        assert layer.counters.get("evict_drop_master") == 2

    def test_forward_merges_with_existing_replica(self):
        sizes = [16.0] * 6
        svc = make(sizes=sizes, mem_mb=4 * 8 / 1024.0, config=variant("cc-sched"))
        # Node 1 reads file 5 (its blocks oldest), then node 1 fetches a
        # replica of file 0 from node 0... but that would evict. Instead:
        # node 1 reads file 5; node 0 reads file 0; node 1 reads file 0
        # (replicas at node 1, evicting file 5 blocks? capacity 4: file5
        # masters (2) + file0 replicas (2) = full).
        read_seq(svc, [(1, 5), (0, 0), (1, 0)])
        # Now node 0 overflows; file 0 masters at node 0 are oldest
        # locally; node 1 holds older (file 5) blocks -> forward to node
        # 1, which already holds replicas of file 0 -> merge.
        self._fill_node(svc, 0, [1, 2])
        layer = svc.layer
        if layer.counters.get("forward_merged"):
            for blk in layer.layout.blocks(0):
                if layer.directory.lookup(blk) == 1:
                    assert layer.caches[1].is_master(blk)
        layer.check_invariants()


class TestServiceFacade:
    def test_blocks_for_mb(self):
        assert blocks_for_mb(1.0) == 128  # 1024 KB / 8 KB
        assert blocks_for_mb(0.001) == 1  # floor of 1

    def test_mismatched_home_map_rejected(self):
        from repro.cache import FileLayout, HomeMap
        from repro.cluster import Cluster
        from repro.core import CoopCacheLayer
        from repro.params import DEFAULT_PARAMS
        from repro.sim import Simulator

        sim = Simulator()
        cluster = Cluster(sim, DEFAULT_PARAMS, 2)
        layout = FileLayout([8.0, 8.0], DEFAULT_PARAMS)
        with pytest.raises(ValueError):
            CoopCacheLayer(cluster, layout, HomeMap(2, 3), 16)
        with pytest.raises(ValueError):
            CoopCacheLayer(cluster, layout, HomeMap(5, 2), 16)

    def test_read_convenience(self):
        svc = make()
        p = svc.read(0, 0)
        svc.run()
        assert p.processed and p.ok

    def test_resident_blocks(self):
        svc = make()
        read_seq(svc, [(0, 0), (1, 0)])
        # 2 masters at node 0 + 2 replicas at node 1.
        assert svc.layer.resident_blocks() == 4
