"""White-box tests for the middleware's trickier internals: disk-run
splitting, forward-target choice, in-flight coalescing, the pending-
master table, and the hint-chase path."""

import pytest

from repro.cache import BlockId
from repro.core import CoopCacheService, variant
from repro.core.middleware import REQUEST_MSG_KB


def make(sizes, num_nodes=4, mem_mb=1.0, config=None):
    return CoopCacheService(
        file_sizes_kb=sizes,
        num_nodes=num_nodes,
        mem_mb_per_node=mem_mb,
        config=config or variant("cc-kmc"),
    )


class TestRunSplitting:
    def test_one_request_per_block(self):
        svc = make([200.0])
        blocks = list(svc.layer.layout.blocks(0))
        runs = svc.layer._runs(blocks)
        assert len(runs) == len(blocks)
        assert all(r.nblocks == 1 for r in runs)

    def test_runs_sorted_by_block(self):
        svc = make([64.0])
        blocks = list(svc.layer.layout.blocks(0))[::-1]  # reversed input
        runs = svc.layer._runs(blocks)
        assert [r.start_block for r in runs] == sorted(
            b.index for b in blocks
        )

    def test_runs_carry_extent_and_partial_size(self):
        svc = make([68.0])  # 9 blocks: 8 in extent 0, 1 (4 KB) in extent 1
        runs = svc.layer._runs(list(svc.layer.layout.blocks(0)))
        assert runs[-1].extent == 1
        assert runs[-1].size_kb == pytest.approx(4.0)
        assert runs[0].extent == 0


class TestOldestPeerSelection:
    def test_picks_strictly_older_peer(self):
        svc = make([16.0] * 4)
        layer = svc.layer
        layer.caches[1].insert(BlockId(1, 0), master=True, age=5.0)
        layer.caches[2].insert(BlockId(2, 0), master=True, age=2.0)
        assert layer._oldest_peer(0, victim_age=10.0) == 2

    def test_none_when_victim_globally_oldest(self):
        svc = make([16.0] * 4)
        layer = svc.layer
        layer.caches[1].insert(BlockId(1, 0), master=True, age=5.0)
        assert layer._oldest_peer(0, victim_age=1.0) is None

    def test_excludes_self(self):
        svc = make([16.0] * 4)
        layer = svc.layer
        layer.caches[0].insert(BlockId(1, 0), master=True, age=0.5)
        assert layer._oldest_peer(0, victim_age=1.0) is None

    def test_empty_peers_none(self):
        svc = make([16.0] * 4)
        assert svc.layer._oldest_peer(0, victim_age=1.0) is None


class TestCoalescing:
    def test_concurrent_same_node_requests_share_fetch(self):
        svc = make([16.0])

        def both():
            a = svc.submit(svc.layer.read(svc.node(0), 0))
            b = svc.submit(svc.layer.read(svc.node(0), 0))
            yield svc.sim.all_of([a, b])

        svc.submit(both())
        svc.run()
        c = svc.layer.counters
        assert c.get("disk_read") == 2       # fetched once (2 blocks)
        assert c.get("coalesced") == 2       # second request joined
        assert c.get("local_hit") == 0

    def test_inflight_table_drains(self):
        svc = make([16.0])
        svc.submit(svc.layer.read(svc.node(0), 0))
        svc.run()
        assert all(not t for t in svc.layer._inflight)

    def test_pending_master_table_drains(self):
        svc = make([16.0] * 3)
        for f in range(3):
            svc.submit(svc.layer.read(svc.node(f), f))
        svc.run()
        assert not svc.layer._pending_master


class TestPendingMasterDedup:
    def test_cross_node_concurrent_misses_read_disk_once(self):
        svc = make([16.0], num_nodes=4)

        def storm():
            procs = [
                svc.submit(svc.layer.read(svc.node(n), 0)) for n in range(4)
            ]
            yield svc.sim.all_of(procs)

        svc.submit(storm())
        svc.run()
        c = svc.layer.counters
        # One disk fetch; the other three nodes waited and then fetched
        # remotely from the fresh master.
        assert c.get("disk_read") == 2
        assert c.get("waited_master") == 6  # 3 nodes x 2 blocks
        assert c.get("remote_hit") >= 4
        svc.layer.check_invariants()

    def test_waited_blocks_excluded_from_master_race(self):
        svc = make([16.0], num_nodes=4)

        def storm():
            procs = [
                svc.submit(svc.layer.read(svc.node(n), 0)) for n in range(4)
            ]
            yield svc.sim.all_of(procs)

        svc.submit(storm())
        svc.run()
        assert svc.layer.counters.get("master_race") == 0


class TestHintChase:
    def test_wrong_hint_chases_to_true_master(self):
        from repro.core import CoopCacheConfig

        # Accuracy 0: every routed lookup is wrong, but the chase path
        # must still find the true master without re-reading disk.
        cfg = CoopCacheConfig(directory="hints", hint_accuracy=0.0)
        svc = CoopCacheService(
            file_sizes_kb=[16.0] * 4, num_nodes=4, mem_mb_per_node=1.0,
            config=cfg, seed=3,
        )

        def flow():
            yield svc.submit(svc.layer.read(svc.node(0), 0))  # disk, master at 0
            yield svc.submit(svc.layer.read(svc.node(1), 0))  # hinted wrong
            yield svc.submit(svc.layer.read(svc.node(2), 0))

        svc.submit(flow())
        svc.run()
        c = svc.layer.counters
        # Only the first read touched disk; wrong hints bounced but the
        # chase recovered remote hits (or the stale-negative hint sent
        # the request straight to disk - allow either, but data must not
        # be read from disk more than twice as often as the true misses).
        assert c.get("disk_read") <= 4
        svc.layer.check_invariants()


class TestMessageSizes:
    def test_perfect_directory_message_size(self):
        svc = make([16.0])
        assert svc.layer._msg_kb == REQUEST_MSG_KB

    def test_touch_semantics_on_remote_hit(self):
        svc = make([16.0] * 2)

        def flow():
            yield svc.submit(svc.layer.read(svc.node(0), 0))
            yield svc.submit(svc.layer.read(svc.node(1), 0))

        svc.submit(flow())
        svc.run()
        # Master copies at node 0 were touched by the peer hit: their
        # age equals the later access time.
        blk = BlockId(0, 0)
        age = svc.layer.caches[0].age_of(blk)
        assert age > 0.0
