"""Unit tests for replacement policies and middleware configuration."""

import pytest

from repro.cache import BlockCache, BlockId
from repro.cluster.disk import FIFO, SCAN
from repro.core import CoopCacheConfig, POLICIES, VARIANTS, select_victim, variant


def b(i):
    return BlockId(0, i)


class TestSelectVictim:
    def make_cache(self):
        c = BlockCache(0, 8)
        c.insert(b(1), master=True, age=1.0)   # oldest master
        c.insert(b(2), master=True, age=4.0)
        c.insert(b(3), master=False, age=2.0)  # oldest non-master
        c.insert(b(4), master=False, age=3.0)
        return c

    def test_basic_picks_global_oldest(self):
        c = self.make_cache()
        assert select_victim("basic", c) == (b(1), 1.0, True)

    def test_kmc_prefers_nonmaster_even_if_younger(self):
        c = self.make_cache()
        assert select_victim("kmc", c) == (b(3), 2.0, False)

    def test_kmc_falls_back_to_lru_when_only_masters(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=2.0)
        c.insert(b(2), master=True, age=1.0)
        assert select_victim("kmc", c) == (b(2), 1.0, True)

    def test_basic_picks_nonmaster_when_oldest(self):
        c = BlockCache(0, 4)
        c.insert(b(1), master=True, age=5.0)
        c.insert(b(2), master=False, age=1.0)
        assert select_victim("basic", c) == (b(2), 1.0, False)

    def test_empty_cache_returns_none(self):
        assert select_victim("basic", BlockCache(0, 4)) is None
        assert select_victim("kmc", BlockCache(0, 4)) is None

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            select_victim("mru", BlockCache(0, 4))

    def test_registry_names(self):
        assert set(POLICIES) == {"basic", "kmc", "hybrid"}

    def test_hybrid_protects_masters_normally(self):
        c = self.make_cache()
        # Oldest master age 1.0, oldest replica age 2.0: gap 1.0 < bias.
        assert select_victim("hybrid", c, hybrid_bias_ms=10.0) == (
            b(3), 2.0, False
        )

    def test_hybrid_releases_extremely_cold_master(self):
        from repro.cache import BlockCache

        c = BlockCache(0, 8)
        c.insert(b(1), master=True, age=1.0)       # ancient master
        c.insert(b(2), master=False, age=5000.0)   # recent replica
        assert select_victim("hybrid", c, hybrid_bias_ms=100.0) == (
            b(1), 1.0, True
        )

    def test_hybrid_empty_and_masters_only(self):
        from repro.cache import BlockCache

        c = BlockCache(0, 4)
        assert select_victim("hybrid", c) is None
        c.insert(b(1), master=True, age=1.0)
        assert select_victim("hybrid", c) == (b(1), 1.0, True)


class TestCoopCacheConfig:
    def test_defaults_are_kmc_scan(self):
        cfg = CoopCacheConfig()
        assert cfg.policy == "kmc"
        assert cfg.disk_discipline == SCAN
        assert cfg.forward_on_evict is True
        assert cfg.directory == "perfect"

    def test_paper_variants(self):
        assert variant("cc-basic").policy == "basic"
        assert variant("cc-basic").disk_discipline == FIFO
        assert variant("cc-sched").policy == "basic"
        assert variant("cc-sched").disk_discipline == SCAN
        assert variant("cc-kmc").policy == "kmc"
        assert variant("cc-kmc").disk_discipline == SCAN

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            variant("cc-turbo")

    def test_variant_registry_complete(self):
        assert set(VARIANTS) == {"cc-basic", "cc-sched", "cc-kmc"}

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            CoopCacheConfig(policy="mru")

    def test_invalid_discipline_rejected(self):
        with pytest.raises(ValueError):
            CoopCacheConfig(disk_discipline="lifo")

    def test_invalid_directory_rejected(self):
        with pytest.raises(ValueError):
            CoopCacheConfig(directory="oracle")

    def test_invalid_hint_accuracy(self):
        with pytest.raises(ValueError):
            CoopCacheConfig(hint_accuracy=1.5)

    def test_with_overrides(self):
        cfg = CoopCacheConfig().with_overrides(forward_on_evict=False)
        assert cfg.forward_on_evict is False
        assert CoopCacheConfig().forward_on_evict is True
