"""Tests for the whole-file adaptation of the middleware (ablation A3)."""

import numpy as np
import pytest

from repro.cache.block import FileLayout
from repro.cache.directory import HomeMap
from repro.cluster import Cluster
from repro.core.wholefile import WholeFileCache, WholeFileCoopServer
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator
from repro.traces import Trace, TraceSpec
from repro.web import ClosedLoopDriver


def build(num_nodes=4, capacity_kb=64.0, sizes=(16.0, 16.0, 16.0, 16.0)):
    sim = Simulator()
    cluster = Cluster(sim, DEFAULT_PARAMS, num_nodes)
    layout = FileLayout(list(sizes), DEFAULT_PARAMS)
    homes = HomeMap(layout.num_files, num_nodes)
    server = WholeFileCoopServer(cluster, layout, homes, capacity_kb)
    return sim, cluster, server


def serve_seq(sim, cluster, server, pairs):
    def driver():
        for node_id, file_id in pairs:
            yield sim.process(server.handle(cluster.nodes[node_id], file_id))

    sim.process(driver())
    sim.run()


class TestWholeFileCache:
    def test_insert_and_master_flag(self):
        c = WholeFileCache(0, 100.0)
        c.insert(1, 30.0, master=True, age=1.0)
        c.insert(2, 30.0, master=False, age=2.0)
        assert c.is_master(1) and not c.is_master(2)
        assert c.used_kb == 60.0

    def test_capacity_checked(self):
        c = WholeFileCache(0, 50.0)
        c.insert(1, 40.0, master=True, age=1.0)
        with pytest.raises(ValueError):
            c.insert(2, 20.0, master=True, age=2.0)

    def test_duplicate_raises(self):
        c = WholeFileCache(0, 100.0)
        c.insert(1, 10.0, master=True, age=1.0)
        with pytest.raises(KeyError):
            c.insert(1, 10.0, master=True, age=2.0)

    def test_victim_prefers_replicas(self):
        c = WholeFileCache(0, 100.0)
        c.insert(1, 30.0, master=True, age=1.0)   # oldest overall
        c.insert(2, 30.0, master=False, age=2.0)  # oldest replica
        assert c.select_victim() == (2, 2.0, False)

    def test_victim_master_when_no_replicas(self):
        c = WholeFileCache(0, 100.0)
        c.insert(1, 30.0, master=True, age=5.0)
        c.insert(2, 30.0, master=True, age=3.0)
        assert c.select_victim() == (2, 3.0, True)

    def test_remove_returns_size_and_masterness(self):
        c = WholeFileCache(0, 100.0)
        c.insert(1, 30.0, master=True, age=1.0)
        assert c.remove(1) == (30.0, True)
        assert len(c) == 0 and c.used_kb == 0.0

    def test_oldest_age(self):
        c = WholeFileCache(0, 100.0)
        assert c.oldest_age() == float("inf")
        c.insert(1, 10.0, master=True, age=4.0)
        c.insert(2, 10.0, master=False, age=2.0)
        assert c.oldest_age() == 2.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WholeFileCache(0, 0.0)


class TestWholeFileServer:
    def test_cold_read_masters_at_requester(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(3, 1)])
        assert server.counters.get("disk_read") == 2  # block-weighted
        assert server.directory[1] == 3
        assert server.caches[3].is_master(1)
        # Home node 1's disk did the read.
        assert cluster.nodes[1].disk.completed > 0

    def test_repeat_is_local(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0), (0, 0)])
        assert server.counters.get("local_hit") == 2

    def test_peer_fetch_creates_replica(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0), (1, 0)])
        assert server.counters.get("remote_hit") == 2
        assert 0 in server.caches[1]
        assert not server.caches[1].is_master(0)
        assert server.directory[0] == 0

    def test_replica_evicted_before_master(self):
        # capacity 2 files of 16 KB each per node.
        sim, cluster, server = build(capacity_kb=32.0, sizes=(16.0,) * 6)
        serve_seq(sim, cluster, server, [(1, 1), (0, 0), (0, 1), (0, 2)])
        # Node 0 held master(0) + replica(1); reading file 2 evicts the
        # replica, keeping the master.
        assert server.caches[0].is_master(0)
        assert 1 not in server.caches[0]

    def test_master_forwarded_to_peer_with_oldest(self):
        sim, cluster, server = build(capacity_kb=32.0, sizes=(16.0,) * 6)
        serve_seq(sim, cluster, server, [(1, 5), (0, 0), (0, 1), (0, 2)])
        # Node 0 overflowed with only masters; its oldest master was
        # forwarded (node 1 holds the cluster's oldest file).
        assert server.counters.get("forwards") >= 1
        sim.run()
        # Wherever each file's master is recorded, it is resident there.
        for f, holder in server.directory.items():
            assert f in server.caches[holder]
            assert server.caches[holder].is_master(f)

    def test_coalescing(self):
        sim, cluster, server = build()

        def both():
            a = sim.process(server.handle(cluster.nodes[0], 0))
            b = sim.process(server.handle(cluster.nodes[0], 0))
            yield sim.all_of([a, b])

        sim.process(both())
        sim.run()
        assert server.counters.get("coalesced") == 2
        assert server.counters.get("disk_read") == 2  # read once

    def test_uncacheable_file(self):
        sim, cluster, server = build(capacity_kb=8.0, sizes=(100.0,))
        serve_seq(sim, cluster, server, [(0, 0), (0, 0)])
        assert server.counters.get("uncacheable") == 2
        assert server.counters.get("disk_read") == 26  # 13 blocks twice

    def test_hit_rates_and_reset(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0), (0, 0)])
        hr = server.hit_rates()
        assert hr["local"] == pytest.approx(0.5)
        server.reset_stats()
        assert server.hit_rates()["total"] == 0.0

    def test_with_closed_loop_driver(self):
        rng = np.random.default_rng(4)
        n_files = 10
        trace = Trace(
            spec=TraceSpec("t", n_files, 300, 16.0),
            sizes_kb=np.full(n_files, 16.0),
            requests=rng.integers(0, n_files, size=300),
        )
        sim = Simulator()
        cluster = Cluster(sim, DEFAULT_PARAMS, 4)
        layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
        homes = HomeMap(layout.num_files, 4)
        server = WholeFileCoopServer(cluster, layout, homes, 64.0)
        driver = ClosedLoopDriver(sim, cluster, server, trace, num_clients=8)
        result = driver.run()
        assert result.throughput_rps > 0
        assert 0 <= server.hit_rates()["total"] <= 1
