"""Tests for the write-protocol extension (paper Section 6 future work)."""

import pytest

from repro.cache import BlockCache, BlockId
from repro.core import CoopCacheConfig, CoopCacheService


def make(write_policy="write-back", num_nodes=4, mem_mb=1.0, sizes=None):
    cfg = CoopCacheConfig(write_policy=write_policy)
    return CoopCacheService(
        file_sizes_kb=sizes if sizes is not None else [16.0] * 6,
        num_nodes=num_nodes,
        mem_mb_per_node=mem_mb,
        config=cfg,
    )


def run_seq(svc, ops):
    """ops: list of ("r"|"w"|"sync", node_id, file_id)."""

    def driver():
        for op, node_id, file_id in ops:
            node = svc.node(node_id)
            if op == "r":
                yield svc.submit(svc.layer.read(node, file_id))
            elif op == "w":
                yield svc.submit(svc.layer.write(node, file_id))
            else:
                yield svc.submit(svc.layer.sync(node))

    svc.submit(driver())
    svc.run()


class TestDirtyTracking:
    def test_mark_and_clear(self):
        c = BlockCache(0, 4)
        b = BlockId(0, 0)
        c.insert(b, master=True, age=1.0)
        assert not c.is_dirty(b)
        c.mark_dirty(b)
        assert c.is_dirty(b) and c.num_dirty == 1
        c.clear_dirty(b)
        assert not c.is_dirty(b)

    def test_mark_nonmaster_raises(self):
        c = BlockCache(0, 4)
        b = BlockId(0, 0)
        c.insert(b, master=False, age=1.0)
        with pytest.raises(KeyError):
            c.mark_dirty(b)

    def test_remove_discards_dirty(self):
        c = BlockCache(0, 4)
        b = BlockId(0, 0)
        c.insert(b, master=True, age=1.0)
        c.mark_dirty(b)
        c.remove(b)
        assert c.num_dirty == 0


class TestWriteProtocol:
    def test_write_creates_dirty_masters(self):
        svc = make()
        run_seq(svc, [("w", 0, 0)])
        layer = svc.layer
        for blk in layer.layout.blocks(0):
            assert layer.caches[0].is_master(blk)
            assert layer.caches[0].is_dirty(blk)
        assert layer.counters.get("block_writes") == 2
        # Whole-block writes need no disk read.
        assert layer.counters.get("disk_read") == 0

    def test_write_through_flushes_immediately(self):
        svc = make(write_policy="write-through")
        run_seq(svc, [("w", 0, 0)])
        layer = svc.layer
        assert layer.counters.get("flushed_blocks") == 2
        for blk in layer.layout.blocks(0):
            assert not layer.caches[0].is_dirty(blk)
        # The home node's disk saw the write.
        assert svc.cluster.nodes[0].disk.completed > 0

    def test_write_invalidates_replicas(self):
        svc = make()
        # Node 0 masters file 0; node 1 gets replicas; node 2 writes.
        run_seq(svc, [("r", 0, 0), ("r", 1, 0), ("w", 2, 0)])
        layer = svc.layer
        for blk in layer.layout.blocks(0):
            assert blk not in layer.caches[0]
            assert blk not in layer.caches[1]
            assert layer.caches[2].is_master(blk)
        assert layer.counters.get("invalidations") >= 2
        assert layer.counters.get("ownership_transfers") == 2
        layer.check_invariants()

    def test_read_after_write_is_local_at_writer(self):
        svc = make()
        run_seq(svc, [("w", 0, 0), ("r", 0, 0)])
        assert svc.layer.counters.get("local_hit") == 2

    def test_read_after_write_remote_elsewhere(self):
        svc = make()
        run_seq(svc, [("w", 0, 0), ("r", 1, 0)])
        assert svc.layer.counters.get("remote_hit") == 2

    def test_sync_flushes_writeback_data(self):
        svc = make()
        run_seq(svc, [("w", 0, 0), ("w", 0, 1), ("sync", 0, 0)])
        layer = svc.layer
        assert layer.counters.get("flushed_blocks") == 4
        assert layer.caches[0].num_dirty == 0

    def test_sync_idempotent(self):
        svc = make()
        run_seq(svc, [("w", 0, 0), ("sync", 0, 0), ("sync", 0, 0)])
        assert svc.layer.counters.get("flushed_blocks") == 2

    def test_evicted_dirty_master_written_back(self):
        # Tiny cache: 4 blocks per node; write 3 files of 2 blocks each
        # at node 0 with no peers able to take forwards (their caches
        # empty -> forward installs; so disable forwarding to force the
        # drop path).
        cfg = CoopCacheConfig(forward_on_evict=False)
        svc = CoopCacheService(
            file_sizes_kb=[16.0] * 4,
            num_nodes=1,
            mem_mb_per_node=4 * 8 / 1024.0,
            config=cfg,
        )
        run_seq(svc, [("w", 0, 0), ("w", 0, 1), ("w", 0, 2)])
        layer = svc.layer
        # Two blocks were evicted dirty and must have been flushed.
        assert layer.counters.get("flushed_blocks") == 2
        assert svc.cluster.nodes[0].disk.completed >= 2

    def test_forwarded_dirty_master_stays_dirty(self):
        svc = make(mem_mb=4 * 8 / 1024.0, sizes=[16.0] * 6)
        # Node 1 reads file 5 (oldest blocks); node 0 writes files 0-2,
        # overflowing: dirty masters of file 0 forward to node 1.
        run_seq(svc, [("r", 1, 5), ("w", 0, 0), ("w", 0, 1), ("w", 0, 2)])
        layer = svc.layer
        forwarded_dirty = sum(
            1 for blk in layer.layout.blocks(0)
            if blk in layer.caches[1] and layer.caches[1].is_dirty(blk)
        )
        flushed = layer.counters.get("flushed_blocks")
        # Either the dirty data is still in memory at the destination or
        # it was flushed on displacement — never silently lost.
        assert forwarded_dirty + flushed >= 2
        layer.check_invariants()

    def test_write_policy_validation(self):
        with pytest.raises(ValueError):
            CoopCacheConfig(write_policy="write-around")

    def test_mixed_read_write_workload_invariants(self):
        import random

        rnd = random.Random(11)
        svc = make(mem_mb=6 * 8 / 1024.0)
        ops = []
        for _ in range(120):
            op = "w" if rnd.random() < 0.3 else "r"
            ops.append((op, rnd.randrange(4), rnd.randrange(6)))
        run_seq(svc, ops)
        svc.layer.check_invariants()
        # Accounting: reads classified, writes counted.
        c = svc.layer.counters
        reads = sum(1 for o in ops if o[0] == "r") * 2
        assert (
            c.get("local_hit") + c.get("remote_hit") + c.get("disk_read")
            + c.get("coalesced") == reads
        )
        writes = sum(1 for o in ops if o[0] == "w") * 2
        assert c.get("block_writes") == writes
